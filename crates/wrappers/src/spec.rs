//! Serializable wrapper definitions.
//!
//! The MDM persists its deployment (the paper's tool used Jena TDB); to
//! reload a deployment the wrapper *definitions* — not just their data —
//! must survive. A [`WrapperSpec`] is the JSON-serializable description of
//! a wrapper; [`WrapperSpec::instantiate`] rebuilds the live wrapper over a
//! [`DocStore`].

use crate::json_wrapper::JsonWrapper;
use crate::table_wrapper::TableWrapper;
use crate::wrapper::{Wrapper, WrapperError};
use bdi_docstore::{DocStore, Pipeline};
use bdi_relational::{Schema, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A self-contained, serializable wrapper definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WrapperSpec {
    /// A [`JsonWrapper`]: an aggregation pipeline over one collection.
    Json {
        name: String,
        source: String,
        id_attributes: Vec<String>,
        non_id_attributes: Vec<String>,
        collection: String,
        pipeline: Pipeline,
    },
    /// A [`TableWrapper`]: schema plus inline rows (scalar JSON values).
    Table {
        name: String,
        source: String,
        id_attributes: Vec<String>,
        non_id_attributes: Vec<String>,
        rows: Vec<Vec<serde_json::Value>>,
    },
}

impl WrapperSpec {
    /// The wrapper's name.
    pub fn name(&self) -> &str {
        match self {
            WrapperSpec::Json { name, .. } | WrapperSpec::Table { name, .. } => name,
        }
    }

    /// Builds the live wrapper. JSON wrappers attach to `store`.
    pub fn instantiate(&self, store: &DocStore) -> Result<Arc<dyn Wrapper>, WrapperError> {
        match self {
            WrapperSpec::Json {
                name,
                source,
                id_attributes,
                non_id_attributes,
                collection,
                pipeline,
            } => {
                let schema = Schema::from_parts(id_attributes, non_id_attributes)
                    .map_err(bdi_relational::RelationError::Schema)?;
                Ok(Arc::new(JsonWrapper::new(
                    name,
                    source,
                    schema,
                    store.clone(),
                    collection,
                    pipeline.clone(),
                )?))
            }
            WrapperSpec::Table {
                name,
                source,
                id_attributes,
                non_id_attributes,
                rows,
            } => {
                let schema = Schema::from_parts(id_attributes, non_id_attributes)
                    .map_err(bdi_relational::RelationError::Schema)?;
                let rows: Vec<Vec<Value>> = rows
                    .iter()
                    .map(|row| row.iter().map(json_to_value).collect())
                    .collect();
                Ok(Arc::new(TableWrapper::new(name, source, schema, rows)?))
            }
        }
    }
}

/// Decodes a JSON value into a relational [`Value`] — the inverse of
/// [`value_to_json`] (lossy only for JSON arrays/objects, which become
/// their string rendering). Public because the durability layer encodes
/// journaled table rows through the same JSON mapping the specs use.
pub fn json_to_value(v: &serde_json::Value) -> Value {
    match v {
        serde_json::Value::Null => Value::Null,
        serde_json::Value::Bool(b) => Value::Bool(*b),
        serde_json::Value::Number(n) => n
            .as_i64()
            .map(Value::Int)
            .unwrap_or_else(|| Value::Float(n.as_f64().unwrap_or(f64::NAN))),
        serde_json::Value::String(s) => Value::Str(s.clone()),
        other => Value::Str(other.to_string()),
    }
}

/// Encodes a relational [`Value`] as JSON — see [`json_to_value`].
pub fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Null => serde_json::Value::Null,
        Value::Bool(b) => serde_json::Value::Bool(*b),
        Value::Int(i) => serde_json::json!(i),
        Value::Float(f) => serde_json::json!(f),
        Value::Str(s) => serde_json::Value::String(s.clone()),
    }
}

impl JsonWrapper {
    /// This wrapper's serializable definition.
    pub fn spec(&self) -> WrapperSpec {
        WrapperSpec::Json {
            name: self.name().to_owned(),
            source: self.source().to_owned(),
            id_attributes: self
                .schema()
                .id_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            non_id_attributes: self
                .schema()
                .non_id_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            collection: self.collection().to_owned(),
            pipeline: self.pipeline().clone(),
        }
    }
}

impl TableWrapper {
    /// This wrapper's serializable definition (rows inlined).
    pub fn spec(&self) -> Result<WrapperSpec, WrapperError> {
        let relation = self.scan()?;
        Ok(WrapperSpec::Table {
            name: self.name().to_owned(),
            source: self.source().to_owned(),
            id_attributes: self
                .schema()
                .id_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            non_id_attributes: self
                .schema()
                .non_id_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows: relation
                .rows()
                .iter()
                .map(|row| row.iter().map(value_to_json).collect())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supersede;

    #[test]
    fn json_wrapper_spec_round_trips() {
        let store = supersede::sample_docstore();
        let w1 = supersede::wrapper_w1(store.clone());
        let spec = w1.spec();

        let serialized = serde_json::to_string_pretty(&spec).unwrap();
        let parsed: WrapperSpec = serde_json::from_str(&serialized).unwrap();
        assert_eq!(parsed, spec);

        let rebuilt = parsed.instantiate(&store).unwrap();
        assert_eq!(rebuilt.name(), "w1");
        assert_eq!(rebuilt.scan().unwrap(), w1.scan().unwrap());
    }

    #[test]
    fn table_wrapper_spec_round_trips() {
        let w = TableWrapper::new(
            "t1",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        let spec = w.spec().unwrap();
        let rebuilt = spec.instantiate(&DocStore::new()).unwrap();
        assert_eq!(rebuilt.scan().unwrap(), w.scan().unwrap());
    }

    #[test]
    fn invalid_spec_is_rejected_at_instantiation() {
        let spec = WrapperSpec::Json {
            name: "bad".into(),
            source: "D".into(),
            id_attributes: vec!["a".into()],
            non_id_attributes: vec!["a".into()], // duplicate
            collection: "c".into(),
            pipeline: Pipeline::new(),
        };
        assert!(spec.instantiate(&DocStore::new()).is_err());
    }
}
