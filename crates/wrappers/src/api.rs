//! A versioned REST API simulator.
//!
//! The paper ingests from third-party REST APIs (Twitter, VoD monitors,
//! Wordpress) whose response schemas evolve release by release. We have no
//! live feeds, so this module simulates the equivalent: **endpoints** with a
//! list of **versioned response schemas**, a deterministic JSON event
//! generator, and schema diffing between versions. Everything downstream
//! (ontology releases, evolution classification, the Figure 11 growth study)
//! consumes these versions exactly as it would consume real API releases.

use crate::json_wrapper::JsonWrapper;
use crate::wrapper::WrapperError;
use bdi_docstore::{DocStore, Pipeline, Projection};
use bdi_relational::{Attribute, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ApiError {
    #[error("unknown endpoint: {api}/{method}")]
    UnknownEndpoint { api: String, method: String },
    #[error("unknown version {version} of {api}/{method}")]
    UnknownVersion {
        api: String,
        method: String,
        version: String,
    },
    #[error("version {0} already registered")]
    DuplicateVersion(String),
    #[error("field {0} already exists")]
    DuplicateField(String),
    #[error("field {0} does not exist")]
    UnknownField(String),
    #[error(transparent)]
    Wrapper(#[from] WrapperError),
}

/// The JSON shape of one response field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// Integer drawn from `[min, max]`.
    Int {
        min: i64,
        max: i64,
    },
    /// Double in `[0, 1)` scaled by `scale`.
    Float {
        scale: u32,
    },
    /// Short string with this prefix plus a counter.
    Str {
        prefix: &'static str,
    },
    Bool,
    /// Unix-epoch seconds.
    Timestamp,
}

/// A named response field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    pub name: String,
    pub kind: FieldKind,
    /// Whether the ontology layer should treat this as an ID attribute.
    pub is_id: bool,
}

impl FieldSpec {
    pub fn id(name: impl Into<String>, kind: FieldKind) -> Self {
        Self {
            name: name.into(),
            kind,
            is_id: true,
        }
    }

    pub fn data(name: impl Into<String>, kind: FieldKind) -> Self {
        Self {
            name: name.into(),
            kind,
            is_id: false,
        }
    }
}

/// One released response schema of an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionSchema {
    pub version: String,
    pub fields: Vec<FieldSpec>,
    /// Rename provenance: `(old_name, new_name)` pairs relative to the
    /// previous version — real changelogs state renames explicitly, and the
    /// evolution classifier needs them distinguished from add+delete.
    pub renames: Vec<(String, String)>,
}

impl VersionSchema {
    pub fn new(version: impl Into<String>, fields: Vec<FieldSpec>) -> Self {
        Self {
            version: version.into(),
            fields,
            renames: Vec::new(),
        }
    }

    /// Derives the next version by applying field operations.
    pub fn evolve(&self, version: impl Into<String>) -> VersionBuilder {
        VersionBuilder {
            schema: VersionSchema {
                version: version.into(),
                fields: self.fields.clone(),
                renames: Vec::new(),
            },
        }
    }

    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// The relational schema a full-projection wrapper over this version
    /// exposes.
    pub fn relational_schema(&self) -> Schema {
        let attrs: Vec<Attribute> = self
            .fields
            .iter()
            .map(|f| {
                if f.is_id {
                    Attribute::id(&f.name)
                } else {
                    Attribute::non_id(&f.name)
                }
            })
            .collect();
        Schema::new(attrs).expect("field names are unique by construction")
    }
}

/// Builder applying add/remove/rename/retype operations to derive a release.
#[derive(Debug, Clone)]
pub struct VersionBuilder {
    schema: VersionSchema,
}

#[allow(clippy::should_implement_trait)] // add/remove/rename mirror changelog verbs
impl VersionBuilder {
    pub fn add(mut self, field: FieldSpec) -> Result<Self, ApiError> {
        if self.schema.field(&field.name).is_some() {
            return Err(ApiError::DuplicateField(field.name));
        }
        self.schema.fields.push(field);
        Ok(self)
    }

    pub fn remove(mut self, name: &str) -> Result<Self, ApiError> {
        let before = self.schema.fields.len();
        self.schema.fields.retain(|f| f.name != name);
        if self.schema.fields.len() == before {
            return Err(ApiError::UnknownField(name.to_owned()));
        }
        Ok(self)
    }

    pub fn rename(mut self, from: &str, to: &str) -> Result<Self, ApiError> {
        if self.schema.field(to).is_some() {
            return Err(ApiError::DuplicateField(to.to_owned()));
        }
        let field = self
            .schema
            .fields
            .iter_mut()
            .find(|f| f.name == from)
            .ok_or_else(|| ApiError::UnknownField(from.to_owned()))?;
        field.name = to.to_owned();
        self.schema.renames.push((from.to_owned(), to.to_owned()));
        Ok(self)
    }

    pub fn retype(mut self, name: &str, kind: FieldKind) -> Result<Self, ApiError> {
        let field = self
            .schema
            .fields
            .iter_mut()
            .find(|f| f.name == name)
            .ok_or_else(|| ApiError::UnknownField(name.to_owned()))?;
        field.kind = kind;
        Ok(self)
    }

    pub fn build(self) -> VersionSchema {
        self.schema
    }
}

/// A structural delta between two consecutive versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaDelta {
    AddField(FieldSpec),
    DeleteField(String),
    RenameField {
        from: String,
        to: String,
    },
    RetypeField {
        name: String,
        from: FieldKind,
        to: FieldKind,
    },
}

/// Computes the delta `from → to`, honouring `to`'s rename provenance.
pub fn diff_versions(from: &VersionSchema, to: &VersionSchema) -> Vec<SchemaDelta> {
    let mut deltas = Vec::new();
    let renamed_old: Vec<&str> = to.renames.iter().map(|(o, _)| o.as_str()).collect();
    let renamed_new: Vec<&str> = to.renames.iter().map(|(_, n)| n.as_str()).collect();

    for (old, new) in &to.renames {
        deltas.push(SchemaDelta::RenameField {
            from: old.clone(),
            to: new.clone(),
        });
        // A rename may come with a retype.
        if let (Some(f_old), Some(f_new)) = (from.field(old), to.field(new)) {
            if f_old.kind != f_new.kind {
                deltas.push(SchemaDelta::RetypeField {
                    name: new.clone(),
                    from: f_old.kind.clone(),
                    to: f_new.kind.clone(),
                });
            }
        }
    }
    for f in &to.fields {
        if renamed_new.contains(&f.name.as_str()) {
            continue;
        }
        match from.field(&f.name) {
            None => deltas.push(SchemaDelta::AddField(f.clone())),
            Some(old) if old.kind != f.kind => deltas.push(SchemaDelta::RetypeField {
                name: f.name.clone(),
                from: old.kind.clone(),
                to: f.kind.clone(),
            }),
            Some(_) => {}
        }
    }
    for f in &from.fields {
        if renamed_old.contains(&f.name.as_str()) {
            continue;
        }
        if to.field(&f.name).is_none() {
            deltas.push(SchemaDelta::DeleteField(f.name.clone()));
        }
    }
    deltas
}

/// A REST endpoint (the paper treats each method as an `S:DataSource`).
#[derive(Debug, Clone)]
pub struct Endpoint {
    pub api: String,
    pub method: String,
    pub versions: Vec<VersionSchema>,
}

impl Endpoint {
    pub fn new(api: impl Into<String>, method: impl Into<String>) -> Self {
        Self {
            api: api.into(),
            method: method.into(),
            versions: Vec::new(),
        }
    }

    /// The docstore collection holding one version's events.
    pub fn collection(&self, version: &str) -> String {
        format!("{}/{}/{}", self.api, self.method, version)
    }

    pub fn version(&self, version: &str) -> Option<&VersionSchema> {
        self.versions.iter().find(|v| v.version == version)
    }

    pub fn latest(&self) -> Option<&VersionSchema> {
        self.versions.last()
    }
}

/// The simulator: endpoints + a backing [`DocStore`] of generated events.
#[derive(Debug, Default, Clone)]
pub struct ApiSimulator {
    store: DocStore,
    endpoints: BTreeMap<(String, String), Endpoint>,
}

impl ApiSimulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// The backing document store (shared handle).
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    /// Registers a new endpoint (no versions yet).
    pub fn add_endpoint(&mut self, api: &str, method: &str) {
        self.endpoints
            .entry((api.to_owned(), method.to_owned()))
            .or_insert_with(|| Endpoint::new(api, method));
    }

    /// Publishes a new version of an endpoint's response schema.
    pub fn release(
        &mut self,
        api: &str,
        method: &str,
        schema: VersionSchema,
    ) -> Result<(), ApiError> {
        let endpoint = self
            .endpoints
            .get_mut(&(api.to_owned(), method.to_owned()))
            .ok_or_else(|| ApiError::UnknownEndpoint {
                api: api.to_owned(),
                method: method.to_owned(),
            })?;
        if endpoint.version(&schema.version).is_some() {
            return Err(ApiError::DuplicateVersion(schema.version));
        }
        endpoint.versions.push(schema);
        Ok(())
    }

    pub fn endpoint(&self, api: &str, method: &str) -> Option<&Endpoint> {
        self.endpoints.get(&(api.to_owned(), method.to_owned()))
    }

    pub fn endpoints(&self) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.values()
    }

    /// Generates `count` deterministic events for a version (seeded), storing
    /// them in the version's collection. Returns how many were written.
    pub fn ingest(
        &self,
        api: &str,
        method: &str,
        version: &str,
        count: usize,
        seed: u64,
    ) -> Result<usize, ApiError> {
        let endpoint = self
            .endpoint(api, method)
            .ok_or_else(|| ApiError::UnknownEndpoint {
                api: api.to_owned(),
                method: method.to_owned(),
            })?;
        let schema = endpoint
            .version(version)
            .ok_or_else(|| ApiError::UnknownVersion {
                api: api.to_owned(),
                method: method.to_owned(),
                version: version.to_owned(),
            })?;
        let collection = endpoint.collection(version);
        let mut rng = StdRng::seed_from_u64(seed);
        let docs: Vec<Value> = (0..count)
            .map(|i| generate_doc(schema, &mut rng, i))
            .collect();
        self.store.insert_many(&collection, docs).map_err(|e| {
            ApiError::Wrapper(WrapperError::permanent(collection.clone(), e.to_string()))
        })
    }

    /// Builds a full-projection [`JsonWrapper`] over one version — the
    /// "define a new wrapper providing all attributes for each release"
    /// assumption of §6.4.
    pub fn wrapper_for(
        &self,
        api: &str,
        method: &str,
        version: &str,
        wrapper_name: &str,
    ) -> Result<JsonWrapper, ApiError> {
        let endpoint = self
            .endpoint(api, method)
            .ok_or_else(|| ApiError::UnknownEndpoint {
                api: api.to_owned(),
                method: method.to_owned(),
            })?;
        let schema = endpoint
            .version(version)
            .ok_or_else(|| ApiError::UnknownVersion {
                api: api.to_owned(),
                method: method.to_owned(),
                version: version.to_owned(),
            })?;
        let fields: Vec<&str> = schema.fields.iter().map(|f| f.name.as_str()).collect();
        self.wrapper_for_projection(api, method, version, wrapper_name, &fields)
    }

    /// Builds a [`JsonWrapper`] over one version that exposes **only** the
    /// requested fields — the wrapper-side half of the projection-pushdown
    /// contract: the aggregation pipeline projects nothing but `fields`, so
    /// the exposed relation (and every scan of it) never carries unused
    /// attributes. Field order is preserved; ID flags come from the version
    /// schema.
    pub fn wrapper_for_projection(
        &self,
        api: &str,
        method: &str,
        version: &str,
        wrapper_name: &str,
        fields: &[&str],
    ) -> Result<JsonWrapper, ApiError> {
        let endpoint = self
            .endpoint(api, method)
            .ok_or_else(|| ApiError::UnknownEndpoint {
                api: api.to_owned(),
                method: method.to_owned(),
            })?;
        let schema = endpoint
            .version(version)
            .ok_or_else(|| ApiError::UnknownVersion {
                api: api.to_owned(),
                method: method.to_owned(),
                version: version.to_owned(),
            })?;
        let mut attrs = Vec::with_capacity(fields.len());
        for name in fields {
            let field = schema
                .field(name)
                .ok_or_else(|| ApiError::UnknownField((*name).to_owned()))?;
            attrs.push(if field.is_id {
                Attribute::id(&field.name)
            } else {
                Attribute::non_id(&field.name)
            });
        }
        let relational_schema = Schema::new(attrs).expect("field names are unique by construction");
        let pipeline =
            Pipeline::new().project(fields.iter().map(|f| Projection::field(*f, *f)).collect());
        Ok(JsonWrapper::new(
            wrapper_name,
            &endpoint.api,
            relational_schema,
            self.store.clone(),
            endpoint.collection(version),
            pipeline,
        )?)
    }
}

fn generate_doc(schema: &VersionSchema, rng: &mut StdRng, ordinal: usize) -> Value {
    let mut map = serde_json::Map::with_capacity(schema.fields.len());
    for field in &schema.fields {
        let value = match &field.kind {
            FieldKind::Int { min, max } => json!(rng.gen_range(*min..=*max)),
            FieldKind::Float { scale } => {
                json!((rng.gen::<f64>() * f64::from(*scale) * 1000.0).round() / 1000.0)
            }
            FieldKind::Str { prefix } => json!(format!("{prefix}-{ordinal}")),
            FieldKind::Bool => json!(rng.gen::<bool>()),
            FieldKind::Timestamp => json!(1_475_000_000i64 + rng.gen_range(0..10_000_000i64)),
        };
        map.insert(field.name.clone(), value);
    }
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::Wrapper;

    fn vod_v1() -> VersionSchema {
        VersionSchema::new(
            "v1",
            vec![
                FieldSpec::id("monitorId", FieldKind::Int { min: 1, max: 20 }),
                FieldSpec::data("timestamp", FieldKind::Timestamp),
                FieldSpec::data("bitrate", FieldKind::Int { min: 1, max: 12 }),
                FieldSpec::data("waitTime", FieldKind::Int { min: 0, max: 10 }),
                FieldSpec::data("watchTime", FieldKind::Int { min: 1, max: 100 }),
            ],
        )
    }

    #[test]
    fn release_and_ingest_generate_documents() {
        let mut sim = ApiSimulator::new();
        sim.add_endpoint("vod", "GET/events");
        sim.release("vod", "GET/events", vod_v1()).unwrap();
        let n = sim.ingest("vod", "GET/events", "v1", 10, 42).unwrap();
        assert_eq!(n, 10);
        assert_eq!(sim.store().count("vod/GET/events/v1"), 10);
    }

    #[test]
    fn ingest_is_deterministic_per_seed() {
        let mut sim_a = ApiSimulator::new();
        sim_a.add_endpoint("vod", "m");
        sim_a.release("vod", "m", vod_v1()).unwrap();
        sim_a.ingest("vod", "m", "v1", 5, 7).unwrap();

        let mut sim_b = ApiSimulator::new();
        sim_b.add_endpoint("vod", "m");
        sim_b.release("vod", "m", vod_v1()).unwrap();
        sim_b.ingest("vod", "m", "v1", 5, 7).unwrap();

        let a = sim_a
            .store()
            .aggregate("vod/m/v1", &Pipeline::new())
            .unwrap();
        let b = sim_b
            .store()
            .aggregate("vod/m/v1", &Pipeline::new())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wrapper_for_exposes_full_projection() {
        let mut sim = ApiSimulator::new();
        sim.add_endpoint("vod", "m");
        sim.release("vod", "m", vod_v1()).unwrap();
        sim.ingest("vod", "m", "v1", 3, 1).unwrap();
        let w = sim.wrapper_for("vod", "m", "v1", "w_v1").unwrap();
        assert_eq!(w.schema().len(), 5);
        assert_eq!(w.schema().id_names(), vec!["monitorId"]);
        assert_eq!(w.scan().unwrap().len(), 3);
    }

    #[test]
    fn wrapper_for_projection_exposes_only_requested_fields() {
        let mut sim = ApiSimulator::new();
        sim.add_endpoint("vod", "m");
        sim.release("vod", "m", vod_v1()).unwrap();
        sim.ingest("vod", "m", "v1", 3, 1).unwrap();
        let w = sim
            .wrapper_for_projection("vod", "m", "v1", "w_narrow", &["monitorId", "bitrate"])
            .unwrap();
        assert_eq!(w.schema().names(), vec!["monitorId", "bitrate"]);
        assert_eq!(w.schema().id_names(), vec!["monitorId"]);
        assert_eq!(w.scan().unwrap().len(), 3);
        assert!(matches!(
            sim.wrapper_for_projection("vod", "m", "v1", "w_bad", &["zz"]),
            Err(ApiError::UnknownField(_))
        ));
    }

    #[test]
    fn evolve_builder_applies_operations() {
        let v2 = vod_v1()
            .evolve("v2")
            .rename("waitTime", "bufferTime")
            .unwrap()
            .remove("bitrate")
            .unwrap()
            .add(FieldSpec::data(
                "resolution",
                FieldKind::Str { prefix: "r" },
            ))
            .unwrap()
            .build();
        assert!(v2.field("bufferTime").is_some());
        assert!(v2.field("waitTime").is_none());
        assert!(v2.field("bitrate").is_none());
        assert!(v2.field("resolution").is_some());
        assert_eq!(
            v2.renames,
            vec![("waitTime".to_owned(), "bufferTime".to_owned())]
        );
    }

    #[test]
    fn diff_detects_all_delta_kinds() {
        let v1 = vod_v1();
        let v2 = v1
            .evolve("v2")
            .rename("waitTime", "bufferTime")
            .unwrap()
            .remove("bitrate")
            .unwrap()
            .add(FieldSpec::data(
                "resolution",
                FieldKind::Str { prefix: "r" },
            ))
            .unwrap()
            .retype("watchTime", FieldKind::Float { scale: 1 })
            .unwrap()
            .build();
        let deltas = diff_versions(&v1, &v2);
        assert!(deltas.contains(&SchemaDelta::RenameField {
            from: "waitTime".into(),
            to: "bufferTime".into()
        }));
        assert!(deltas.contains(&SchemaDelta::DeleteField("bitrate".into())));
        assert!(deltas
            .iter()
            .any(|d| matches!(d, SchemaDelta::AddField(f) if f.name == "resolution")));
        assert!(deltas
            .iter()
            .any(|d| matches!(d, SchemaDelta::RetypeField { name, .. } if name == "watchTime")));
        assert_eq!(deltas.len(), 4);
    }

    #[test]
    fn duplicate_versions_and_fields_are_rejected() {
        let mut sim = ApiSimulator::new();
        sim.add_endpoint("a", "m");
        sim.release("a", "m", vod_v1()).unwrap();
        assert!(matches!(
            sim.release("a", "m", vod_v1()),
            Err(ApiError::DuplicateVersion(_))
        ));
        assert!(matches!(
            vod_v1()
                .evolve("v2")
                .add(FieldSpec::data("bitrate", FieldKind::Bool)),
            Err(ApiError::DuplicateField(_))
        ));
    }

    #[test]
    fn unknown_lookups_error() {
        let sim = ApiSimulator::new();
        assert!(matches!(
            sim.ingest("zz", "m", "v1", 1, 0),
            Err(ApiError::UnknownEndpoint { .. })
        ));
        let mut sim = ApiSimulator::new();
        sim.add_endpoint("a", "m");
        sim.release("a", "m", vod_v1()).unwrap();
        assert!(matches!(
            sim.wrapper_for("a", "m", "v9", "w"),
            Err(ApiError::UnknownVersion { .. })
        ));
    }
}
