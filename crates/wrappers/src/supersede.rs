//! The SUPERSEDE running example's data sources and wrappers (§2.1).
//!
//! Three JSON "REST APIs" backed by the document store, with exactly the
//! sample data of Table 1:
//!
//! * `D1` — the VoD monitoring API (Code 1 documents); wrapper
//!   `w1(VoDmonitorId, lagRatio)` computes `lagRatio = waitTime/watchTime`
//!   (Code 2). A later release renames `lagRatio` → `bufferingRatio`,
//!   yielding wrapper `w4(VoDmonitorId, bufferingRatio)`.
//! * `D2` — the feedback-gathering API; wrapper `w2(FGId, tweet)`.
//! * `D3` — the relationship API; wrapper
//!   `w3(TargetApp, MonitorId, FeedbackId)`.

use crate::json_wrapper::JsonWrapper;
use crate::wrapper::WrapperRegistry;
use bdi_docstore::{AggExpr, DocStore, Pipeline, Projection};
use bdi_relational::Schema;
use serde_json::json;
use std::sync::Arc;

/// Collection names for the three sources.
pub const VOD_COLLECTION: &str = "d1/vod";
pub const VOD_V2_COLLECTION: &str = "d1/vod-v2";
pub const FEEDBACK_COLLECTION: &str = "d2/feedback";
pub const RELATION_COLLECTION: &str = "d3/relations";

/// Data source names, matching the paper's `D1..D3`.
pub const D1: &str = "D1";
pub const D2: &str = "D2";
pub const D3: &str = "D3";

/// Populates a fresh [`DocStore`] with the Table 1 sample data.
///
/// `w1` rows (12, 0.75), (12, 0.90), (18, 0.1) arise from the VoD documents'
/// wait/watch times; `w2` and `w3` data is stored directly.
pub fn sample_docstore() -> DocStore {
    let store = DocStore::new();
    store
        .insert_many(
            VOD_COLLECTION,
            vec![
                // Code 1 document: waitTime 3 / watchTime 4 → lagRatio 0.75.
                json!({"monitorId": 12, "timestamp": 1475010424i64, "bitrate": 6, "waitTime": 3, "watchTime": 4}),
                json!({"monitorId": 12, "timestamp": 1475010489i64, "bitrate": 6, "waitTime": 9, "watchTime": 10}),
                json!({"monitorId": 18, "timestamp": 1475010524i64, "bitrate": 4, "waitTime": 1, "watchTime": 10}),
            ],
        )
        .expect("static sample data is well-formed");
    store
        .insert_many(
            FEEDBACK_COLLECTION,
            vec![
                json!({"feedbackGatheringId": 77, "text": "I continuously see the loading symbol"}),
                json!({"feedbackGatheringId": 45, "text": "Your video player is great!"}),
            ],
        )
        .expect("static sample data is well-formed");
    store
        .insert_many(
            RELATION_COLLECTION,
            vec![
                json!({"appId": 1, "monitor": 12, "feedback": 77}),
                json!({"appId": 2, "monitor": 18, "feedback": 45}),
            ],
        )
        .expect("static sample data is well-formed");
    store
}

/// Adds the evolved VoD API's (version 2) documents, where the quality
/// metric arrives precomputed under the renamed key `bufferingRatio`.
pub fn ingest_vod_v2(store: &DocStore) {
    store
        .insert_many(
            VOD_V2_COLLECTION,
            vec![
                json!({"monitorId": 12, "timestamp": 1480010424i64, "bufferingRatio": 0.42}),
                json!({"monitorId": 18, "timestamp": 1480010525i64, "bufferingRatio": 0.05}),
            ],
        )
        .expect("static sample data is well-formed");
}

/// `w1(VoDmonitorId, lagRatio)` — the Code 2 wrapper.
pub fn wrapper_w1(store: DocStore) -> JsonWrapper {
    JsonWrapper::new(
        "w1",
        D1,
        Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).expect("static schema"),
        store,
        VOD_COLLECTION,
        Pipeline::new().project(vec![
            Projection::field("VoDmonitorId", "monitorId"),
            Projection::computed(
                "lagRatio",
                AggExpr::divide(AggExpr::field("waitTime"), AggExpr::field("watchTime")),
            ),
        ]),
    )
    .expect("static wrapper definition")
}

/// `w2(FGId, tweet)`.
pub fn wrapper_w2(store: DocStore) -> JsonWrapper {
    JsonWrapper::new(
        "w2",
        D2,
        Schema::from_parts(&["FGId"], &["tweet"]).expect("static schema"),
        store,
        FEEDBACK_COLLECTION,
        Pipeline::new().project(vec![
            Projection::field("FGId", "feedbackGatheringId"),
            Projection::field("tweet", "text"),
        ]),
    )
    .expect("static wrapper definition")
}

/// `w3(TargetApp, MonitorId, FeedbackId)` — all IDs, no non-ID attributes.
pub fn wrapper_w3(store: DocStore) -> JsonWrapper {
    JsonWrapper::new(
        "w3",
        D3,
        Schema::from_parts::<&str>(&["TargetApp", "MonitorId", "FeedbackId"], &[])
            .expect("static schema"),
        store,
        RELATION_COLLECTION,
        Pipeline::new().project(vec![
            Projection::field("TargetApp", "appId"),
            Projection::field("MonitorId", "monitor"),
            Projection::field("FeedbackId", "feedback"),
        ]),
    )
    .expect("static wrapper definition")
}

/// `w4(VoDmonitorId, bufferingRatio)` — the post-evolution wrapper for D1's
/// second API version (§2.1: "lagRatio has been renamed to bufferingRatio").
pub fn wrapper_w4(store: DocStore) -> JsonWrapper {
    JsonWrapper::new(
        "w4",
        D1,
        Schema::from_parts(&["VoDmonitorId"], &["bufferingRatio"]).expect("static schema"),
        store,
        VOD_V2_COLLECTION,
        Pipeline::new().project(vec![
            Projection::field("VoDmonitorId", "monitorId"),
            Projection::field("bufferingRatio", "bufferingRatio"),
        ]),
    )
    .expect("static wrapper definition")
}

/// Builds the initial registry `{w1, w2, w3}` over the sample store.
pub fn initial_registry(store: &DocStore) -> WrapperRegistry {
    let mut registry = WrapperRegistry::new();
    registry.register(Arc::new(wrapper_w1(store.clone())));
    registry.register(Arc::new(wrapper_w2(store.clone())));
    registry.register(Arc::new(wrapper_w3(store.clone())));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::Wrapper;
    use bdi_relational::Value;

    #[test]
    fn w1_reproduces_table1() {
        let rel = wrapper_w1(sample_docstore()).scan().unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(
            rel.column("VoDmonitorId").unwrap(),
            vec![Value::Int(12), Value::Int(12), Value::Int(18)]
        );
        assert_eq!(
            rel.column("lagRatio").unwrap(),
            vec![Value::Float(0.75), Value::Float(0.9), Value::Float(0.1)]
        );
    }

    #[test]
    fn w2_reproduces_table1() {
        let rel = wrapper_w2(sample_docstore()).scan().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.value(0, "tweet").unwrap(),
            &Value::Str("I continuously see the loading symbol".into())
        );
    }

    #[test]
    fn w3_reproduces_table1() {
        let rel = wrapper_w3(sample_docstore()).scan().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.schema().id_names(),
            vec!["TargetApp", "MonitorId", "FeedbackId"]
        );
        assert!(rel.schema().non_id_names().is_empty());
    }

    #[test]
    fn w4_serves_the_evolved_schema() {
        let store = sample_docstore();
        ingest_vod_v2(&store);
        let rel = wrapper_w4(store).scan().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.value(0, "bufferingRatio").unwrap(), &Value::Float(0.42));
    }

    #[test]
    fn initial_registry_has_three_wrappers() {
        let registry = initial_registry(&sample_docstore());
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.by_source(D1).len(), 1);
    }
}
