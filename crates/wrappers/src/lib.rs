//! # bdi-wrappers — the wrapper layer and REST API simulator
//!
//! Wrappers are the paper's unit of source access (mediator/wrapper
//! architecture): each exposes one schema version of one data source as a
//! flat 1NF relation `w(a_ID, a_nID)`. This crate provides:
//!
//! * the [`wrapper::Wrapper`] trait and a [`wrapper::WrapperRegistry`] that
//!   doubles as the walk evaluator's source resolver,
//! * [`json_wrapper::JsonWrapper`] — wrappers defined as aggregation
//!   pipelines over JSON collections (the paper's Code 2),
//! * [`table_wrapper::TableWrapper`] — in-memory wrappers for synthetic
//!   workloads (Figure 8),
//! * [`remote::RemoteWrapper`] — a fault-tolerant wrapper over a paged,
//!   fallible [`remote::SimulatedEndpoint`], with retries, backoff, and
//!   per-attempt timeouts ([`remote::RetryPolicy`]),
//! * [`api`] — a versioned REST API simulator with deterministic event
//!   generation and schema diffing, standing in for the live third-party
//!   APIs the paper evaluates against,
//! * [`supersede`] — the running example's sources and wrappers with the
//!   exact Table 1 data.

pub mod api;
pub mod json_wrapper;
pub mod remote;
pub mod spec;
pub mod supersede;
pub mod table_wrapper;
pub mod wrapper;

pub use api::{ApiError, ApiSimulator, Endpoint, FieldKind, FieldSpec, SchemaDelta, VersionSchema};
pub use json_wrapper::JsonWrapper;
pub use remote::{
    FaultProfile, RemotePage, RemoteWrapper, RetryPolicy, SimulatedEndpoint, TransportError,
};
pub use spec::WrapperSpec;
pub use table_wrapper::TableWrapper;
pub use wrapper::{FailureKind, RetryStats, Wrapper, WrapperError, WrapperRegistry};
