//! A wrapper over an in-memory relation — used for tests, synthetic
//! benchmarks (Figure 8's disjoint-wrapper generator) and sources that are
//! natively tabular.

use crate::wrapper::{Wrapper, WrapperError};
use bdi_relational::plan::ScanRequest;
use bdi_relational::{Relation, Schema, Tuple};
use parking_lot::RwLock;

/// A static (but appendable) in-memory wrapper.
pub struct TableWrapper {
    name: String,
    source: String,
    schema: Schema,
    rows: RwLock<Vec<Tuple>>,
}

impl TableWrapper {
    /// Builds the wrapper, validating every row against the schema.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Self, WrapperError> {
        // Validate arity once up front.
        Relation::new(schema.clone(), rows.clone())?;
        Ok(Self {
            name: name.into(),
            source: source.into(),
            schema,
            rows: RwLock::new(rows),
        })
    }

    /// Appends a row (new source data arriving).
    pub fn push(&self, row: Tuple) -> Result<(), WrapperError> {
        if row.len() != self.schema.len() {
            return Err(WrapperError::Relation(
                bdi_relational::RelationError::Arity {
                    expected: self.schema.len(),
                    found: row.len(),
                },
            ));
        }
        self.rows.write().push(row);
        Ok(())
    }
}

impl Wrapper for TableWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        Ok(Relation::new(
            self.schema.clone(),
            self.rows.read().clone(),
        )?)
    }

    /// Native pushdown: only the requested cells are ever cloned, and rows
    /// failing any pushed predicate are skipped under the read lock instead
    /// of being materialized first. Every predicate kind is evaluated
    /// in-scan ([`bdi_relational::Predicate::matches`]), so the wrapper
    /// claims all filters (the [`crate::Wrapper::claims_filter`] default).
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        let mut indices = Vec::with_capacity(request.columns().len());
        for column in request.columns() {
            indices.push(
                self.schema
                    .require(column)
                    .map_err(bdi_relational::RelationError::Schema)?,
            );
        }
        let mut filters = Vec::with_capacity(request.filters().len());
        for f in request.filters() {
            filters.push((
                self.schema
                    .require(&f.column)
                    .map_err(bdi_relational::RelationError::Schema)?,
                &f.predicate,
            ));
        }
        let rows = self.rows.read();
        let mut out = Vec::with_capacity(if filters.is_empty() { rows.len() } else { 0 });
        for row in rows.iter() {
            if !filters.iter().all(|(idx, p)| p.matches(&row[*idx])) {
                continue;
            }
            out.push(indices.iter().map(|&i| row[i].clone()).collect());
        }
        Ok(Relation::new(request.output().clone(), out)?)
    }

    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        self.spec().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_relational::Value;

    #[test]
    fn scan_returns_rows() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1), Value::Str("a".into())]],
        )
        .unwrap();
        assert_eq!(w.scan().unwrap().len(), 1);
        assert_eq!(w.name(), "w");
        assert_eq!(w.source(), "D");
    }

    #[test]
    fn construction_validates_arity() {
        let err = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1)]],
        );
        assert!(err.is_err());
    }

    #[test]
    fn scan_request_matches_reference_apply() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x", "y"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Str("a".into()), Value::Int(10)],
                vec![Value::Int(2), Value::Str("b".into()), Value::Int(20)],
                vec![Value::Int(1), Value::Str("c".into()), Value::Int(30)],
            ],
        )
        .unwrap();
        let request = ScanRequest::new(
            vec!["y".into(), "id".into()],
            Schema::new(vec![
                bdi_relational::Attribute::non_id("D/y"),
                bdi_relational::Attribute::id("D/id"),
            ])
            .unwrap(),
        )
        .unwrap()
        .with_filter("id", Value::Int(1));
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
        assert_eq!(native.value(1, "D/y"), Some(&Value::Int(30)));
        // Unknown columns are rejected, as in the reference.
        let bad = ScanRequest::new(
            vec!["zz".into()],
            Schema::from_parts::<&str>(&[], &["zz"]).unwrap(),
        )
        .unwrap();
        assert!(w.scan_request(&bad).is_err());
    }

    #[test]
    fn scan_request_evaluates_predicate_conjunctions() {
        use bdi_relational::Predicate;
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Float(0.25)],
                vec![Value::Int(2), Value::Float(0.75)],
                vec![Value::Int(3), Value::Float(0.5)],
                vec![Value::Null, Value::Float(0.9)],
            ],
        )
        .unwrap();
        let request = ScanRequest::full(w.schema())
            .with_predicate("id", Predicate::between(1, 3))
            .with_predicate(
                "x",
                Predicate::in_set([Value::Float(0.25), Value::Float(0.5)]),
            );
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
    }

    #[test]
    fn push_appends_and_validates() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![],
        )
        .unwrap();
        w.push(vec![Value::Int(1), Value::Null]).unwrap();
        assert!(w.push(vec![Value::Int(1)]).is_err());
        assert_eq!(w.scan().unwrap().len(), 1);
    }
}
