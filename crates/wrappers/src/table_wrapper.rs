//! A wrapper over an in-memory relation — used for tests, synthetic
//! benchmarks (Figure 8's disjoint-wrapper generator) and sources that are
//! natively tabular.

use crate::wrapper::{Wrapper, WrapperError};
use bdi_relational::{Relation, Schema, Tuple};
use parking_lot::RwLock;

/// A static (but appendable) in-memory wrapper.
pub struct TableWrapper {
    name: String,
    source: String,
    schema: Schema,
    rows: RwLock<Vec<Tuple>>,
}

impl TableWrapper {
    /// Builds the wrapper, validating every row against the schema.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Self, WrapperError> {
        // Validate arity once up front.
        Relation::new(schema.clone(), rows.clone())?;
        Ok(Self {
            name: name.into(),
            source: source.into(),
            schema,
            rows: RwLock::new(rows),
        })
    }

    /// Appends a row (new source data arriving).
    pub fn push(&self, row: Tuple) -> Result<(), WrapperError> {
        if row.len() != self.schema.len() {
            return Err(WrapperError::Relation(
                bdi_relational::RelationError::Arity {
                    expected: self.schema.len(),
                    found: row.len(),
                },
            ));
        }
        self.rows.write().push(row);
        Ok(())
    }
}

impl Wrapper for TableWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        Ok(Relation::new(self.schema.clone(), self.rows.read().clone())?)
    }

    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        self.spec().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_relational::Value;

    #[test]
    fn scan_returns_rows() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1), Value::Str("a".into())]],
        )
        .unwrap();
        assert_eq!(w.scan().unwrap().len(), 1);
        assert_eq!(w.name(), "w");
        assert_eq!(w.source(), "D");
    }

    #[test]
    fn construction_validates_arity() {
        let err = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1)]],
        );
        assert!(err.is_err());
    }

    #[test]
    fn push_appends_and_validates() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![],
        )
        .unwrap();
        w.push(vec![Value::Int(1), Value::Null]).unwrap();
        assert!(w.push(vec![Value::Int(1)]).is_err());
        assert_eq!(w.scan().unwrap().len(), 1);
    }
}
