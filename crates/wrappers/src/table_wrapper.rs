//! A wrapper over an in-memory relation — used for tests, synthetic
//! benchmarks (Figure 8's disjoint-wrapper generator) and sources that are
//! natively tabular.

use crate::wrapper::{RowBatches, Wrapper, WrapperError};
use bdi_relational::plan::{Predicate, ScanRequest};
use bdi_relational::{Relation, Schema, StatsBuilder, TableStats, Tuple, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest IN-set the scan loop pre-sorts for binary-search membership:
/// below this, the linear `Predicate::matches` scan wins on constant cost.
const SORTED_IN_MIN: usize = 9;

/// A pushed-down predicate compiled for the scan's hot loop. Semi-join
/// sideways passing injects IN-sets of up to thousands of build keys;
/// evaluating those linearly per row would cost more than the shipped rows
/// saved, so large sets are sorted once and probed by binary search —
/// `Value`'s total order is consistent with its equality (cross-type
/// numerics compare `Equal`), so the membership answers are identical to
/// [`Predicate::matches`].
enum CompiledFilter {
    Pred(Predicate),
    SortedIn(Vec<Value>),
}

impl CompiledFilter {
    fn new(predicate: &Predicate) -> Self {
        match predicate {
            Predicate::In(values) if values.len() >= SORTED_IN_MIN => {
                let mut sorted = values.clone();
                sorted.sort();
                sorted.dedup();
                CompiledFilter::SortedIn(sorted)
            }
            other => CompiledFilter::Pred(other.clone()),
        }
    }

    fn matches(&self, value: &Value) -> bool {
        match self {
            CompiledFilter::Pred(predicate) => predicate.matches(value),
            CompiledFilter::SortedIn(values) => values.binary_search(value).is_ok(),
        }
    }
}

/// Write-time sketch state behind [`TableWrapper::column_stats`]: the
/// incremental builder plus a memoized snapshot keyed by the data version
/// it was taken under. Guarded by one mutex so a push's row append,
/// version bump and sketch update are atomic with respect to a snapshot
/// request — a published snapshot always describes exactly the rows of
/// its version.
struct StatsState {
    builder: StatsBuilder,
    cached: Option<(u64, Arc<TableStats>)>,
}

/// A static (but appendable) in-memory wrapper.
pub struct TableWrapper {
    name: String,
    source: String,
    schema: Schema,
    rows: RwLock<Vec<Tuple>>,
    /// Bumped by every [`TableWrapper::push`] — the wrapper's
    /// [`Wrapper::data_version`].
    version: AtomicU64,
    /// Capability fingerprint, computed once — this wrapper's claims
    /// depend only on its immutable schema.
    claims_fp: u64,
    /// Per-column sketches, maintained incrementally at write time.
    stats: Mutex<StatsState>,
    /// Multiplier applied to the published snapshot's row and distinct
    /// counts (see [`TableWrapper::with_stats_distortion`]). `None`
    /// publishes the sketches untouched.
    stats_distortion: Option<f64>,
}

impl TableWrapper {
    /// Builds the wrapper, validating every row against the schema.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Self, WrapperError> {
        // Validate arity once up front.
        Relation::new(schema.clone(), rows.clone())?;
        let mut builder = StatsBuilder::new(schema.names());
        for row in &rows {
            builder.observe_row(row);
        }
        let mut wrapper = Self {
            name: name.into(),
            source: source.into(),
            schema,
            rows: RwLock::new(rows),
            version: AtomicU64::new(0),
            claims_fp: 0,
            stats: Mutex::new(StatsState {
                builder,
                cached: None,
            }),
            stats_distortion: None,
        };
        wrapper.claims_fp = crate::wrapper::probe_claims_fingerprint(&wrapper.schema, |f| {
            Wrapper::claims_filter(&wrapper, f)
        });
        Ok(wrapper)
    }

    /// Makes [`Wrapper::column_stats`] publish deliberately wrong
    /// sketches: row and distinct counts multiplied by `factor`, bounds
    /// and membership filters dropped — the shape of a stale snapshot
    /// after the table grew (or shrank) by that factor. Only *estimates*
    /// are distorted; scans, claims and the exact unfiltered
    /// [`Wrapper::scan_hint`] are untouched, so plans may get slower but
    /// answers (and row order) cannot change. Built for the misestimation
    /// benchmarks and the adversarial differential tests.
    pub fn with_stats_distortion(mut self, factor: f64) -> Self {
        self.stats_distortion = Some(factor);
        self
    }

    /// Appends a row (new source data arriving), bumps the data version
    /// and folds the row into the write-time sketches — all under the
    /// stats lock, so a concurrent [`Wrapper::column_stats`] can never
    /// observe a version whose sketches miss the row.
    pub fn push(&self, row: Tuple) -> Result<(), WrapperError> {
        if row.len() != self.schema.len() {
            return Err(WrapperError::Relation(
                bdi_relational::RelationError::Arity {
                    expected: self.schema.len(),
                    found: row.len(),
                },
            ));
        }
        let mut stats = self.stats.lock();
        stats.builder.observe_row(&row);
        stats.cached = None;
        self.rows.write().push(row);
        self.version.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Overwrites the data-version stamp — recovery only. Replayed pushes
    /// bump normally, so a recovered wrapper whose counter starts from the
    /// persisted value ends at exactly the pre-crash stamp; without this a
    /// rebooted wrapper restarts at 0 and a scan cached before the restart
    /// could validate against different post-restart rows.
    pub fn restore_data_version(&self, version: u64) {
        let mut stats = self.stats.lock();
        self.version.store(version, Ordering::Release);
        // Invalidate the memoized sketch snapshot: it is keyed by version,
        // and the restored value may collide with the stale key.
        stats.cached = None;
    }
}

impl Wrapper for TableWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        Ok(Relation::new(
            self.schema.clone(),
            self.rows.read().clone(),
        )?)
    }

    /// Native pushdown: only the requested cells are ever cloned, and rows
    /// failing any pushed predicate are skipped under the read lock instead
    /// of being materialized first. Every predicate kind is evaluated
    /// in-scan ([`bdi_relational::Predicate::matches`]), so the wrapper
    /// claims all filters (the [`crate::Wrapper::claims_filter`] default).
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        // One maximal batch — a single lock hold, like the pre-streaming
        // implementation.
        let mut rel = Relation::empty(request.output().clone());
        for batch in self.scan_request_batches(request, usize::MAX)? {
            for row in batch? {
                rel.push(row)?;
            }
        }
        Ok(rel)
    }

    /// Native streaming pushdown: each pulled batch re-acquires the read
    /// lock, examines at most `batch_rows` rows under it — the bound is on
    /// rows *examined*, so even a predicate matching almost nothing never
    /// stretches one hold across the table — and clones only the projected
    /// cells of the survivors. The lock is never held across batches, so
    /// appends interleave with long scans instead of blocking behind them.
    /// The scan covers the rows present when it started (appends landing
    /// mid-scan surface on the next scan, which also carries a new
    /// [`Wrapper::data_version`]).
    fn scan_request_batches<'a>(
        &'a self,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<RowBatches<'a>, WrapperError> {
        let mut indices = Vec::with_capacity(request.columns().len());
        for column in request.columns() {
            indices.push(
                self.schema
                    .require(column)
                    .map_err(bdi_relational::RelationError::Schema)?,
            );
        }
        let mut filters: Vec<(usize, CompiledFilter)> = Vec::with_capacity(request.filters().len());
        for f in request.filters() {
            filters.push((
                self.schema
                    .require(&f.column)
                    .map_err(bdi_relational::RelationError::Schema)?,
                CompiledFilter::new(&f.predicate),
            ));
        }
        let batch_rows = batch_rows.max(1);
        let total = self.rows.read().len();
        let mut cursor = 0usize;
        Ok(Box::new(std::iter::from_fn(move || {
            while cursor < total {
                let rows = self.rows.read();
                // `total` can only have grown (push appends); the prefix the
                // scan covers is immutable, so re-locking is consistent.
                // The min is shrink-defensive anyway — and if the vec ever
                // shrank below the cursor, end the scan rather than spin.
                let end = total.min(rows.len());
                if end <= cursor {
                    return None;
                }
                // Examine at most `batch_rows` rows under this hold.
                let window_end = end.min(cursor.saturating_add(batch_rows));
                let mut out: Vec<Tuple> = Vec::new();
                while cursor < window_end {
                    let row = &rows[cursor];
                    cursor += 1;
                    if filters.iter().all(|(idx, p)| p.matches(&row[*idx])) {
                        out.push(indices.iter().map(|&i| row[i].clone()).collect());
                    }
                }
                if !out.is_empty() {
                    return Some(Ok(out));
                }
                // Whole window filtered out: release the lock, keep going.
            }
            None
        })))
    }

    fn data_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Exact for unfiltered requests (the projection never changes the row
    /// count); an upper bound when the request carries filters.
    fn scan_hint(&self, _request: &ScanRequest) -> Option<u64> {
        Some(self.rows.read().len() as u64)
    }

    /// The write-time sketches, snapshotted lazily and memoized per data
    /// version. The snapshot is taken under the same lock
    /// [`TableWrapper::push`] updates the sketches under, so its version
    /// tag always describes exactly the rows visible at that version.
    fn column_stats(&self) -> Option<Arc<TableStats>> {
        let mut stats = self.stats.lock();
        let version = self.version.load(Ordering::Acquire);
        if let Some((cached_version, snapshot)) = &stats.cached {
            if *cached_version == version {
                return Some(Arc::clone(snapshot));
            }
        }
        let mut snapshot = stats.builder.snapshot(version);
        if let Some(factor) = self.stats_distortion {
            snapshot = snapshot.scaled(factor);
        }
        let snapshot = Arc::new(snapshot);
        stats.cached = Some((version, Arc::clone(&snapshot)));
        Some(snapshot)
    }

    /// Construction-time probe hash (claims never change at run time).
    fn claims_fingerprint(&self) -> u64 {
        self.claims_fp
    }

    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        self.spec().ok()
    }

    fn as_table(&self) -> Option<&TableWrapper> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_relational::Value;

    #[test]
    fn scan_returns_rows() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1), Value::Str("a".into())]],
        )
        .unwrap();
        assert_eq!(w.scan().unwrap().len(), 1);
        assert_eq!(w.name(), "w");
        assert_eq!(w.source(), "D");
    }

    #[test]
    fn construction_validates_arity() {
        let err = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![vec![Value::Int(1)]],
        );
        assert!(err.is_err());
    }

    #[test]
    fn scan_request_matches_reference_apply() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x", "y"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Str("a".into()), Value::Int(10)],
                vec![Value::Int(2), Value::Str("b".into()), Value::Int(20)],
                vec![Value::Int(1), Value::Str("c".into()), Value::Int(30)],
            ],
        )
        .unwrap();
        let request = ScanRequest::new(
            vec!["y".into(), "id".into()],
            Schema::new(vec![
                bdi_relational::Attribute::non_id("D/y"),
                bdi_relational::Attribute::id("D/id"),
            ])
            .unwrap(),
        )
        .unwrap()
        .with_filter("id", Value::Int(1));
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
        assert_eq!(native.value(1, "D/y"), Some(&Value::Int(30)));
        // Unknown columns are rejected, as in the reference.
        let bad = ScanRequest::new(
            vec!["zz".into()],
            Schema::from_parts::<&str>(&[], &["zz"]).unwrap(),
        )
        .unwrap();
        assert!(w.scan_request(&bad).is_err());
    }

    #[test]
    fn scan_request_evaluates_predicate_conjunctions() {
        use bdi_relational::Predicate;
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Float(0.25)],
                vec![Value::Int(2), Value::Float(0.75)],
                vec![Value::Int(3), Value::Float(0.5)],
                vec![Value::Null, Value::Float(0.9)],
            ],
        )
        .unwrap();
        let request = ScanRequest::full(w.schema())
            .with_predicate("id", Predicate::between(1, 3))
            .with_predicate(
                "x",
                Predicate::in_set([Value::Float(0.25), Value::Float(0.5)]),
            );
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
    }

    #[test]
    fn push_appends_and_validates() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![],
        )
        .unwrap();
        w.push(vec![Value::Int(1), Value::Null]).unwrap();
        assert!(w.push(vec![Value::Int(1)]).is_err());
        assert_eq!(w.scan().unwrap().len(), 1);
    }

    #[test]
    fn push_bumps_data_version() {
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![],
        )
        .unwrap();
        assert_eq!(w.data_version(), 0);
        w.push(vec![Value::Int(1), Value::Null]).unwrap();
        w.push(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(w.data_version(), 2);
        // A rejected row mutates nothing and stamps nothing.
        assert!(w.push(vec![Value::Int(3)]).is_err());
        assert_eq!(w.data_version(), 2);
    }

    #[test]
    fn native_batches_match_reference_at_every_size() {
        use bdi_relational::Predicate;
        let w = TableWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            (0..10)
                .map(|i| vec![Value::Int(i % 4), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        let request = ScanRequest::new(
            vec!["x".into()],
            Schema::from_parts::<&str>(&[], &["D/x"]).unwrap(),
        )
        .unwrap()
        .with_predicate("id", Predicate::between(1, 2));
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(reference.len(), 5);
        for batch_rows in [1usize, 3, usize::MAX] {
            let mut rows: Vec<Tuple> = Vec::new();
            for batch in w.scan_request_batches(&request, batch_rows).unwrap() {
                let batch = batch.unwrap();
                assert!(!batch.is_empty());
                assert!(batch.len() <= batch_rows);
                rows.extend(batch);
            }
            assert_eq!(rows, reference.rows(), "batch_rows={batch_rows}");
        }
        // Unknown columns fail at iterator construction, like the eager path.
        let bad = ScanRequest::new(
            vec!["zz".into()],
            Schema::from_parts::<&str>(&[], &["zz"]).unwrap(),
        )
        .unwrap();
        assert!(w.scan_request_batches(&bad, 4).is_err());
    }
}
