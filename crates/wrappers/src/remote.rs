//! Fault-tolerant remote sources: a paged, fallible endpoint and the
//! retrying wrapper that fronts it.
//!
//! The paper's wrappers front *live, remote, unreliable* sources; every
//! other wrapper kind in this crate is an in-process structure that can
//! only fail by failing the whole query. This module supplies the missing
//! failure modes, deterministically and without a network:
//!
//! * [`SimulatedEndpoint`] — an in-process "server" holding a relation and
//!   serving it **page by page** through a query-string protocol:
//!   [`RemoteWrapper`] translates a [`ScanRequest`]'s projection and
//!   filters (equality, IN-set, range) into query params, and the endpoint
//!   evaluates them with the normative [`Predicate::matches`] semantics,
//!   so pushdown answers are identical to every other wrapper kind's.
//! * [`FaultProfile`] — the endpoint's fallible transport: per-page
//!   latency, a seeded random transient-error rate, deterministic per-page
//!   transient failures, and a hard (permanent) failure after N pages.
//! * [`RetryPolicy`] — max attempts, capped exponential backoff, and a
//!   per-attempt timeout. Only [`crate::FailureKind::Transient`] failures are
//!   retried; a permanent failure aborts the scan immediately.
//! * [`RemoteWrapper`] — a [`Wrapper`] whose
//!   [`Wrapper::scan_request_batches`] runs the pager on a detached
//!   producer thread feeding a bounded queue, so page latency overlaps
//!   with the mediator's execution and a stalled endpoint surfaces as a
//!   transient timeout error instead of a hang. Retry activity is counted
//!   in [`RetryStats`], surfaced through [`Wrapper::retry_stats`].

use crate::wrapper::{RetryStats, RowBatches, Wrapper, WrapperError};
use bdi_relational::plan::{Bound, ColumnFilter, Predicate, ScanRequest};
use bdi_relational::{Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pages a [`RemoteWrapper`]'s producer thread may fetch ahead of its
/// consumer: the bounded queue is the backpressure that keeps a fast
/// endpoint from buffering an unbounded number of pages in the mediator.
pub const REMOTE_QUEUE_PAGES: usize = 4;

/// Retry behaviour for a fault-tolerant wrapper's page fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per page, the first one included (minimum 1).
    pub max_attempts: u32,
    /// Backoff slept after the first failed attempt; doubles per retry.
    pub initial_backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// An attempt running longer than this counts as a transient timeout
    /// (the fetch itself is not cancelled — the result is discarded).
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 5 ms → 80 ms capped backoff, 1 s per-attempt timeout.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(80),
            attempt_timeout: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff slept after failed attempt number `attempt` (1-based):
    /// `initial_backoff × 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .initial_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        doubled.min(self.max_backoff)
    }

    /// Upper bound on the wall-clock one page can consume under this
    /// policy (every attempt timing out, every backoff at its cap), plus a
    /// small scheduling slack. A consumer waiting longer than this on a
    /// page knows the producer is stalled, not retrying.
    pub fn page_budget(&self) -> Duration {
        (self.attempt_timeout + self.max_backoff)
            .saturating_mul(self.max_attempts.max(1))
            .saturating_add(Duration::from_millis(50))
    }
}

/// Configurable faults a [`SimulatedEndpoint`]'s transport injects.
/// The default profile is perfectly reliable and instantaneous.
#[derive(Debug, Clone, Default)]
pub struct FaultProfile {
    /// Latency added to every fetch (successful or not).
    pub page_latency: Duration,
    /// Probability in `[0, 1]` that any given fetch fails transiently,
    /// drawn from an RNG seeded with [`FaultProfile::seed`] — runs with
    /// the same seed observe the same fault sequence.
    pub transient_error_rate: f64,
    /// After this many pages have been served successfully, every further
    /// fetch fails **permanently** (the source "went away" mid-query).
    pub hard_fail_after: Option<u64>,
    /// Deterministic transient faults: page index → number of leading
    /// fetch attempts of that page that fail transiently (across the
    /// endpoint's lifetime). `u64::MAX` makes the page fail every retry —
    /// the "retry exhausts" case.
    pub transient_failures: BTreeMap<u64, u64>,
    /// Seed for the random transient-error stream.
    pub seed: u64,
}

impl FaultProfile {
    /// The seed to use for chaos runs: the `BDI_FAULT_SEED` environment
    /// variable when set and parseable, `default` otherwise. CI sweeps
    /// this across several seeds so retry paths are exercised on every
    /// run.
    pub fn env_seed(default: u64) -> u64 {
        std::env::var("BDI_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    }
}

/// One page of a [`SimulatedEndpoint`] response.
#[derive(Debug, Clone, PartialEq)]
pub struct RemotePage {
    /// The page's rows, already projected and filtered server-side.
    pub rows: Vec<Tuple>,
    /// Whether this is the final page of the result.
    pub last: bool,
}

/// A failure reported by the endpoint's transport, classified for the
/// retry loop.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TransportError {
    /// Momentary — retrying the same fetch may succeed.
    #[error("transient transport error: {0}")]
    Transient(String),
    /// Definitive — the endpoint rejected the query or is gone.
    #[error("permanent transport error: {0}")]
    Permanent(String),
}

/// An in-process paged "server" over a relation, reached only through the
/// query-string protocol of [`SimulatedEndpoint::fetch`] and failing
/// according to its [`FaultProfile`]. Shared behind an [`Arc`] between the
/// owning [`RemoteWrapper`] and its detached pager threads.
pub struct SimulatedEndpoint {
    data: Relation,
    /// Server-side cap on rows per page (requests asking for more are
    /// clamped, like any real paged API).
    page_rows: usize,
    profile: FaultProfile,
    rng: Mutex<StdRng>,
    /// Pages served successfully so far (drives `hard_fail_after`).
    served: AtomicU64,
    /// Fetch attempts seen per page index (drives `transient_failures`).
    page_attempts: Mutex<BTreeMap<u64, u64>>,
}

impl SimulatedEndpoint {
    /// An endpoint serving `data` in pages of at most `page_rows` rows,
    /// failing per `profile`.
    pub fn new(data: Relation, page_rows: usize, profile: FaultProfile) -> Self {
        let rng = StdRng::seed_from_u64(profile.seed);
        Self {
            data,
            page_rows: page_rows.max(1),
            profile,
            rng: Mutex::new(rng),
            served: AtomicU64::new(0),
            page_attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// The relation's schema (what a wrapper over this endpoint exposes).
    pub fn schema(&self) -> &Schema {
        self.data.schema()
    }

    /// Total rows behind the endpoint (the wrapper's unfiltered scan
    /// hint).
    pub fn row_count(&self) -> u64 {
        self.data.len() as u64
    }

    /// Pages served successfully over the endpoint's lifetime.
    pub fn pages_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Serves one page for a query string rendered by
    /// [`render_params`]: sleeps the profile's latency, injects its
    /// faults, then evaluates the parsed projection/filters with
    /// [`Predicate::matches`] and slices the requested page out of the
    /// filtered result. Malformed or unknown-column queries fail
    /// permanently.
    pub fn fetch(&self, params: &str) -> Result<RemotePage, TransportError> {
        if !self.profile.page_latency.is_zero() {
            std::thread::sleep(self.profile.page_latency);
        }
        let query = parse_params(params, self.data.schema())
            .map_err(|e| TransportError::Permanent(format!("bad request: {e}")))?;
        // Deterministic per-page transient faults, counted across the
        // endpoint's lifetime: attempt n of page p fails while
        // n < transient_failures[p].
        {
            let mut attempts = self
                .page_attempts
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let seen = attempts.entry(query.page).or_insert(0);
            let budget = self
                .profile
                .transient_failures
                .get(&query.page)
                .copied()
                .unwrap_or(0);
            let attempt = *seen;
            *seen = seen.saturating_add(1);
            if attempt < budget {
                return Err(TransportError::Transient(format!(
                    "injected transient fault on page {} (attempt {})",
                    query.page,
                    attempt + 1
                )));
            }
        }
        if let Some(limit) = self.profile.hard_fail_after {
            if self.served.load(Ordering::Relaxed) >= limit {
                return Err(TransportError::Permanent(format!(
                    "source went away after serving {limit} pages"
                )));
            }
        }
        if self.profile.transient_error_rate > 0.0 {
            let roll: f64 = self
                .rng
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .gen();
            if roll < self.profile.transient_error_rate {
                return Err(TransportError::Transient(format!(
                    "random transient fault on page {}",
                    query.page
                )));
            }
        }
        let schema = self.data.schema();
        let mut filter_indices: Vec<(usize, &Predicate)> = Vec::new();
        for f in &query.filters {
            let i = schema.index_of(&f.column).ok_or_else(|| {
                TransportError::Permanent(format!("unknown filter column {:?}", f.column))
            })?;
            filter_indices.push((i, &f.predicate));
        }
        let mut filtered: Vec<Tuple> = Vec::new();
        for row in self.data.rows() {
            if !filter_indices
                .iter()
                .all(|(i, p)| row.get(*i).is_some_and(|v| p.matches(v)))
            {
                continue;
            }
            let projected: Option<Tuple> =
                query.columns.iter().map(|&i| row.get(i).cloned()).collect();
            match projected {
                Some(tuple) => filtered.push(tuple),
                None => {
                    return Err(TransportError::Permanent(
                        "row shorter than its schema".to_owned(),
                    ))
                }
            }
        }
        let rows_per_page = query.rows.min(self.page_rows).max(1);
        let start = (query.page as usize).saturating_mul(rows_per_page);
        let end = start.saturating_add(rows_per_page).min(filtered.len());
        let rows = filtered
            .get(start..end)
            .map(<[Tuple]>::to_vec)
            .unwrap_or_default();
        let last = end >= filtered.len();
        self.served.fetch_add(1, Ordering::Relaxed);
        Ok(RemotePage { rows, last })
    }
}

/// A parsed endpoint query: projected column indices (endpoint-schema
/// positions), filters, page index and requested page size.
struct EndpointQuery {
    columns: Vec<usize>,
    filters: Vec<ColumnFilter>,
    page: u64,
    rows: usize,
}

/// Characters with structural meaning in the query-string protocol; they
/// are percent-escaped wherever user data (column names, string literals)
/// is embedded.
const RESERVED: &[char] = &['%', '&', '=', ',', '|', ';'];

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if RESERVED.contains(&c) {
            let mut buf = [0u8; 4];
            for byte in c.encode_utf8(&mut buf).as_bytes() {
                out.push_str(&format!("%{byte:02X}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn unescape(text: &str) -> Result<String, String> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        if byte == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {text:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii escape".to_string())?;
            out.push(
                u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad escape %{hex} in {text:?}"))?,
            );
            i += 3;
        } else {
            out.push(byte);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("invalid UTF-8 after unescaping {text:?}"))
}

/// Typed literal → wire form: `n`, `b:true`, `i:42`, `f:2.5`, `s:text`.
fn render_value(value: &Value) -> String {
    match value {
        Value::Null => "n".to_owned(),
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("i:{i}"),
        // `{:?}` is the shortest round-trip form (parses back bit-exact).
        Value::Float(f) => format!("f:{f:?}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "n" {
        return Ok(Value::Null);
    }
    let (kind, body) = text
        .split_once(':')
        .ok_or_else(|| format!("untyped literal {text:?}"))?;
    match kind {
        "b" => body
            .parse()
            .map(Value::Bool)
            .map_err(|_| format!("bad bool {body:?}")),
        "i" => body
            .parse()
            .map(Value::Int)
            .map_err(|_| format!("bad int {body:?}")),
        "f" => body
            .parse()
            .map(Value::Float)
            .map_err(|_| format!("bad float {body:?}")),
        "s" => unescape(body).map(Value::Str),
        other => Err(format!("unknown literal kind {other:?}")),
    }
}

/// One range bound → wire form: empty (absent), `i<lit>` (inclusive) or
/// `x<lit>` (exclusive).
fn render_bound(bound: &Option<Bound>) -> String {
    match bound {
        None => String::new(),
        Some(b) => format!(
            "{}{}",
            if b.inclusive { 'i' } else { 'x' },
            render_value(&b.value)
        ),
    }
}

fn parse_bound(text: &str) -> Result<Option<Bound>, String> {
    if text.is_empty() {
        return Ok(None);
    }
    let (flag, rest) = text
        .split_at_checked(1)
        .ok_or_else(|| format!("bad bound flag in {text:?}"))?;
    let inclusive = match flag {
        "i" => true,
        "x" => false,
        other => return Err(format!("bad bound flag {other:?}")),
    };
    Ok(Some(Bound {
        value: parse_value(rest)?,
        inclusive,
    }))
}

/// Renders a [`ScanRequest`] page fetch as the endpoint's query string:
/// `cols=<c1>,<c2>&page=<n>&rows=<m>` plus one `eq:<col>=<lit>`,
/// `in:<col>=<lit>|<lit>…` or `rg:<col>=<bound>;<bound>` param per filter.
/// Exposed (with [`SimulatedEndpoint::fetch`]) so tests can speak the
/// protocol directly.
pub fn render_params(request: &ScanRequest, page: u64, rows: usize) -> String {
    let mut params = vec![
        format!(
            "cols={}",
            request
                .columns()
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        ),
        format!("page={page}"),
        format!("rows={rows}"),
    ];
    for filter in request.filters() {
        let column = escape(&filter.column);
        params.push(match &filter.predicate {
            Predicate::Eq(v) => format!("eq:{column}={}", render_value(v)),
            Predicate::In(vs) => format!(
                "in:{column}={}",
                vs.iter().map(render_value).collect::<Vec<_>>().join("|")
            ),
            Predicate::Range { min, max } => {
                format!("rg:{column}={};{}", render_bound(min), render_bound(max))
            }
            // Never claimed by the remote wrapper ([`Wrapper::claims_filter`]),
            // so a Bloom reaching the wire is a planner bug: render a param
            // kind the endpoint rejects, surfacing it as a loud query error
            // instead of silently dropping the filter.
            Predicate::Bloom(_) => format!("bloom:{column}=unsupported"),
        });
    }
    params.join("&")
}

fn parse_params(params: &str, schema: &Schema) -> Result<EndpointQuery, String> {
    let mut columns = None;
    let mut page = 0u64;
    let mut rows = usize::MAX;
    let mut filters = Vec::new();
    for param in params.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = param
            .split_once('=')
            .ok_or_else(|| format!("param without '=': {param:?}"))?;
        match key {
            "cols" => {
                let mut indices = Vec::new();
                if !value.is_empty() {
                    for column in value.split(',') {
                        let column = unescape(column)?;
                        indices.push(
                            schema
                                .index_of(&column)
                                .ok_or_else(|| format!("unknown column {column:?}"))?,
                        );
                    }
                }
                columns = Some(indices);
            }
            "page" => page = value.parse().map_err(|_| format!("bad page {value:?}"))?,
            "rows" => rows = value.parse().map_err(|_| format!("bad rows {value:?}"))?,
            _ => {
                let (kind, column) = key
                    .split_once(':')
                    .ok_or_else(|| format!("unknown param {key:?}"))?;
                let column = unescape(column)?;
                if schema.index_of(&column).is_none() {
                    return Err(format!("unknown filter column {column:?}"));
                }
                let predicate = match kind {
                    "eq" => Predicate::Eq(parse_value(value)?),
                    "in" => Predicate::in_set(
                        value
                            .split('|')
                            .filter(|v| !v.is_empty())
                            .map(parse_value)
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    "rg" => {
                        let (min, max) = value
                            .split_once(';')
                            .ok_or_else(|| format!("bad range {value:?}"))?;
                        Predicate::Range {
                            min: parse_bound(min)?,
                            max: parse_bound(max)?,
                        }
                    }
                    other => return Err(format!("unknown filter kind {other:?}")),
                };
                filters.push(ColumnFilter::new(column, predicate));
            }
        }
    }
    Ok(EndpointQuery {
        columns: columns.ok_or_else(|| "missing cols param".to_owned())?,
        filters,
        page,
        rows,
    })
}

/// Lock-free retry counters shared between a [`RemoteWrapper`] and its
/// detached pager threads.
#[derive(Default)]
struct SharedRetryStats {
    attempts: AtomicU64,
    retries: AtomicU64,
    pages: AtomicU64,
    transient_errors: AtomicU64,
    permanent_failures: AtomicU64,
    timeouts: AtomicU64,
}

impl SharedRetryStats {
    fn snapshot(&self) -> RetryStats {
        RetryStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            pages: self.pages.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            permanent_failures: self.permanent_failures.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Fetches one page with retries under `retry`: transient failures (and
/// attempts that outran the per-attempt timeout) back off exponentially
/// and retry up to `max_attempts`; permanent failures abort immediately.
fn fetch_page_with_retry(
    name: &str,
    endpoint: &SimulatedEndpoint,
    retry: &RetryPolicy,
    stats: &SharedRetryStats,
    params: &str,
) -> Result<RemotePage, WrapperError> {
    let max_attempts = retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        stats.attempts.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = endpoint.fetch(params);
        let timed_out = started.elapsed() > retry.attempt_timeout;
        let cause = match result {
            Ok(page) if !timed_out => {
                stats.pages.fetch_add(1, Ordering::Relaxed);
                return Ok(page);
            }
            Ok(_) => {
                // The server answered after the client gave up: the page is
                // discarded and the attempt counts as a transient timeout.
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                "attempt exceeded its timeout".to_owned()
            }
            Err(TransportError::Transient(cause)) => {
                stats.transient_errors.fetch_add(1, Ordering::Relaxed);
                cause
            }
            Err(TransportError::Permanent(cause)) => {
                stats.permanent_failures.fetch_add(1, Ordering::Relaxed);
                return Err(WrapperError::permanent(name, cause));
            }
        };
        if attempt >= max_attempts {
            return Err(WrapperError::transient(
                name,
                format!("retries exhausted after {attempt} attempts: {cause}"),
            ));
        }
        stats.retries.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(retry.backoff(attempt));
    }
}

/// A [`Wrapper`] over a [`SimulatedEndpoint`], translating scan requests
/// into paged query-string fetches with retries (see the module docs).
pub struct RemoteWrapper {
    name: String,
    source: String,
    endpoint: Arc<SimulatedEndpoint>,
    retry: RetryPolicy,
    queue_pages: usize,
    stats: Arc<SharedRetryStats>,
    claims_fp: u64,
}

impl RemoteWrapper {
    /// A wrapper named `name` over `source`, fetching pages from
    /// `endpoint` under `retry`.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        endpoint: Arc<SimulatedEndpoint>,
        retry: RetryPolicy,
    ) -> Self {
        let claims_fp = crate::wrapper::probe_claims_fingerprint(endpoint.schema(), |f| {
            !matches!(f.predicate, Predicate::Bloom(_))
        });
        Self {
            name: name.into(),
            source: source.into(),
            endpoint,
            retry,
            queue_pages: REMOTE_QUEUE_PAGES,
            stats: Arc::new(SharedRetryStats::default()),
            claims_fp,
        }
    }

    /// Overrides how many pages the detached pager may run ahead of its
    /// consumer (minimum 1; default [`REMOTE_QUEUE_PAGES`]).
    pub fn with_queue_pages(mut self, pages: usize) -> Self {
        self.queue_pages = pages.max(1);
        self
    }

    /// The endpoint this wrapper fetches from.
    pub fn endpoint(&self) -> &Arc<SimulatedEndpoint> {
        &self.endpoint
    }

    /// Synchronous paged fetch of a whole request (the eager path).
    fn fetch_all(&self, request: &ScanRequest) -> Result<Vec<Tuple>, WrapperError> {
        let mut rows = Vec::new();
        let mut page = 0u64;
        // analyze: allow(deadline, every page fetch below is bounded by the retry policy's attempt budget and deadline)
        loop {
            let params = render_params(request, page, self.endpoint.page_rows);
            let fetched = fetch_page_with_retry(
                &self.name,
                &self.endpoint,
                &self.retry,
                &self.stats,
                &params,
            )?;
            rows.extend(fetched.rows);
            if fetched.last {
                return Ok(rows);
            }
            page += 1;
        }
    }
}

/// The detached pager: fetches pages in order with retries and sends each
/// page's rows through the bounded queue. Exits on the first failure
/// (after reporting it) or when the consumer hangs up.
struct Pager {
    name: String,
    endpoint: Arc<SimulatedEndpoint>,
    retry: RetryPolicy,
    stats: Arc<SharedRetryStats>,
    request: ScanRequest,
    page_rows: usize,
}

impl Pager {
    fn run(self, tx: SyncSender<Result<Vec<Tuple>, WrapperError>>) {
        let mut page = 0u64;
        loop {
            let params = render_params(&self.request, page, self.page_rows);
            match fetch_page_with_retry(
                &self.name,
                &self.endpoint,
                &self.retry,
                &self.stats,
                &params,
            ) {
                Ok(fetched) => {
                    let last = fetched.last;
                    if !fetched.rows.is_empty() && tx.send(Ok(fetched.rows)).is_err() {
                        return; // consumer hung up: stop fetching
                    }
                    if last {
                        return;
                    }
                    page += 1;
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    }
}

/// The consuming end of a pager's queue: blocks at most the retry
/// policy's page budget per page, so a stalled producer surfaces as a
/// transient timeout error instead of hanging the scan.
struct PagedRows {
    rx: std::sync::mpsc::Receiver<Result<Vec<Tuple>, WrapperError>>,
    budget: Duration,
    name: String,
    done: bool,
}

impl Iterator for PagedRows {
    type Item = Result<Vec<Tuple>, WrapperError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.rx.recv_timeout(self.budget) {
            Ok(Ok(rows)) => Some(Ok(rows)),
            Ok(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            Err(RecvTimeoutError::Timeout) => {
                self.done = true;
                Some(Err(WrapperError::transient(
                    self.name.clone(),
                    "page fetch timed out: no page arrived within the retry budget",
                )))
            }
            Err(RecvTimeoutError::Disconnected) => {
                self.done = true;
                None
            }
        }
    }
}

impl Wrapper for RemoteWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        self.endpoint.schema()
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        self.scan_request(&ScanRequest::full(self.endpoint.schema()))
    }

    /// Pages the whole request through the endpoint synchronously (with
    /// retries); the endpoint evaluates the projection and every filter
    /// server-side.
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        let rows = self.fetch_all(request)?;
        Ok(Relation::new(request.output().clone(), rows)?)
    }

    /// Streams pages through a detached producer thread and a bounded
    /// queue: page latency overlaps with the mediator's execution, the
    /// queue's backpressure keeps at most [`RemoteWrapper::with_queue_pages`]
    /// pages resident, and a consumer that stops pulling (or drops the
    /// iterator) disconnects the producer after its current page. Pages
    /// are requested at `batch_rows` rows, so yielded batches respect the
    /// consumer's bound (the endpoint may serve less per page, never
    /// more).
    fn scan_request_batches<'a>(
        &'a self,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<RowBatches<'a>, WrapperError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.queue_pages);
        let pager = Pager {
            name: self.name.clone(),
            endpoint: Arc::clone(&self.endpoint),
            retry: self.retry,
            stats: Arc::clone(&self.stats),
            request: request.clone(),
            page_rows: batch_rows.max(1),
        };
        std::thread::spawn(move || pager.run(tx));
        Ok(Box::new(PagedRows {
            rx,
            budget: self.retry.page_budget(),
            name: self.name.clone(),
            done: false,
        }))
    }

    /// Exact row count for unfiltered requests; filtered requests are
    /// estimated by the unfiltered count (an upper bound, as allowed).
    fn scan_hint(&self, _request: &ScanRequest) -> Option<u64> {
        Some(self.endpoint.row_count())
    }

    /// The endpoint translates every *value-listing* predicate kind into
    /// query params, so those are all claimed (the fingerprint is
    /// precomputed). Bloom filters are declined: a bit-set has no query-
    /// string rendering, and shipping megabit filters over a paged wire
    /// protocol would defeat their purpose — the mediator keeps them as
    /// residues instead.
    fn claims_filter(&self, filter: &ColumnFilter) -> bool {
        !matches!(filter.predicate, Predicate::Bloom(_))
    }

    fn claims_fingerprint(&self) -> u64 {
        self.claims_fp
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        Some(self.stats.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::{FailureKind, WrapperRegistry};
    use bdi_relational::plan::PlanSource;
    use bdi_relational::RelationError;

    fn sample_relation() -> Relation {
        let schema = Schema::from_parts(&["id"], &["x"]).unwrap();
        Relation::new(
            schema,
            (0..10)
                .map(|i| vec![Value::Int(i), Value::Str(format!("v{i}"))])
                .collect(),
        )
        .unwrap()
    }

    fn reliable_endpoint(page_rows: usize) -> Arc<SimulatedEndpoint> {
        Arc::new(SimulatedEndpoint::new(
            sample_relation(),
            page_rows,
            FaultProfile::default(),
        ))
    }

    #[test]
    fn params_round_trip_every_predicate_kind() {
        let schema = Schema::from_parts(&["id"], &["x"]).unwrap();
        let request = ScanRequest::full(&schema)
            .with_predicate("id", Predicate::in_set([Value::Int(1), Value::Null]))
            .with_predicate("x", Predicate::eq(Value::Str("a&b=c|d;e,f%g".into())))
            .with_predicate("id", Predicate::between(0, 5));
        let params = render_params(&request, 3, 64);
        let query = parse_params(&params, &schema).unwrap();
        assert_eq!(query.page, 3);
        assert_eq!(query.rows, 64);
        assert_eq!(query.columns, vec![0, 1]);
        assert_eq!(query.filters.len(), 3);
        assert_eq!(query.filters, request.filters().to_vec());
    }

    #[test]
    fn paged_scan_equals_reference_apply() {
        let endpoint = reliable_endpoint(3);
        let wrapper = RemoteWrapper::new("rw", "D", endpoint, RetryPolicy::default());
        let request =
            ScanRequest::full(wrapper.schema()).with_predicate("id", Predicate::at_least(4));
        let native = wrapper.scan_request(&request).unwrap();
        let reference = request.apply(&sample_relation()).unwrap();
        assert_eq!(native, reference);
        // Streaming path yields the same rows in the same order.
        let mut streamed = Vec::new();
        for batch in wrapper.scan_request_batches(&request, 2).unwrap() {
            streamed.extend(batch.unwrap());
        }
        assert_eq!(streamed, reference.rows());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let mut profile = FaultProfile::default();
        profile.transient_failures.insert(1, 2); // page 1 fails twice
        let endpoint = Arc::new(SimulatedEndpoint::new(sample_relation(), 4, profile));
        let retry = RetryPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let wrapper = RemoteWrapper::new("rw", "D", endpoint, retry);
        let scanned = wrapper.scan().unwrap();
        assert_eq!(scanned, sample_relation());
        let stats = wrapper.retry_stats().unwrap();
        assert_eq!(stats.transient_errors, 2);
        assert_eq!(stats.retries, 2);
        assert!(stats.pages >= 3);
    }

    #[test]
    fn exhausted_retries_fail_transient_and_hard_failures_permanent() {
        let mut profile = FaultProfile::default();
        profile.transient_failures.insert(0, u64::MAX);
        let endpoint = Arc::new(SimulatedEndpoint::new(sample_relation(), 4, profile));
        let retry = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let wrapper = RemoteWrapper::new("rw", "D", endpoint, retry);
        let err = wrapper.scan().unwrap_err();
        assert!(matches!(
            err,
            WrapperError::SourceQuery {
                kind: FailureKind::Transient,
                ..
            }
        ));
        assert_eq!(wrapper.retry_stats().unwrap().attempts, 3);

        let profile = FaultProfile {
            hard_fail_after: Some(1),
            ..FaultProfile::default()
        };
        let endpoint = Arc::new(SimulatedEndpoint::new(sample_relation(), 4, profile));
        let wrapper = RemoteWrapper::new("rw", "D", endpoint, retry);
        let err = wrapper.scan().unwrap_err();
        assert!(matches!(
            err,
            WrapperError::SourceQuery {
                kind: FailureKind::Permanent,
                ..
            }
        ));
        assert_eq!(wrapper.retry_stats().unwrap().permanent_failures, 1);
    }

    #[test]
    fn registry_preserves_the_failure_classification() {
        let profile = FaultProfile {
            hard_fail_after: Some(0),
            ..FaultProfile::default()
        };
        let endpoint = Arc::new(SimulatedEndpoint::new(sample_relation(), 4, profile));
        let mut registry = WrapperRegistry::new();
        registry.register(Arc::new(RemoteWrapper::new(
            "rw",
            "D",
            endpoint,
            RetryPolicy::default(),
        )));
        let request = ScanRequest::full(&Schema::from_parts(&["id"], &["x"]).unwrap());
        let mut batches = registry.scan_batches("rw", &request, 4).unwrap();
        let err = batches
            .find_map(|r| r.err())
            .expect("hard-failed scan must error");
        match err {
            RelationError::SourceFailure {
                source, transient, ..
            } => {
                assert_eq!(source, "rw");
                assert!(!transient);
            }
            other => panic!("expected SourceFailure, got {other:?}"),
        }
    }

    #[test]
    fn stalled_endpoint_times_out_within_the_page_budget() {
        let profile = FaultProfile {
            page_latency: Duration::from_secs(5),
            ..FaultProfile::default()
        };
        let endpoint = Arc::new(SimulatedEndpoint::new(sample_relation(), 4, profile));
        let retry = RetryPolicy {
            max_attempts: 1,
            attempt_timeout: Duration::from_millis(40),
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
        };
        let wrapper = RemoteWrapper::new("rw", "D", endpoint, retry);
        let request = ScanRequest::full(wrapper.schema());
        let started = Instant::now();
        let mut batches = wrapper.scan_request_batches(&request, 4).unwrap();
        let first = batches.next().expect("a timeout error, not end-of-stream");
        assert!(matches!(
            first,
            Err(WrapperError::SourceQuery {
                kind: FailureKind::Transient,
                ..
            })
        ));
        assert!(
            started.elapsed() <= retry.page_budget() + Duration::from_millis(500),
            "timed out too slowly: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn seeded_random_faults_are_deterministic() {
        let relation = sample_relation();
        let run = |seed: u64| {
            let profile = FaultProfile {
                transient_error_rate: 0.5,
                seed,
                ..FaultProfile::default()
            };
            let endpoint = Arc::new(SimulatedEndpoint::new(relation.clone(), 2, profile));
            let retry = RetryPolicy {
                max_attempts: 20,
                initial_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_micros(200),
                ..RetryPolicy::default()
            };
            let wrapper = RemoteWrapper::new("rw", "D", endpoint, retry);
            let scanned = wrapper.scan().unwrap();
            assert_eq!(scanned, relation, "faults must never change answers");
            wrapper.retry_stats().unwrap().transient_errors
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
    }
}
