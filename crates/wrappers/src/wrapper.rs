//! The wrapper abstraction.
//!
//! Following the mediator/wrapper architecture the paper adopts (§1, \[7\]),
//! a **wrapper** hides all source-side query complexity and exposes a flat
//! first-normal-form relation `w(a_ID, a_nID)`. Different wrappers over the
//! same data source represent different **schema versions** (§2); the
//! ontology layer never talks to a source directly.

use bdi_relational::plan::{
    batches_from_relation, BatchIter, ColumnFilter, PlanSource, Predicate, ScanRequest,
};
use bdi_relational::{
    BloomFilter, Relation, RelationError, Schema, SourceResolver, TableStats, Tuple, Value,
};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Whether a source failure is worth retrying.
///
/// The retry loop in a fault-tolerant wrapper (see `RemoteWrapper`) retries
/// only [`FailureKind::Transient`] failures; a [`FailureKind::Permanent`]
/// failure aborts immediately. The mediator's
/// degrade policy (`ExecOptions::on_source_failure`) receives the
/// classification through [`bdi_relational::RelationError::SourceFailure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Momentary: a timeout, a dropped connection, an overloaded endpoint.
    /// Retrying the same page may well succeed.
    Transient,
    /// Definitive: the source rejected the query or went away. Retrying
    /// cannot help.
    Permanent,
}

impl FailureKind {
    /// `true` for [`FailureKind::Transient`].
    pub fn is_transient(self) -> bool {
        matches!(self, FailureKind::Transient)
    }
}

/// Errors raised by wrapper execution.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum WrapperError {
    /// The wrapper's underlying source query failed. `kind` classifies the
    /// failure for retry/degrade decisions; the `Display` form is identical
    /// to the historical stringly variant this replaced.
    #[error("wrapper {source} failed to query its source: {cause}")]
    SourceQuery {
        /// The failing wrapper's name.
        source: String,
        /// Transient (retry may help) vs permanent (it cannot).
        kind: FailureKind,
        /// Human-readable failure cause.
        cause: String,
    },
    #[error(
        "wrapper {wrapper} produced a value of unsupported JSON shape for attribute {attribute}"
    )]
    UnsupportedShape { wrapper: String, attribute: String },
    #[error(transparent)]
    Relation(#[from] RelationError),
    #[error("unknown wrapper: {0}")]
    UnknownWrapper(String),
}

impl WrapperError {
    /// A transient [`WrapperError::SourceQuery`].
    pub fn transient(source: impl Into<String>, cause: impl Into<String>) -> Self {
        WrapperError::SourceQuery {
            source: source.into(),
            kind: FailureKind::Transient,
            cause: cause.into(),
        }
    }

    /// A permanent [`WrapperError::SourceQuery`].
    pub fn permanent(source: impl Into<String>, cause: impl Into<String>) -> Self {
        WrapperError::SourceQuery {
            source: source.into(),
            kind: FailureKind::Permanent,
            cause: cause.into(),
        }
    }
}

/// Counters over a fault-tolerant wrapper's retry loop, merged across
/// wrappers by [`WrapperRegistry::retry_stats`] and surfaced per system
/// through `BdiSystem::retry_stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Page fetches attempted (including retries).
    pub attempts: u64,
    /// Attempts that were retries of a previously failed fetch.
    pub retries: u64,
    /// Pages fetched successfully.
    pub pages: u64,
    /// Transient failures observed (each may have triggered a retry).
    pub transient_errors: u64,
    /// Permanent failures observed (each aborted its scan).
    pub permanent_failures: u64,
    /// Attempts abandoned for exceeding the per-attempt timeout.
    pub timeouts: u64,
}

impl RetryStats {
    /// Adds another wrapper's counters into this one.
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.pages += other.pages;
        self.transient_errors += other.transient_errors;
        self.permanent_failures += other.permanent_failures;
        self.timeouts += other.timeouts;
    }
}

/// A stream of row batches from a wrapper's pushdown-aware scan — the
/// wrapper-level image of [`bdi_relational::plan::BatchIter`]. Every row
/// already has the originating request's output arity; batches respect the
/// consumer's `batch_rows` bound.
pub type RowBatches<'a> = Box<dyn Iterator<Item = Result<Vec<Tuple>, WrapperError>> + Send + 'a>;

/// A queryable view over one schema version of one data source.
pub trait Wrapper: Send + Sync {
    /// The wrapper's unique name (`w1`, `w4`, …).
    fn name(&self) -> &str;

    /// The data source this wrapper belongs to — the paper's `source(w)`.
    /// Walks never join two wrappers with the same source.
    fn source(&self) -> &str;

    /// The exposed relational schema, partitioned into ID / non-ID
    /// attributes. Attribute names are *local* (e.g. `VoDmonitorId`); the
    /// ontology layer prefixes them with the source when building `S` URIs.
    fn schema(&self) -> &Schema;

    /// Executes the wrapper's underlying query, producing the current rows.
    fn scan(&self) -> Result<Relation, WrapperError>;

    /// Pushdown-aware scan: surfaces only the columns the mediator's plan
    /// requests (renamed to the request's output attributes) and, when the
    /// request carries filters, only the rows satisfying every predicate —
    /// in the same stable order [`Wrapper::scan`] would produce them.
    ///
    /// The default implementation scans everything and applies the request
    /// in the mediator ([`ScanRequest::apply`], the reference semantics).
    /// Wrapper kinds that can do better override it: [`crate::TableWrapper`]
    /// copies only the requested cells and evaluates predicates under its
    /// read lock, [`crate::JsonWrapper`] narrows its aggregation pipeline
    /// and pushes translatable predicates into a `$match` stage so the
    /// document store never materializes unused fields or filtered-out
    /// documents.
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        Ok(request.apply(&self.scan()?)?)
    }

    /// Streaming form of [`Wrapper::scan_request`]: the same rows in the
    /// same order, yielded as batches of at most `batch_rows` rows so the
    /// mediator's interning layer never holds the whole value-space
    /// relation.
    ///
    /// The default is a one-shot adapter over [`Wrapper::scan_request`] —
    /// existing wrapper kinds keep working unchanged. Wrappers that can
    /// produce rows incrementally override it: [`crate::TableWrapper`]
    /// clones only the projected cells of one batch at a time under short
    /// read-lock holds, [`crate::JsonWrapper`] pulls document chunks from
    /// its store and runs them through a batch-aware pipeline cursor.
    fn scan_request_batches<'a>(
        &'a self,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<RowBatches<'a>, WrapperError> {
        let relation = self.scan_request(request)?;
        // A mis-shaped scan — wrong arity — must error even when empty
        // (same precheck as the `PlanSource::scan_batches` default: no row
        // exists to fail the consumer's per-row check, and the
        // misconfiguration must not be masked).
        if relation.schema().len() != request.output().len() {
            return Err(WrapperError::Relation(RelationError::Arity {
                expected: request.output().len(),
                found: relation.schema().len(),
            }));
        }
        Ok(Box::new(
            batches_from_relation(relation, batch_rows).map(|r| r.map_err(WrapperError::from)),
        ))
    }

    /// Monotonic counter over the wrapper's *source data*: bumped by every
    /// mutation visible to [`Wrapper::scan`] (row appends, document
    /// inserts). The mediator folds it into its scan-cache keys and the
    /// system's cache validity stamp, so persistent execution contexts
    /// (`reuse_scans`-style reuse) can never serve rows scanned before a
    /// mutation. The default (`0`, constant) declares the
    /// data immutable between releases — only correct for wrapper kinds
    /// whose data genuinely cannot change outside
    /// [`crate::spec::WrapperSpec`]-level re-registration.
    fn data_version(&self) -> u64 {
        0
    }

    /// Whether the wrapper natively honours `filter` inside
    /// [`Wrapper::scan_request`]. Plan compilers push only claimed filters
    /// into the scan request; unclaimed predicates are re-applied in the
    /// mediator as a residual selection, so declining never changes
    /// answers — only where the work happens. The default claims
    /// everything, which is correct for any wrapper whose `scan_request`
    /// falls back to [`ScanRequest::apply`].
    fn claims_filter(&self, _filter: &ColumnFilter) -> bool {
        true
    }

    /// A cheap estimate of how many rows [`Wrapper::scan_request`] would
    /// yield, or `None` when the wrapper cannot produce one. The mediator
    /// uses it for execution-time scheduling only (hash-join build-side
    /// choice for semi-join sideways passing, cursor-only gating) — never
    /// for correctness. Return the exact count for unfiltered requests or
    /// `None` rather than guess; filtered requests may be estimated by
    /// their unfiltered count.
    fn scan_hint(&self, _request: &ScanRequest) -> Option<u64> {
        None
    }

    /// The wrapper's current per-column statistics snapshot, or `None`
    /// for wrapper kinds that do not maintain sketches (the default).
    ///
    /// The contract mirrors [`bdi_relational::plan::PlanSource::stats`]:
    /// the snapshot's [`TableStats::data_version`] must equal
    /// [`Wrapper::data_version`] at the time of the call — wrapper kinds
    /// maintain sketches under the same lock that admits writes (or
    /// rebuild lazily keyed by the version), so the planner can never
    /// price a plan against sketches of rows that no longer exist.
    /// Statistics steer plan choices only, never row membership, so a
    /// wrong snapshot degrades speed, not answers.
    fn column_stats(&self) -> Option<Arc<TableStats>> {
        None
    }

    /// A fingerprint of the wrapper's [`Wrapper::claims_filter`] answers:
    /// every schema column probed with one canonical predicate per
    /// [`Predicate`] kind (equality, IN-set, range) — see
    /// [`probe_claims_fingerprint`]. The system folds it into the
    /// plan-cache validity stamp, so a wrapper whose claim answers change
    /// at run time invalidates compiled plans — whose residual filter
    /// split was derived from the old answers. This default re-probes on
    /// every call (correct for any claims behaviour); the built-in wrapper
    /// kinds, whose claims depend only on their immutable schema and the
    /// predicate shape, override it with a value computed once at
    /// construction so the per-query validity stamp costs a load. Wrapper
    /// kinds whose claims depend on predicate *values* beyond the
    /// canonical probes should override this to reflect those dynamics.
    fn claims_fingerprint(&self) -> u64 {
        probe_claims_fingerprint(self.schema(), |filter| self.claims_filter(filter))
    }

    /// The wrapper's serializable definition, when it has one (used by
    /// deployment snapshots). Defaults to `None` for wrapper kinds that
    /// cannot be persisted.
    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        None
    }

    /// Retry-loop counters for wrapper kinds that talk to fallible sources
    /// (see [`crate::RemoteWrapper`]). `None` — the default — for wrapper
    /// kinds without a retry loop.
    fn retry_stats(&self) -> Option<RetryStats> {
        None
    }

    /// Downcast to [`crate::TableWrapper`], when that is what this is.
    /// The durability layer journals table-row pushes and restores
    /// data-version stamps, both of which are `TableWrapper`-specific
    /// operations it must reach through a registry of `dyn Wrapper`.
    /// `None` — the default — for every other wrapper kind.
    fn as_table(&self) -> Option<&crate::TableWrapper> {
        None
    }
}

/// The probe-hash behind [`Wrapper::claims_fingerprint`]: every schema
/// column × one canonical predicate per [`Predicate`] kind, hashed with the
/// claim answer. Exposed so wrapper kinds with static claims can compute it
/// once at construction instead of re-probing per query.
pub fn probe_claims_fingerprint(schema: &Schema, claims: impl Fn(&ColumnFilter) -> bool) -> u64 {
    let probes = [
        Predicate::eq(0),
        Predicate::in_set([Value::Int(0)]),
        Predicate::between(0, 1),
        Predicate::Bloom(BloomFilter::claims_probe()),
    ];
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for (column_index, column) in schema.names().iter().enumerate() {
        for (kind, predicate) in probes.iter().enumerate() {
            let claimed = claims(&ColumnFilter::new(*column, predicate.clone()));
            (column_index, kind, claimed).hash(&mut hasher);
        }
    }
    hasher.finish()
}

/// A shared, name-indexed set of wrappers. Implements
/// [`SourceResolver`] so rewritten walks evaluate directly against it.
#[derive(Default, Clone)]
pub struct WrapperRegistry {
    wrappers: BTreeMap<String, Arc<dyn Wrapper>>,
}

impl WrapperRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a wrapper under its own name. Re-registering a name
    /// replaces the previous wrapper (a new release supersedes).
    pub fn register(&mut self, wrapper: Arc<dyn Wrapper>) {
        self.wrappers.insert(wrapper.name().to_owned(), wrapper);
    }

    pub fn get(&self, name: &str) -> Option<&Arc<dyn Wrapper>> {
        self.wrappers.get(name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.wrappers.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }

    /// All wrappers, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Wrapper>> {
        self.wrappers.values()
    }

    /// All wrappers belonging to `source` — the set `{w : source(w) = D}`.
    pub fn by_source(&self, source: &str) -> Vec<&Arc<dyn Wrapper>> {
        self.wrappers
            .values()
            .filter(|w| w.source() == source)
            .collect()
    }

    /// Aggregated [`RetryStats`] across every registered wrapper that
    /// reports them (wrappers without a retry loop contribute nothing).
    pub fn retry_stats(&self) -> RetryStats {
        let mut total = RetryStats::default();
        for wrapper in self.wrappers.values() {
            if let Some(stats) = wrapper.retry_stats() {
                total.merge(&stats);
            }
        }
        total
    }

    /// Order-independent combination of every wrapper's name and
    /// [`Wrapper::claims_fingerprint`] — the registry-wide capability
    /// fingerprint the system folds into its plan-cache validity stamp.
    pub fn capabilities_fingerprint(&self) -> u64 {
        self.wrappers.values().fold(0u64, |acc, w| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            w.name().hash(&mut hasher);
            w.claims_fingerprint().hash(&mut hasher);
            acc.wrapping_add(hasher.finish())
        })
    }

    /// Order-independent combination of every wrapper's name and
    /// [`Wrapper::data_version`] — the registry-wide *statistics epoch*.
    /// Any data mutation in any wrapper changes it, and with it the
    /// system's plan-cache validity stamp: cost-based plans are priced
    /// against the wrappers' [`Wrapper::column_stats`] sketches, which are
    /// keyed by those same versions, so a sketch refresh must recompile
    /// the plans that consulted the stale sketch.
    pub fn stats_epoch(&self) -> u64 {
        self.wrappers.values().fold(0u64, |acc, w| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            w.name().hash(&mut hasher);
            w.data_version().hash(&mut hasher);
            acc.wrapping_add(hasher.finish())
        })
    }
}

impl std::fmt::Debug for WrapperRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WrapperRegistry")
            .field("wrappers", &self.wrappers.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Lowers a wrapper failure into the mediator's relational error space,
/// preserving structure where the mediator acts on it: a structured
/// relational error (e.g. an arity violation from a misbehaving stream)
/// passes through *unchanged*, so every operator path surfaces the same
/// [`RelationError::Arity`] the first-batch precheck produces; a
/// [`WrapperError::SourceQuery`] keeps its transient/permanent
/// classification in [`RelationError::SourceFailure`], so the degrade
/// policy can tell a retryable outage from a gone source. Every mapping
/// renders exactly the message the historical stringly form produced.
fn relation_error(name: &str, error: WrapperError) -> RelationError {
    match error {
        WrapperError::Relation(inner) => inner,
        WrapperError::SourceQuery {
            source,
            kind,
            cause,
        } => {
            let transient = kind.is_transient();
            let cause = WrapperError::SourceQuery {
                source,
                kind,
                cause,
            }
            .to_string();
            RelationError::SourceFailure {
                source: name.to_owned(),
                transient,
                cause,
            }
        }
        other => RelationError::Source(format!("wrapper {name} failed: {other}")),
    }
}

/// The registry is the plan executor's pushdown-aware source catalog: each
/// [`bdi_relational::plan::PhysicalPlan`] scan resolves a wrapper by name
/// and hands it the requested projection/filter.
impl PlanSource for WrapperRegistry {
    fn scan(&self, name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
        let wrapper = self
            .wrappers
            .get(name)
            .ok_or_else(|| RelationError::Source(format!("unknown wrapper {name}")))?;
        wrapper
            .scan_request(request)
            .map_err(|e| relation_error(name, e))
    }

    /// Streams through the wrapper's own [`Wrapper::scan_request_batches`]
    /// (native for table and JSON wrappers, the one-shot adapter
    /// otherwise).
    fn scan_batches<'a>(
        &'a self,
        name: &str,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<BatchIter<'a>, RelationError> {
        let wrapper = self
            .wrappers
            .get(name)
            .ok_or_else(|| RelationError::Source(format!("unknown wrapper {name}")))?;
        let name = name.to_owned();
        let batches = wrapper
            .scan_request_batches(request, batch_rows)
            .map_err(|e| relation_error(&name, e))?;
        Ok(Box::new(
            batches.map(move |r| r.map_err(|e| relation_error(&name, e))),
        ))
    }

    /// The wrapper's own data-generation counter (unknown wrappers report a
    /// constant — the error surfaces at scan time either way).
    fn data_version(&self, name: &str) -> u64 {
        self.wrappers
            .get(name)
            .map(|w| w.data_version())
            .unwrap_or(0)
    }

    /// Delegates to the wrapper's own capability declaration. Unknown
    /// wrappers claim everything — the error surfaces at scan time either
    /// way.
    fn claims(&self, name: &str, filter: &ColumnFilter) -> bool {
        self.wrappers
            .get(name)
            .map(|w| w.claims_filter(filter))
            .unwrap_or(true)
    }

    /// The wrapper's own scan-size estimate (`None` for unknown wrappers —
    /// the error surfaces at scan time).
    ///
    /// Unfiltered requests keep the wrapper's raw answer — the
    /// exact-or-`None` contract that keeps hint-driven build-side choice
    /// identical to the eager smaller-side rule. Requests carrying claimed
    /// filters route through the wrapper's [`Wrapper::column_stats`]
    /// sketches when it maintains them, so build-side choice and the
    /// semi-join selectivity gate see the *post-filter* cardinality
    /// instead of the raw table size; wrappers without sketches keep the
    /// historical raw-count fallback.
    fn scan_hint(&self, name: &str, request: &ScanRequest) -> Option<u64> {
        let wrapper = self.wrappers.get(name)?;
        let raw = wrapper.scan_hint(request);
        if request.filters().is_empty() {
            return raw;
        }
        match wrapper.column_stats() {
            Some(stats) => Some(
                stats
                    .estimate_rows(request.filters())
                    .min(raw.unwrap_or(u64::MAX)),
            ),
            None => raw,
        }
    }

    /// The wrapper's own statistics snapshot (`None` for unknown wrappers
    /// or wrapper kinds without sketches).
    fn stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.wrappers.get(name)?.column_stats()
    }
}

impl SourceResolver for WrapperRegistry {
    fn resolve(&self, name: &str) -> Result<Relation, RelationError> {
        let wrapper = self.wrappers.get(name).ok_or_else(|| {
            RelationError::Schema(bdi_relational::SchemaError::UnknownAttribute(format!(
                "unknown wrapper {name}"
            )))
        })?;
        wrapper.scan().map_err(|e| {
            RelationError::Schema(bdi_relational::SchemaError::UnknownAttribute(format!(
                "wrapper {name} failed: {e}"
            )))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_wrapper::TableWrapper;
    use bdi_relational::Value;

    fn sample() -> Arc<dyn Wrapper> {
        Arc::new(
            TableWrapper::new(
                "w1",
                "D1",
                Schema::from_parts(&["id"], &["x"]).unwrap(),
                vec![vec![Value::Int(1), Value::Str("a".into())]],
            )
            .unwrap(),
        )
    }

    #[test]
    fn registry_registers_and_resolves() {
        let mut reg = WrapperRegistry::new();
        reg.register(sample());
        assert!(reg.contains("w1"));
        assert_eq!(reg.len(), 1);
        let rel = reg.resolve("w1").unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn unknown_wrapper_resolution_fails() {
        let reg = WrapperRegistry::new();
        assert!(reg.resolve("zz").is_err());
    }

    #[test]
    fn by_source_filters() {
        let mut reg = WrapperRegistry::new();
        reg.register(sample());
        reg.register(Arc::new(
            TableWrapper::new(
                "w2",
                "D2",
                Schema::from_parts::<&str>(&["id"], &[]).unwrap(),
                vec![],
            )
            .unwrap(),
        ));
        assert_eq!(reg.by_source("D1").len(), 1);
        assert_eq!(reg.by_source("D2").len(), 1);
        assert_eq!(reg.by_source("D3").len(), 0);
    }

    /// A wrapper whose `scan_request` override answers with an empty
    /// relation of the wrong arity (a misconfiguration): the default batch
    /// adapter must reject it even though no row exists to fail the
    /// consumer's per-row check.
    #[test]
    fn misshapen_empty_scan_errors_through_the_batch_adapter() {
        struct Misshapen(Schema);

        impl Wrapper for Misshapen {
            fn name(&self) -> &str {
                "bad"
            }

            fn source(&self) -> &str {
                "D"
            }

            fn schema(&self) -> &Schema {
                &self.0
            }

            fn scan(&self) -> Result<Relation, WrapperError> {
                self.scan_request(&ScanRequest::full(&self.0))
            }

            fn scan_request(&self, _request: &ScanRequest) -> Result<Relation, WrapperError> {
                // Always one column, whatever was asked for.
                Ok(Relation::empty(
                    Schema::from_parts::<&str>(&[], &["only"]).unwrap(),
                ))
            }
        }

        let wrapper = Misshapen(Schema::from_parts(&["id"], &["x"]).unwrap());
        let request = ScanRequest::full(wrapper.schema()); // two columns
        assert!(wrapper.scan_request_batches(&request, 64).is_err());
        let mut reg = WrapperRegistry::new();
        reg.register(Arc::new(Misshapen(
            Schema::from_parts(&["id"], &["x"]).unwrap(),
        )));
        assert!(reg.scan_batches("bad", &request, 64).is_err());
    }

    #[test]
    fn reregistering_replaces() {
        let mut reg = WrapperRegistry::new();
        reg.register(sample());
        reg.register(Arc::new(
            TableWrapper::new(
                "w1",
                "D1",
                Schema::from_parts(&["id"], &["y"]).unwrap(),
                vec![],
            )
            .unwrap(),
        ));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("w1").unwrap().schema().non_id_names(), vec!["y"]);
    }
}
