//! Wrappers over JSON collections — the paper's Code 2 made executable.
//!
//! A [`JsonWrapper`] runs an aggregation pipeline against a [`DocStore`]
//! collection and flattens the resulting JSON objects into the flat 1NF
//! relation the ontology layer expects.

use crate::wrapper::{RowBatches, Wrapper, WrapperError};
use bdi_docstore::{DocPredicate, DocStore, Pipeline, Projection};
use bdi_relational::plan::{batches_from_relation, Bound, ColumnFilter, Predicate, ScanRequest};
use bdi_relational::{Relation, RelationError, Schema, StatsBuilder, TableStats, Tuple, Value};
use std::sync::{Arc, Mutex};

/// Converts a relational [`Value`] to its JSON image, or `None` when JSON
/// cannot represent it faithfully (NaN and infinite floats — JSON numbers
/// are finite). Predicates containing unrepresentable values are simply not
/// claimed, so they fall back to the mediator's residual filter.
fn to_json(value: &Value) -> Option<serde_json::Value> {
    Some(match value {
        Value::Null => serde_json::Value::Null,
        Value::Bool(b) => serde_json::Value::Bool(*b),
        Value::Int(i) => serde_json::Value::Number((*i).into()),
        Value::Float(f) => serde_json::Value::Number(serde_json::Number::from_f64(*f)?),
        Value::Str(s) => serde_json::Value::String(s.clone()),
    })
}

/// Whether a filter column can be addressed by a `$match` stage appended
/// after the wrapper's `$project`: the projected output holds the column
/// name as a *literal* key, but `$match` resolves fields through dotted
/// path traversal — a dot in the name would make the stage read `Null`
/// instead of the projected value, so such columns stay residual.
fn match_addressable(column: &str) -> bool {
    !column.contains('.')
}

/// Translates a relational predicate into its docstore `$match` form, or
/// `None` when some constituent value has no JSON image. The docstore's
/// [`bdi_docstore::json_cmp`] mirrors the relational total order, so the
/// translation preserves [`Predicate::matches`] semantics exactly for every
/// value a JSON document can hold.
fn to_doc_predicate(predicate: &Predicate) -> Option<DocPredicate> {
    let bound = |b: &Bound| to_json(&b.value).map(|v| (v, b.inclusive));
    Some(match predicate {
        // Bloom filters probe hashed Values, not JSON documents — no
        // `$match` translation exists. Claimed blooms are evaluated in the
        // wrapper's residual path instead (see `claims_filter`).
        Predicate::Bloom(_) => return None,
        Predicate::Eq(v) => DocPredicate::Eq(to_json(v)?),
        Predicate::In(vs) => DocPredicate::In(vs.iter().map(to_json).collect::<Option<_>>()?),
        Predicate::Range { min, max } => DocPredicate::Range {
            min: match min {
                Some(b) => Some(bound(b)?),
                None => None,
            },
            max: match max {
                Some(b) => Some(bound(b)?),
                None => None,
            },
        },
    })
}

/// A wrapper backed by a document-store aggregation query.
pub struct JsonWrapper {
    name: String,
    source: String,
    schema: Schema,
    store: DocStore,
    collection: String,
    pipeline: Pipeline,
    /// Capability fingerprint, computed once — this wrapper's claims
    /// depend only on its immutable schema (column presence, dotted
    /// names) and the predicate shape.
    claims_fp: u64,
    /// Memoized column sketches, keyed by the [`Wrapper::data_version`]
    /// they were built at. Unlike [`crate::TableWrapper`], this wrapper
    /// does not own its write path (the [`DocStore`] does), so sketches
    /// are rebuilt lazily on first demand after a version bump.
    stats: Mutex<JsonStatsState>,
}

/// Memoization state behind [`JsonWrapper::column_stats`]. The lock guards
/// only this bookkeeping — the O(collection) rebuild aggregate runs
/// *outside* it (single-flighted by `rebuilding`), so concurrent planners
/// consulting a stale sketch fall back to raw hints instead of serializing
/// behind a full collection scan.
#[derive(Default)]
struct JsonStatsState {
    /// The last published snapshot and the data version it describes.
    cached: Option<(u64, Arc<TableStats>)>,
    /// Set while some thread is rebuilding; cleared when it publishes or
    /// gives up.
    rebuilding: bool,
}

impl JsonWrapper {
    /// Builds the wrapper. The pipeline's final `$project` field names must
    /// cover every attribute of `schema` (extra projected fields are
    /// ignored); this is checked at construction so a mis-wired wrapper
    /// fails at registration time, not at query time.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        schema: Schema,
        store: DocStore,
        collection: impl Into<String>,
        pipeline: Pipeline,
    ) -> Result<Self, WrapperError> {
        let name = name.into();
        if let Some(fields) = pipeline.output_fields() {
            for attr in schema.names() {
                if !fields.contains(&attr) {
                    return Err(WrapperError::permanent(
                        name,
                        format!("pipeline does not project attribute {attr}"),
                    ));
                }
            }
        }
        let mut wrapper = Self {
            name,
            source: source.into(),
            schema,
            store,
            collection: collection.into(),
            pipeline,
            claims_fp: 0,
            stats: Mutex::new(JsonStatsState::default()),
        };
        wrapper.claims_fp = crate::wrapper::probe_claims_fingerprint(&wrapper.schema, |f| {
            Wrapper::claims_filter(&wrapper, f)
        });
        Ok(wrapper)
    }

    /// The backing collection's name.
    pub fn collection(&self) -> &str {
        &self.collection
    }

    /// The wrapper's aggregation pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// One full aggregate into a sketch snapshot for `version`, abandoned
    /// (`None`) when the scan fails or the collection mutates under it —
    /// the snapshot must describe exactly the rows of its version. Runs
    /// lock-free; [`Wrapper::column_stats`] owns the memoization.
    fn rebuild_stats(&self, version: u64) -> Option<Arc<TableStats>> {
        let relation = self.scan().ok()?;
        if self.data_version() != version {
            return None;
        }
        let mut builder = StatsBuilder::new(self.schema.names());
        for row in relation.rows() {
            builder.observe_row(row);
        }
        Some(Arc::new(builder.snapshot(version)))
    }

    /// The narrowed pipeline for a request: the fetch list (requested
    /// columns plus ride-along filter columns), the residual predicates
    /// (indexed into the fetch list) and the wrapper pipeline with the
    /// trailing `$project` / `$match` stages appended. `None` when a dotted
    /// column forces the wholesale reference path (see
    /// [`JsonWrapper::scan_request`]).
    #[allow(clippy::type_complexity)]
    fn narrowed_pipeline(
        &self,
        request: &ScanRequest,
    ) -> Result<Option<(Vec<String>, Vec<(usize, Predicate)>, Pipeline)>, WrapperError> {
        if request.columns().iter().any(|c| !match_addressable(c))
            || request
                .filters()
                .iter()
                .any(|f| !match_addressable(&f.column))
        {
            return Ok(None);
        }
        for column in request.columns() {
            self.schema.require(column).map_err(RelationError::Schema)?;
        }
        // Filter columns ride along when not among the requested columns,
        // and are dropped from the output rows afterwards.
        let mut fetch: Vec<String> = request.columns().to_vec();
        // (ride-along index, residual predicate) pairs evaluated post-
        // conversion; translatable predicates go into the `$match` stage.
        let mut residual: Vec<(usize, Predicate)> = Vec::new();
        let mut matched: Vec<(&str, DocPredicate)> = Vec::new();
        for f in request.filters() {
            self.schema
                .require(&f.column)
                .map_err(RelationError::Schema)?;
            let idx = match fetch.iter().position(|c| *c == f.column) {
                Some(idx) => idx,
                None => {
                    fetch.push(f.column.clone());
                    fetch.len() - 1
                }
            };
            match to_doc_predicate(&f.predicate) {
                Some(doc_predicate) => matched.push((&f.column, doc_predicate)),
                None => residual.push((idx, f.predicate.clone())),
            }
        }
        let mut pipeline = self.pipeline.clone().project(
            fetch
                .iter()
                .map(|c| Projection::field(c.clone(), c.clone()))
                .collect(),
        );
        for (column, doc_predicate) in matched {
            pipeline = pipeline.match_pred(column, doc_predicate);
        }
        Ok(Some((fetch, residual, pipeline)))
    }

    /// Converts one pipeline output document into a row of the request's
    /// arity, or `None` when a residual predicate rejects it.
    fn convert_row(
        &self,
        fetch: &[String],
        arity: usize,
        residual: &[(usize, Predicate)],
        doc: &serde_json::Value,
    ) -> Result<Option<Tuple>, WrapperError> {
        let mut row = Vec::with_capacity(fetch.len());
        for column in fetch {
            let json_value = doc.get(column).unwrap_or(&serde_json::Value::Null);
            row.push(self.convert(column, json_value)?);
        }
        if !residual.iter().all(|(idx, p)| p.matches(&row[*idx])) {
            return Ok(None);
        }
        row.truncate(arity);
        Ok(Some(row))
    }

    /// Converts a JSON scalar into a relational [`Value`].
    fn convert(&self, attribute: &str, v: &serde_json::Value) -> Result<Value, WrapperError> {
        Ok(match v {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            // Wrappers must deliver 1NF: nested structures are a wiring bug.
            serde_json::Value::Array(_) | serde_json::Value::Object(_) => {
                return Err(WrapperError::UnsupportedShape {
                    wrapper: self.name.clone(),
                    attribute: attribute.to_owned(),
                })
            }
        })
    }
}

impl Wrapper for JsonWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        Some(self.spec())
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        let docs = self
            .store
            .aggregate(&self.collection, &self.pipeline)
            .map_err(|e| WrapperError::permanent(self.name.clone(), e.to_string()))?;
        let mut rel = Relation::empty(self.schema.clone());
        for doc in docs {
            let mut row = Vec::with_capacity(self.schema.len());
            for attr in self.schema.attributes() {
                let json_value = doc.get(attr.name()).unwrap_or(&serde_json::Value::Null);
                row.push(self.convert(attr.name(), json_value)?);
            }
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// The wrapper claims every filter it can translate into the docstore
    /// pipeline: the column must exist, be addressable by a `$match` stage
    /// (no dots in the name), and each predicate value must have a faithful
    /// JSON image (NaN range bounds, for instance, do not — those filters
    /// stay in the mediator as residues). Bloom filters have no pipeline
    /// translation but are still claimed: they ride the wrapper's residual
    /// path (`JsonWrapper::convert_row`), so filtered-out documents never
    /// cross the wrapper boundary.
    fn claims_filter(&self, filter: &ColumnFilter) -> bool {
        self.schema.index_of(&filter.column).is_some()
            && match_addressable(&filter.column)
            && (matches!(filter.predicate, Predicate::Bloom(_))
                || to_doc_predicate(&filter.predicate).is_some())
    }

    /// Native pushdown: a trailing `$project` of only the requested fields
    /// is appended to the wrapper's pipeline, followed by a `$match` of
    /// every translatable predicate, so the document store never surfaces
    /// unused attributes or filtered-out documents. The docstore compares
    /// through [`bdi_docstore::json_cmp`], which mirrors relational
    /// [`Value`] ordering (cross-type numeric equality included) — the
    /// contract is relational. Untranslatable predicates are evaluated here
    /// after JSON→[`Value`] conversion, so the method honours *any* request
    /// whether or not its filters were claimed.
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        // The narrowing `$project` (and any `$match`) resolves fields by
        // dotted-path traversal, while this wrapper's own projection output
        // holds column names as literal keys — a dotted column name cannot
        // be re-addressed through the pipeline, so such requests take the
        // reference path wholesale.
        let Some((fetch, residual, pipeline)) = self.narrowed_pipeline(request)? else {
            return Ok(request.apply(&self.scan()?)?);
        };
        let docs = self
            .store
            .aggregate(&self.collection, &pipeline)
            .map_err(|e| WrapperError::permanent(self.name.clone(), e.to_string()))?;
        let arity = request.columns().len();
        let mut rel = Relation::empty(request.output().clone());
        for doc in docs {
            if let Some(row) = self.convert_row(&fetch, arity, &residual, &doc)? {
                rel.push(row)?;
            }
        }
        Ok(rel)
    }

    /// Native streaming pushdown: pulls `batch_rows`-document chunks from
    /// the backing collection (one short read-lock hold each, via
    /// [`DocStore::docs_chunk`]) and feeds them through a batch-aware
    /// pipeline cursor ([`Pipeline::start`]) whose `$limit` budgets span
    /// chunks — so neither the store's full document set nor the full
    /// result relation is ever materialized in one piece. A
    /// `$limit`-exhausted cursor stops pulling chunks early.
    ///
    /// Unlike the eager [`Wrapper::scan_request`] (one lock across the
    /// whole aggregate), this is a *cursor*, not a point snapshot: it is
    /// bounded to the documents present when it started and shrink-safe
    /// (a concurrent [`DocStore::clear`] ends it early), but a clear
    /// followed by re-inserts mid-scan can surface a mix of the two
    /// generations within one result — the same consistency any paging
    /// source gives. Every mutation bumps [`Wrapper::data_version`], so
    /// cached results of such a scan are invalidated either way; consumers
    /// needing single-lock snapshot semantics use the eager entry point.
    fn scan_request_batches<'a>(
        &'a self,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<RowBatches<'a>, WrapperError> {
        let Some((fetch, residual, pipeline)) = self.narrowed_pipeline(request)? else {
            // Dotted columns cannot be re-addressed through the narrowing
            // pipeline: chunk the wholesale reference result instead.
            let relation = self.scan_request(request)?;
            return Ok(Box::new(
                batches_from_relation(relation, batch_rows).map(|r| r.map_err(WrapperError::from)),
            ));
        };
        let total = self
            .store
            .collection_len(&self.collection)
            .map_err(|e| WrapperError::permanent(self.name.clone(), e.to_string()))?;
        let arity = request.columns().len();
        let batch_rows = batch_rows.max(1);
        let mut run = pipeline.start();
        let mut cursor = 0usize;
        let mut failed = false;
        Ok(Box::new(std::iter::from_fn(move || {
            loop {
                if failed || cursor >= total || run.exhausted() {
                    return None;
                }
                let docs = match self.store.docs_chunk(&self.collection, cursor, batch_rows) {
                    Ok(docs) => docs,
                    Err(e) => {
                        failed = true;
                        return Some(Err(WrapperError::permanent(
                            self.name.clone(),
                            e.to_string(),
                        )));
                    }
                };
                if docs.is_empty() {
                    return None; // the collection shrank mid-scan
                }
                cursor += docs.len();
                let outs = match run.push_batch(docs) {
                    Ok(outs) => outs,
                    Err(e) => {
                        failed = true;
                        return Some(Err(WrapperError::permanent(
                            self.name.clone(),
                            e.to_string(),
                        )));
                    }
                };
                let mut rows: Vec<Tuple> = Vec::with_capacity(outs.len());
                for doc in &outs {
                    match self.convert_row(&fetch, arity, &residual, doc) {
                        Ok(Some(row)) => rows.push(row),
                        Ok(None) => {}
                        Err(e) => {
                            failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                if !rows.is_empty() {
                    return Some(Ok(rows));
                }
            }
        })))
    }

    /// The backing *collection*'s mutation counter
    /// ([`DocStore::collection_version`]): inserts into sibling collections
    /// of the same store never move it, so this wrapper's cached scans
    /// survive them.
    fn data_version(&self) -> u64 {
        self.store.collection_version(&self.collection)
    }

    /// Exact only when the wrapper's own pipeline cannot change the
    /// document count (`$project`-only): one output row per stored
    /// document. Pipelines with `$match`/`$limit` stages return `None` —
    /// an inexact hint could flip hint-driven join scheduling away from
    /// the eager build-side choice and perturb unfiltered row order.
    fn scan_hint(&self, _request: &ScanRequest) -> Option<u64> {
        if self.pipeline.preserves_doc_count() {
            self.store
                .collection_len(&self.collection)
                .ok()
                .map(|n| n as u64)
        } else {
            None
        }
    }

    /// Construction-time probe hash (claims never change at run time).
    fn claims_fingerprint(&self) -> u64 {
        self.claims_fp
    }

    /// Per-column sketches over the pipeline's *output* rows, rebuilt
    /// lazily (one full aggregate) whenever the backing collection's
    /// version has moved past the memoized snapshot. Returns `None` when
    /// the collection mutates mid-rebuild rather than publish a snapshot
    /// whose rows straddle two versions.
    ///
    /// The rebuild aggregate runs outside the memoization lock and is
    /// single-flighted: while one thread rebuilds, others return `None`
    /// immediately (callers fall back to raw hints) instead of queueing
    /// behind a full collection scan. On a hot write path that also
    /// bounds the rescan rate — at most one aggregate in flight, each
    /// abandoned early when the version moves under it.
    fn column_stats(&self) -> Option<Arc<TableStats>> {
        let version = self.data_version();
        {
            let mut state = self.stats.lock().expect("stats lock poisoned");
            if let Some((cached_version, snapshot)) = state.cached.as_ref() {
                if *cached_version == version {
                    return Some(Arc::clone(snapshot));
                }
            }
            if state.rebuilding {
                return None;
            }
            state.rebuilding = true;
        }
        let rebuilt = self.rebuild_stats(version);
        let mut state = self.stats.lock().expect("stats lock poisoned");
        state.rebuilding = false;
        let snapshot = rebuilt?;
        state.cached = Some((version, Arc::clone(&snapshot)));
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_docstore::{AggExpr, Projection};
    use serde_json::json;

    fn vod_store() -> DocStore {
        let store = DocStore::new();
        store
            .insert_many(
                "vod",
                vec![
                    json!({"monitorId": 12, "timestamp": 1475010424i64, "bitrate": 6, "waitTime": 3, "watchTime": 4}),
                    json!({"monitorId": 12, "waitTime": 9, "watchTime": 10}),
                    json!({"monitorId": 18, "waitTime": 1, "watchTime": 10}),
                ],
            )
            .unwrap();
        store
    }

    fn code2_wrapper(store: DocStore) -> JsonWrapper {
        JsonWrapper::new(
            "w1",
            "D1",
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            store,
            "vod",
            Pipeline::new().project(vec![
                Projection::field("VoDmonitorId", "monitorId"),
                Projection::computed(
                    "lagRatio",
                    AggExpr::divide(AggExpr::field("waitTime"), AggExpr::field("watchTime")),
                ),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn scan_flattens_json_into_relation() {
        let w = code2_wrapper(vod_store());
        let rel = w.scan().unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.value(0, "VoDmonitorId"), Some(&Value::Int(12)));
        assert_eq!(rel.value(0, "lagRatio"), Some(&Value::Float(0.75)));
        assert_eq!(rel.value(2, "lagRatio"), Some(&Value::Float(0.1)));
    }

    #[test]
    fn missing_schema_attribute_in_pipeline_is_rejected() {
        let err = JsonWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["zz"]).unwrap(),
            vod_store(),
            "vod",
            Pipeline::new().project(vec![Projection::field("id", "monitorId")]),
        );
        assert!(matches!(err, Err(WrapperError::SourceQuery { .. })));
    }

    #[test]
    fn nested_values_are_a_wiring_error() {
        let store = DocStore::new();
        store.insert("c", json!({"nested": {"a": 1}})).unwrap();
        let w = JsonWrapper::new(
            "w",
            "D",
            Schema::from_parts::<&str>(&[], &["nested"]).unwrap(),
            store,
            "c",
            Pipeline::new().project(vec![Projection::field("nested", "nested")]),
        )
        .unwrap();
        assert!(matches!(
            w.scan(),
            Err(WrapperError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn scan_request_narrows_pipeline_and_filters() {
        let w = code2_wrapper(vod_store());
        let request = ScanRequest::new(
            vec!["lagRatio".into()],
            Schema::from_parts::<&str>(&[], &["D1/lagRatio"]).unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
        assert_eq!(native.schema().names(), vec!["D1/lagRatio"]);
        assert_eq!(native.value(0, "D1/lagRatio"), Some(&Value::Float(0.75)));
    }

    #[test]
    fn predicate_pushdown_matches_reference_and_reconciles_numerics() {
        let store = vod_store();
        // A float-typed monitor id: relational equality is cross-type, so a
        // pushed Int(12) filter must match it through the $match stage.
        store
            .insert(
                "vod",
                json!({"monitorId": 12.0, "waitTime": 1, "watchTime": 2}),
            )
            .unwrap();
        let w = code2_wrapper(store);
        let eq = ScanRequest::new(
            vec!["lagRatio".into()],
            Schema::from_parts::<&str>(&[], &["D1/lagRatio"]).unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let native = w.scan_request(&eq).unwrap();
        assert_eq!(native, eq.apply(&w.scan().unwrap()).unwrap());
        assert_eq!(native.len(), 3); // both Int(12) docs and the Float(12.0) doc

        let range = ScanRequest::full(w.schema())
            .with_predicate("lagRatio", Predicate::between(0.1, 0.8))
            .with_predicate(
                "VoDmonitorId",
                Predicate::in_set([Value::Int(12), Value::Int(18)]),
            );
        assert!(w.claims_filter(&range.filters()[0]));
        let native = w.scan_request(&range).unwrap();
        assert_eq!(native, range.apply(&w.scan().unwrap()).unwrap());
    }

    #[test]
    fn nan_bounds_are_not_claimed_but_still_honoured() {
        let w = code2_wrapper(vod_store());
        // NaN has no JSON image: the wrapper declines the claim…
        let filter = ColumnFilter::new("lagRatio", Predicate::at_most(f64::NAN));
        assert!(!w.claims_filter(&filter));
        assert!(!w.claims_filter(&ColumnFilter::new(
            "lagRatio",
            Predicate::in_set([Value::Float(f64::NAN)])
        )));
        // …and unknown columns are never claimed.
        assert!(!w.claims_filter(&ColumnFilter::new("zz", Predicate::eq(1))));
        // Dotted column names are not $match-addressable after $project (a
        // $match would traverse the path while the projected doc holds the
        // literal key): declined, evaluated residually — and the residual
        // answer equals the reference.
        let store = DocStore::new();
        store
            .insert_many(
                "c",
                vec![
                    serde_json::json!({"a": {"b": 1}}),
                    serde_json::json!({"a": {"b": 2}}),
                ],
            )
            .unwrap();
        let dotted = JsonWrapper::new(
            "wd",
            "D",
            Schema::from_parts::<&str>(&[], &["a.b"]).unwrap(),
            store,
            "c",
            Pipeline::new().project(vec![Projection::field("a.b", "a.b")]),
        )
        .unwrap();
        let dotted_filter = ColumnFilter::new("a.b", Predicate::eq(1));
        assert!(!dotted.claims_filter(&dotted_filter));
        let dotted_request = ScanRequest::full(dotted.schema()).with_column_filter(dotted_filter);
        let dotted_native = dotted.scan_request(&dotted_request).unwrap();
        assert_eq!(
            dotted_native,
            dotted_request.apply(&dotted.scan().unwrap()).unwrap()
        );
        assert_eq!(dotted_native.len(), 1);
        // …but a request carrying one anyway is evaluated residually, with
        // reference semantics (everything is ≤ NaN: it sorts greatest).
        let request = ScanRequest::full(w.schema()).with_column_filter(filter);
        let native = w.scan_request(&request).unwrap();
        assert_eq!(native, request.apply(&w.scan().unwrap()).unwrap());
        assert_eq!(native.len(), 3);
    }

    #[test]
    fn native_batches_match_reference_at_every_size() {
        let w = code2_wrapper(vod_store());
        // Projection + claimed filter + ride-along filter column.
        let request = ScanRequest::new(
            vec!["lagRatio".into()],
            Schema::from_parts::<&str>(&[], &["D1/lagRatio"]).unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(reference.len(), 2);
        for batch_rows in [1usize, 2, usize::MAX] {
            let mut rows = Vec::new();
            for batch in w.scan_request_batches(&request, batch_rows).unwrap() {
                let batch = batch.unwrap();
                assert!(!batch.is_empty());
                assert!(batch.len() <= batch_rows);
                rows.extend(batch);
            }
            assert_eq!(rows, reference.rows(), "batch_rows={batch_rows}");
        }
    }

    #[test]
    fn batched_scan_honours_limit_stages_across_chunks() {
        // A wrapper pipeline with $limit: the budget must span pulled
        // chunks (2 docs surface however small the batches are).
        let store = vod_store();
        let w = JsonWrapper::new(
            "w1",
            "D1",
            Schema::from_parts(&["VoDmonitorId"], &[]).unwrap(),
            store,
            "vod",
            Pipeline::new()
                .limit(2)
                .project(vec![Projection::field("VoDmonitorId", "monitorId")]),
        )
        .unwrap();
        let request = ScanRequest::full(w.schema());
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(reference.len(), 2);
        for batch_rows in [1usize, 3] {
            let rows: Vec<_> = w
                .scan_request_batches(&request, batch_rows)
                .unwrap()
                .flat_map(|b| b.unwrap())
                .collect();
            assert_eq!(rows, reference.rows());
        }
    }

    #[test]
    fn dotted_columns_fall_back_to_chunked_reference_path() {
        let store = DocStore::new();
        store
            .insert_many("c", vec![json!({"a": {"b": 1}}), json!({"a": {"b": 2}})])
            .unwrap();
        let w = JsonWrapper::new(
            "wd",
            "D",
            Schema::from_parts::<&str>(&[], &["a.b"]).unwrap(),
            store,
            "c",
            Pipeline::new().project(vec![Projection::field("a.b", "a.b")]),
        )
        .unwrap();
        let request = ScanRequest::full(w.schema());
        let reference = w.scan_request(&request).unwrap();
        let rows: Vec<_> = w
            .scan_request_batches(&request, 1)
            .unwrap()
            .flat_map(|b| b.unwrap())
            .collect();
        assert_eq!(rows, reference.rows());
    }

    #[test]
    fn store_mutations_bump_data_version() {
        let store = vod_store();
        let w = code2_wrapper(store.clone());
        let v0 = w.data_version();
        store
            .insert(
                "vod",
                json!({"monitorId": 7, "waitTime": 1, "watchTime": 2}),
            )
            .unwrap();
        assert!(w.data_version() > v0);
        let v1 = w.data_version();
        store.clear("vod");
        assert!(w.data_version() > v1);
    }

    #[test]
    fn new_source_documents_appear_on_next_scan() {
        let store = vod_store();
        let w = code2_wrapper(store.clone());
        assert_eq!(w.scan().unwrap().len(), 3);
        store
            .insert(
                "vod",
                json!({"monitorId": 20, "waitTime": 5, "watchTime": 8}),
            )
            .unwrap();
        assert_eq!(w.scan().unwrap().len(), 4);
    }
}
