//! Wrappers over JSON collections — the paper's Code 2 made executable.
//!
//! A [`JsonWrapper`] runs an aggregation pipeline against a [`DocStore`]
//! collection and flattens the resulting JSON objects into the flat 1NF
//! relation the ontology layer expects.

use crate::wrapper::{Wrapper, WrapperError};
use bdi_docstore::{DocStore, Pipeline, Projection};
use bdi_relational::plan::ScanRequest;
use bdi_relational::{Relation, RelationError, Schema, Value};

/// A wrapper backed by a document-store aggregation query.
pub struct JsonWrapper {
    name: String,
    source: String,
    schema: Schema,
    store: DocStore,
    collection: String,
    pipeline: Pipeline,
}

impl JsonWrapper {
    /// Builds the wrapper. The pipeline's final `$project` field names must
    /// cover every attribute of `schema` (extra projected fields are
    /// ignored); this is checked at construction so a mis-wired wrapper
    /// fails at registration time, not at query time.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        schema: Schema,
        store: DocStore,
        collection: impl Into<String>,
        pipeline: Pipeline,
    ) -> Result<Self, WrapperError> {
        let name = name.into();
        if let Some(fields) = pipeline.output_fields() {
            for attr in schema.names() {
                if !fields.contains(&attr) {
                    return Err(WrapperError::SourceQuery(
                        name,
                        format!("pipeline does not project attribute {attr}"),
                    ));
                }
            }
        }
        Ok(Self {
            name,
            source: source.into(),
            schema,
            store,
            collection: collection.into(),
            pipeline,
        })
    }

    /// The backing collection's name.
    pub fn collection(&self) -> &str {
        &self.collection
    }

    /// The wrapper's aggregation pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Converts a JSON scalar into a relational [`Value`].
    fn convert(&self, attribute: &str, v: &serde_json::Value) -> Result<Value, WrapperError> {
        Ok(match v {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            // Wrappers must deliver 1NF: nested structures are a wiring bug.
            serde_json::Value::Array(_) | serde_json::Value::Object(_) => {
                return Err(WrapperError::UnsupportedShape {
                    wrapper: self.name.clone(),
                    attribute: attribute.to_owned(),
                })
            }
        })
    }
}

impl Wrapper for JsonWrapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn to_spec(&self) -> Option<crate::spec::WrapperSpec> {
        Some(self.spec())
    }

    fn scan(&self) -> Result<Relation, WrapperError> {
        let docs = self
            .store
            .aggregate(&self.collection, &self.pipeline)
            .map_err(|e| WrapperError::SourceQuery(self.name.clone(), e.to_string()))?;
        let mut rel = Relation::empty(self.schema.clone());
        for doc in docs {
            let mut row = Vec::with_capacity(self.schema.len());
            for attr in self.schema.attributes() {
                let json_value = doc.get(attr.name()).unwrap_or(&serde_json::Value::Null);
                row.push(self.convert(attr.name(), json_value)?);
            }
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// Native pushdown: a trailing `$project` of only the requested fields
    /// is appended to the wrapper's pipeline, so the document store never
    /// surfaces unused attributes. The ID-equality filter is applied after
    /// JSON→[`Value`] conversion — relational equality (cross-type numeric)
    /// differs from JSON equality, and the contract is relational.
    fn scan_request(&self, request: &ScanRequest) -> Result<Relation, WrapperError> {
        // The filter column rides along when it is not among the requested
        // columns, and is dropped from the output rows afterwards.
        let mut fetch: Vec<&str> = request.columns().iter().map(String::as_str).collect();
        let filter = match request.filter() {
            Some(f) => {
                self.schema
                    .require(&f.column)
                    .map_err(RelationError::Schema)?;
                let idx = match fetch.iter().position(|c| *c == f.column) {
                    Some(idx) => idx,
                    None => {
                        fetch.push(&f.column);
                        fetch.len() - 1
                    }
                };
                Some((idx, &f.value))
            }
            None => None,
        };
        for column in request.columns() {
            self.schema.require(column).map_err(RelationError::Schema)?;
        }
        let pipeline = self
            .pipeline
            .clone()
            .project(fetch.iter().map(|c| Projection::field(*c, *c)).collect());
        let docs = self
            .store
            .aggregate(&self.collection, &pipeline)
            .map_err(|e| WrapperError::SourceQuery(self.name.clone(), e.to_string()))?;
        let arity = request.columns().len();
        let mut rel = Relation::empty(request.output().clone());
        for doc in docs {
            let mut row = Vec::with_capacity(fetch.len());
            for column in &fetch {
                let json_value = doc.get(column).unwrap_or(&serde_json::Value::Null);
                row.push(self.convert(column, json_value)?);
            }
            if let Some((idx, value)) = filter {
                if &row[idx] != value {
                    continue;
                }
            }
            row.truncate(arity);
            rel.push(row)?;
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_docstore::{AggExpr, Projection};
    use serde_json::json;

    fn vod_store() -> DocStore {
        let store = DocStore::new();
        store
            .insert_many(
                "vod",
                vec![
                    json!({"monitorId": 12, "timestamp": 1475010424i64, "bitrate": 6, "waitTime": 3, "watchTime": 4}),
                    json!({"monitorId": 12, "waitTime": 9, "watchTime": 10}),
                    json!({"monitorId": 18, "waitTime": 1, "watchTime": 10}),
                ],
            )
            .unwrap();
        store
    }

    fn code2_wrapper(store: DocStore) -> JsonWrapper {
        JsonWrapper::new(
            "w1",
            "D1",
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            store,
            "vod",
            Pipeline::new().project(vec![
                Projection::field("VoDmonitorId", "monitorId"),
                Projection::computed(
                    "lagRatio",
                    AggExpr::divide(AggExpr::field("waitTime"), AggExpr::field("watchTime")),
                ),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn scan_flattens_json_into_relation() {
        let w = code2_wrapper(vod_store());
        let rel = w.scan().unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.value(0, "VoDmonitorId"), Some(&Value::Int(12)));
        assert_eq!(rel.value(0, "lagRatio"), Some(&Value::Float(0.75)));
        assert_eq!(rel.value(2, "lagRatio"), Some(&Value::Float(0.1)));
    }

    #[test]
    fn missing_schema_attribute_in_pipeline_is_rejected() {
        let err = JsonWrapper::new(
            "w",
            "D",
            Schema::from_parts(&["id"], &["zz"]).unwrap(),
            vod_store(),
            "vod",
            Pipeline::new().project(vec![Projection::field("id", "monitorId")]),
        );
        assert!(matches!(err, Err(WrapperError::SourceQuery(_, _))));
    }

    #[test]
    fn nested_values_are_a_wiring_error() {
        let store = DocStore::new();
        store.insert("c", json!({"nested": {"a": 1}})).unwrap();
        let w = JsonWrapper::new(
            "w",
            "D",
            Schema::from_parts::<&str>(&[], &["nested"]).unwrap(),
            store,
            "c",
            Pipeline::new().project(vec![Projection::field("nested", "nested")]),
        )
        .unwrap();
        assert!(matches!(
            w.scan(),
            Err(WrapperError::UnsupportedShape { .. })
        ));
    }

    #[test]
    fn scan_request_narrows_pipeline_and_filters() {
        let w = code2_wrapper(vod_store());
        let request = ScanRequest::new(
            vec!["lagRatio".into()],
            Schema::from_parts::<&str>(&[], &["D1/lagRatio"]).unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let native = w.scan_request(&request).unwrap();
        let reference = request.apply(&w.scan().unwrap()).unwrap();
        assert_eq!(native, reference);
        assert_eq!(native.len(), 2);
        assert_eq!(native.schema().names(), vec!["D1/lagRatio"]);
        assert_eq!(native.value(0, "D1/lagRatio"), Some(&Value::Float(0.75)));
    }

    #[test]
    fn new_source_documents_appear_on_next_scan() {
        let store = vod_store();
        let w = code2_wrapper(store.clone());
        assert_eq!(w.scan().unwrap().len(), 3);
        store
            .insert(
                "vod",
                json!({"monitorId": 20, "waitTime": 5, "watchTime": 8}),
            )
            .unwrap();
        assert_eq!(w.scan().unwrap().len(), 4);
    }
}
