//! The in-memory named-graph quad store.
//!
//! This is the triplestore substrate the paper assumes (§2: "a triplestore
//! with a SPARQL endpoint supporting the RDFS entailment regime"). Quads are
//! interned to `u32` ids and kept in six `BTreeSet` permutation indexes so
//! that any triple/quad pattern with any combination of bound positions is
//! answered by a single range scan:
//!
//! | bound prefix        | index  |
//! |---------------------|--------|
//! | g, g+s, g+s+p, all  | `GSPO` |
//! | g+p, g+p+o          | `GPOS` |
//! | g+o, g+o+s          | `GOSP` |
//! | s, s+p, s+p+o       | `SPOG` |
//! | p, p+o              | `POSG` |
//! | o, o+s              | `OSPG` |
//!
//! The store is internally synchronized with a single `parking_lot::RwLock`
//! (interner and indexes are always accessed together, so one lock beats
//! many). All public methods take `&self`.

use crate::interner::{Interner, TermId};
use crate::model::{GraphName, Iri, Quad, Term, Triple};
use parking_lot::RwLock;
use std::collections::BTreeSet;

/// Encoded graph component: `0` is the default graph, otherwise
/// `TermId + 1` of the graph IRI.
type GraphCode = u32;

const DEFAULT_GRAPH: GraphCode = 0;

/// One quad in id space, in a particular component order.
type Key = [u32; 4];

/// A pattern over the graph position of a quad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphPattern {
    /// Match quads in any graph (default and named).
    Any,
    /// Match only the default graph.
    Default,
    /// Match only the given named graph.
    Named(Iri),
    /// Match any *named* graph (the `GRAPH ?g { ... }` SPARQL construct).
    AnyNamed,
}

impl From<GraphName> for GraphPattern {
    fn from(value: GraphName) -> Self {
        match value {
            GraphName::Default => GraphPattern::Default,
            GraphName::Named(iri) => GraphPattern::Named(iri),
        }
    }
}

impl From<&GraphName> for GraphPattern {
    fn from(value: &GraphName) -> Self {
        GraphPattern::from(value.clone())
    }
}

#[derive(Debug, Default)]
struct Inner {
    interner: Interner,
    gspo: BTreeSet<Key>,
    gpos: BTreeSet<Key>,
    gosp: BTreeSet<Key>,
    spog: BTreeSet<Key>,
    posg: BTreeSet<Key>,
    ospg: BTreeSet<Key>,
}

/// An in-memory, indexed, thread-safe RDF quad store.
#[derive(Debug, Default)]
pub struct QuadStore {
    inner: RwLock<Inner>,
}

impl Inner {
    fn graph_code(&mut self, graph: &GraphName) -> GraphCode {
        match graph {
            GraphName::Default => DEFAULT_GRAPH,
            GraphName::Named(iri) => {
                let id = self.interner.intern(&Term::Iri(iri.clone()));
                id.index() as u32 + 1
            }
        }
    }

    fn graph_code_existing(&self, graph: &GraphName) -> Option<GraphCode> {
        match graph {
            GraphName::Default => Some(DEFAULT_GRAPH),
            GraphName::Named(iri) => self
                .interner
                .get(&Term::Iri(iri.clone()))
                .map(|id| id.index() as u32 + 1),
        }
    }

    fn decode_graph(&self, code: GraphCode) -> GraphName {
        if code == DEFAULT_GRAPH {
            GraphName::Default
        } else {
            match self.interner.resolve(TermId(code - 1)) {
                Term::Iri(iri) => GraphName::Named(iri.clone()),
                other => unreachable!("graph code resolved to non-IRI term {other}"),
            }
        }
    }

    fn insert_ids(&mut self, g: u32, s: u32, p: u32, o: u32) -> bool {
        let fresh = self.gspo.insert([g, s, p, o]);
        if fresh {
            self.gpos.insert([g, p, o, s]);
            self.gosp.insert([g, o, s, p]);
            self.spog.insert([s, p, o, g]);
            self.posg.insert([p, o, s, g]);
            self.ospg.insert([o, s, p, g]);
        }
        fresh
    }

    fn remove_ids(&mut self, g: u32, s: u32, p: u32, o: u32) -> bool {
        let was = self.gspo.remove(&[g, s, p, o]);
        if was {
            self.gpos.remove(&[g, p, o, s]);
            self.gosp.remove(&[g, o, s, p]);
            self.spog.remove(&[s, p, o, g]);
            self.posg.remove(&[p, o, s, g]);
            self.ospg.remove(&[o, s, p, g]);
        }
        was
    }

    fn decode(&self, g: u32, s: u32, p: u32, o: u32) -> Quad {
        let subject = self.interner.resolve(TermId(s)).clone();
        let predicate = match self.interner.resolve(TermId(p)) {
            Term::Iri(iri) => iri.clone(),
            other => unreachable!("predicate resolved to non-IRI term {other}"),
        };
        let object = self.interner.resolve(TermId(o)).clone();
        Quad {
            subject,
            predicate,
            object,
            graph: self.decode_graph(g),
        }
    }
}

/// Scans `index` for keys starting with the bound `prefix`, invoking `f` with
/// each full key.
fn scan_prefix(index: &BTreeSet<Key>, prefix: &[u32], mut f: impl FnMut(Key)) {
    let mut lo = [0u32; 4];
    let mut hi = [u32::MAX; 4];
    lo[..prefix.len()].copy_from_slice(prefix);
    hi[..prefix.len()].copy_from_slice(prefix);
    for &key in index.range(lo..=hi) {
        f(key);
    }
}

impl QuadStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a quad; returns `true` if it was not already present.
    pub fn insert(&self, quad: &Quad) -> bool {
        let mut inner = self.inner.write();
        let g = inner.graph_code(&quad.graph);
        let s = inner.interner.intern(&quad.subject).index() as u32;
        let p = inner.interner.intern(&Term::Iri(quad.predicate.clone())).index() as u32;
        let o = inner.interner.intern(&quad.object).index() as u32;
        inner.insert_ids(g, s, p, o)
    }

    /// Inserts a triple into the given graph.
    pub fn insert_in(
        &self,
        graph: &GraphName,
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> bool {
        self.insert(&Quad::new(subject, predicate, object, graph.clone()))
    }

    /// Inserts a triple into the default graph.
    pub fn insert_triple(&self, triple: &Triple) -> bool {
        self.insert(&Quad {
            subject: triple.subject.clone(),
            predicate: triple.predicate.clone(),
            object: triple.object.clone(),
            graph: GraphName::Default,
        })
    }

    /// Inserts every quad of an iterator, returning how many were new.
    pub fn extend<I: IntoIterator<Item = Quad>>(&self, quads: I) -> usize {
        let mut inner = self.inner.write();
        let mut added = 0;
        for quad in quads {
            let g = inner.graph_code(&quad.graph);
            let s = inner.interner.intern(&quad.subject).index() as u32;
            let p = inner.interner.intern(&Term::Iri(quad.predicate.clone())).index() as u32;
            let o = inner.interner.intern(&quad.object).index() as u32;
            if inner.insert_ids(g, s, p, o) {
                added += 1;
            }
        }
        added
    }

    /// Removes a quad; returns `true` if it was present.
    pub fn remove(&self, quad: &Quad) -> bool {
        let mut inner = self.inner.write();
        let Some(g) = inner.graph_code_existing(&quad.graph) else {
            return false;
        };
        let Some(s) = inner.interner.get(&quad.subject) else {
            return false;
        };
        let Some(p) = inner.interner.get(&Term::Iri(quad.predicate.clone())) else {
            return false;
        };
        let Some(o) = inner.interner.get(&quad.object) else {
            return false;
        };
        inner.remove_ids(g, s.index() as u32, p.index() as u32, o.index() as u32)
    }

    /// True when the exact quad is present.
    pub fn contains(&self, quad: &Quad) -> bool {
        let inner = self.inner.read();
        let (Some(g), Some(s), Some(p), Some(o)) = (
            inner.graph_code_existing(&quad.graph),
            inner.interner.get(&quad.subject),
            inner.interner.get(&Term::Iri(quad.predicate.clone())),
            inner.interner.get(&quad.object),
        ) else {
            return false;
        };
        inner
            .gspo
            .contains(&[g, s.index() as u32, p.index() as u32, o.index() as u32])
    }

    /// Total number of quads, across all graphs.
    pub fn len(&self) -> usize {
        self.inner.read().gspo.len()
    }

    /// True when the store holds no quads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of quads in one graph.
    pub fn graph_len(&self, graph: &GraphName) -> usize {
        let inner = self.inner.read();
        let Some(g) = inner.graph_code_existing(graph) else {
            return 0;
        };
        let mut n = 0;
        scan_prefix(&inner.gspo, &[g], |_| n += 1);
        n
    }

    /// All named graphs that currently hold at least one quad.
    pub fn named_graphs(&self) -> Vec<Iri> {
        let inner = self.inner.read();
        let mut graphs = Vec::new();
        let mut cursor = 1u32; // skip the default graph
        loop {
            let lo = [cursor, 0, 0, 0];
            match inner.gspo.range(lo..).next() {
                Some(&[g, _, _, _]) if g >= cursor => {
                    if let GraphName::Named(iri) = inner.decode_graph(g) {
                        graphs.push(iri);
                    }
                    if g == u32::MAX {
                        break;
                    }
                    cursor = g + 1;
                }
                _ => break,
            }
        }
        graphs
    }

    /// Matches quads against a pattern; `None` positions are wildcards.
    ///
    /// This is the store's single query primitive: the SPARQL evaluator, the
    /// RDFS materializer and all of the paper's Algorithms are built on it.
    pub fn match_quads(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
        graph: &GraphPattern,
    ) -> Vec<Quad> {
        let inner = self.inner.read();

        // Resolve bound positions to ids; a bound term that was never interned
        // cannot match anything.
        let s = match subject {
            Some(t) => match inner.interner.get(t) {
                Some(id) => Some(id.index() as u32),
                None => return Vec::new(),
            },
            None => None,
        };
        let p = match predicate {
            Some(iri) => match inner.interner.get(&Term::Iri(iri.clone())) {
                Some(id) => Some(id.index() as u32),
                None => return Vec::new(),
            },
            None => None,
        };
        let o = match object {
            Some(t) => match inner.interner.get(t) {
                Some(id) => Some(id.index() as u32),
                None => return Vec::new(),
            },
            None => None,
        };
        let g = match graph {
            GraphPattern::Any | GraphPattern::AnyNamed => None,
            GraphPattern::Default => Some(DEFAULT_GRAPH),
            GraphPattern::Named(iri) => match inner.graph_code_existing(&GraphName::Named(iri.clone())) {
                Some(code) => Some(code),
                None => return Vec::new(),
            },
        };
        let named_only = matches!(graph, GraphPattern::AnyNamed);

        let mut out = Vec::new();
        let mut push = |inner: &Inner, g: u32, s: u32, p: u32, o: u32| {
            if named_only && g == DEFAULT_GRAPH {
                return;
            }
            out.push(inner.decode(g, s, p, o));
        };

        match (g, s, p, o) {
            (Some(g), Some(s), Some(p), Some(o)) => {
                if inner.gspo.contains(&[g, s, p, o]) {
                    push(&inner, g, s, p, o);
                }
            }
            (Some(g), Some(s), Some(p), None) => {
                scan_prefix(&inner.gspo, &[g, s, p], |[g, s, p, o]| push(&inner, g, s, p, o))
            }
            (Some(g), Some(s), None, None) => {
                scan_prefix(&inner.gspo, &[g, s], |[g, s, p, o]| push(&inner, g, s, p, o))
            }
            (Some(g), Some(s), None, Some(o)) => {
                scan_prefix(&inner.gosp, &[g, o, s], |[g, o, s, p]| push(&inner, g, s, p, o))
            }
            (Some(g), None, Some(p), Some(o)) => {
                scan_prefix(&inner.gpos, &[g, p, o], |[g, p, o, s]| push(&inner, g, s, p, o))
            }
            (Some(g), None, Some(p), None) => {
                scan_prefix(&inner.gpos, &[g, p], |[g, p, o, s]| push(&inner, g, s, p, o))
            }
            (Some(g), None, None, Some(o)) => {
                scan_prefix(&inner.gosp, &[g, o], |[g, o, s, p]| push(&inner, g, s, p, o))
            }
            (Some(g), None, None, None) => {
                scan_prefix(&inner.gspo, &[g], |[g, s, p, o]| push(&inner, g, s, p, o))
            }
            (None, Some(s), Some(p), Some(o)) => {
                scan_prefix(&inner.spog, &[s, p, o], |[s, p, o, g]| push(&inner, g, s, p, o))
            }
            (None, Some(s), Some(p), None) => {
                scan_prefix(&inner.spog, &[s, p], |[s, p, o, g]| push(&inner, g, s, p, o))
            }
            (None, Some(s), None, None) => {
                scan_prefix(&inner.spog, &[s], |[s, p, o, g]| push(&inner, g, s, p, o))
            }
            (None, Some(s), None, Some(o)) => {
                scan_prefix(&inner.ospg, &[o, s], |[o, s, p, g]| push(&inner, g, s, p, o))
            }
            (None, None, Some(p), Some(o)) => {
                scan_prefix(&inner.posg, &[p, o], |[p, o, s, g]| push(&inner, g, s, p, o))
            }
            (None, None, Some(p), None) => {
                scan_prefix(&inner.posg, &[p], |[p, o, s, g]| push(&inner, g, s, p, o))
            }
            (None, None, None, Some(o)) => {
                scan_prefix(&inner.ospg, &[o], |[o, s, p, g]| push(&inner, g, s, p, o))
            }
            (None, None, None, None) => {
                scan_prefix(&inner.spog, &[], |[s, p, o, g]| push(&inner, g, s, p, o))
            }
        }
        out
    }

    /// All quads in the store.
    pub fn iter_all(&self) -> Vec<Quad> {
        self.match_quads(None, None, None, &GraphPattern::Any)
    }

    /// All quads of one graph.
    pub fn graph_quads(&self, graph: &GraphName) -> Vec<Quad> {
        self.match_quads(None, None, None, &GraphPattern::from(graph))
    }

    /// Convenience: the objects of `(subject, predicate, ?o)` in a graph.
    pub fn objects(&self, subject: &Term, predicate: &Iri, graph: &GraphPattern) -> Vec<Term> {
        self.match_quads(Some(subject), Some(predicate), None, graph)
            .into_iter()
            .map(|q| q.object)
            .collect()
    }

    /// Convenience: the subjects of `(?s, predicate, object)` in a graph.
    pub fn subjects(&self, predicate: &Iri, object: &Term, graph: &GraphPattern) -> Vec<Term> {
        self.match_quads(None, Some(predicate), Some(object), graph)
            .into_iter()
            .map(|q| q.subject)
            .collect()
    }

    /// Removes every quad of a named graph, returning how many were removed.
    pub fn clear_graph(&self, graph: &GraphName) -> usize {
        let quads = self.graph_quads(graph);
        let mut inner = self.inner.write();
        let mut removed = 0;
        for quad in &quads {
            let (Some(g), Some(s), Some(p), Some(o)) = (
                inner.graph_code_existing(&quad.graph),
                inner.interner.get(&quad.subject),
                inner.interner.get(&Term::Iri(quad.predicate.clone())),
                inner.interner.get(&quad.object),
            ) else {
                continue;
            };
            if inner.remove_ids(g, s.index() as u32, p.index() as u32, o.index() as u32) {
                removed += 1;
            }
        }
        removed
    }

    /// Number of distinct interned terms (diagnostics / bench reporting).
    pub fn term_count(&self) -> usize {
        self.inner.read().interner.len()
    }
}

impl Clone for QuadStore {
    /// Deep copy: clones all quads into a fresh store. Used to snapshot the
    /// ontology before speculative updates (e.g. in tests and the evolution
    /// harness).
    fn clone(&self) -> Self {
        let store = QuadStore::new();
        store.extend(self.iter_all());
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(s)
    }

    fn quad(s: &str, p: &str, o: &str) -> Quad {
        Quad::new(iri(s), iri(p), iri(o), GraphName::Default)
    }

    #[test]
    fn insert_is_idempotent() {
        let store = QuadStore::new();
        let q = quad("http://e/s", "http://e/p", "http://e/o");
        assert!(store.insert(&q));
        assert!(!store.insert(&q));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn remove_round_trips() {
        let store = QuadStore::new();
        let q = quad("http://e/s", "http://e/p", "http://e/o");
        store.insert(&q);
        assert!(store.remove(&q));
        assert!(!store.remove(&q));
        assert!(store.is_empty());
    }

    #[test]
    fn contains_distinguishes_graphs() {
        let store = QuadStore::new();
        let named = Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o"),
            GraphName::named(iri("http://e/g")),
        );
        store.insert(&named);
        assert!(store.contains(&named));
        assert!(!store.contains(&quad("http://e/s", "http://e/p", "http://e/o")));
    }

    #[test]
    fn match_all_sixteen_binding_combinations() {
        let store = QuadStore::new();
        let g = GraphName::named(iri("http://e/g"));
        store.insert(&Quad::new(iri("http://e/s1"), iri("http://e/p1"), iri("http://e/o1"), g.clone()));
        store.insert(&Quad::new(iri("http://e/s1"), iri("http://e/p2"), iri("http://e/o2"), g.clone()));
        store.insert(&Quad::new(iri("http://e/s2"), iri("http://e/p1"), iri("http://e/o1"), GraphName::Default));

        let s1 = Term::iri("http://e/s1");
        let p1 = iri("http://e/p1");
        let o1 = Term::iri("http://e/o1");
        let gp = GraphPattern::Named(iri("http://e/g"));

        // fully bound
        assert_eq!(store.match_quads(Some(&s1), Some(&p1), Some(&o1), &gp).len(), 1);
        // g+s+p
        assert_eq!(store.match_quads(Some(&s1), Some(&p1), None, &gp).len(), 1);
        // g+s
        assert_eq!(store.match_quads(Some(&s1), None, None, &gp).len(), 2);
        // g+s+o
        assert_eq!(store.match_quads(Some(&s1), None, Some(&o1), &gp).len(), 1);
        // g+p+o
        assert_eq!(store.match_quads(None, Some(&p1), Some(&o1), &gp).len(), 1);
        // g+p
        assert_eq!(store.match_quads(None, Some(&p1), None, &gp).len(), 1);
        // g+o
        assert_eq!(store.match_quads(None, None, Some(&o1), &gp).len(), 1);
        // g only
        assert_eq!(store.match_quads(None, None, None, &gp).len(), 2);
        // s+p+o across graphs
        assert_eq!(store.match_quads(Some(&s1), Some(&p1), Some(&o1), &GraphPattern::Any).len(), 1);
        // s+p
        assert_eq!(store.match_quads(Some(&s1), Some(&p1), None, &GraphPattern::Any).len(), 1);
        // s
        assert_eq!(store.match_quads(Some(&s1), None, None, &GraphPattern::Any).len(), 2);
        // s+o
        assert_eq!(store.match_quads(Some(&s1), None, Some(&o1), &GraphPattern::Any).len(), 1);
        // p+o
        assert_eq!(store.match_quads(None, Some(&p1), Some(&o1), &GraphPattern::Any).len(), 2);
        // p
        assert_eq!(store.match_quads(None, Some(&p1), None, &GraphPattern::Any).len(), 2);
        // o
        assert_eq!(store.match_quads(None, None, Some(&o1), &GraphPattern::Any).len(), 2);
        // everything
        assert_eq!(store.match_quads(None, None, None, &GraphPattern::Any).len(), 3);
    }

    #[test]
    fn any_named_excludes_default_graph() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        store.insert(&Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o2"),
            GraphName::named(iri("http://e/g")),
        ));
        let named = store.match_quads(None, None, None, &GraphPattern::AnyNamed);
        assert_eq!(named.len(), 1);
        assert_eq!(named[0].graph, GraphName::named(iri("http://e/g")));
    }

    #[test]
    fn unknown_bound_term_matches_nothing() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        let unknown = Term::iri("http://e/zzz");
        assert!(store.match_quads(Some(&unknown), None, None, &GraphPattern::Any).is_empty());
    }

    #[test]
    fn named_graphs_enumerates_each_once() {
        let store = QuadStore::new();
        let g1 = GraphName::named(iri("http://e/g1"));
        let g2 = GraphName::named(iri("http://e/g2"));
        store.insert(&Quad::new(iri("http://e/a"), iri("http://e/p"), iri("http://e/b"), g1.clone()));
        store.insert(&Quad::new(iri("http://e/c"), iri("http://e/p"), iri("http://e/d"), g1.clone()));
        store.insert(&Quad::new(iri("http://e/a"), iri("http://e/p"), iri("http://e/b"), g2));
        store.insert(&quad("http://e/x", "http://e/p", "http://e/y"));
        let mut names: Vec<String> = store.named_graphs().iter().map(|i| i.as_str().to_owned()).collect();
        names.sort();
        assert_eq!(names, vec!["http://e/g1", "http://e/g2"]);
    }

    #[test]
    fn clear_graph_only_touches_that_graph() {
        let store = QuadStore::new();
        let g1 = GraphName::named(iri("http://e/g1"));
        store.insert(&Quad::new(iri("http://e/a"), iri("http://e/p"), iri("http://e/b"), g1.clone()));
        store.insert(&quad("http://e/x", "http://e/p", "http://e/y"));
        assert_eq!(store.clear_graph(&g1), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.graph_len(&g1), 0);
    }

    #[test]
    fn literals_and_iris_do_not_collide() {
        let store = QuadStore::new();
        store.insert(&Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            Literal::string("http://e/o"),
            GraphName::Default,
        ));
        let as_iri = Term::iri("http://e/o");
        assert!(store.match_quads(None, None, Some(&as_iri), &GraphPattern::Any).is_empty());
        let as_lit = Term::Literal(Literal::string("http://e/o"));
        assert_eq!(store.match_quads(None, None, Some(&as_lit), &GraphPattern::Any).len(), 1);
    }

    #[test]
    fn clone_is_deep() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        let copy = store.clone();
        copy.insert(&quad("http://e/s2", "http://e/p", "http://e/o"));
        assert_eq!(store.len(), 1);
        assert_eq!(copy.len(), 2);
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o1"));
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o2"));
        let objs = store.objects(&Term::iri("http://e/s"), &iri("http://e/p"), &GraphPattern::Any);
        assert_eq!(objs.len(), 2);
        let subs = store.subjects(&iri("http://e/p"), &Term::iri("http://e/o1"), &GraphPattern::Any);
        assert_eq!(subs, vec![Term::iri("http://e/s")]);
    }
}
