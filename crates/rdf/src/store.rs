//! The in-memory named-graph quad store.
//!
//! This is the triplestore substrate the paper assumes (§2: "a triplestore
//! with a SPARQL endpoint supporting the RDFS entailment regime"). Quads are
//! interned to `u32` ids and kept in six `BTreeSet` permutation indexes so
//! that any triple/quad pattern with any combination of bound positions is
//! answered by a single range scan:
//!
//! | bound prefix        | index  |
//! |---------------------|--------|
//! | g, g+s, g+s+p, all  | `GSPO` |
//! | g+p, g+p+o          | `GPOS` |
//! | g+o, g+o+s          | `GOSP` |
//! | s, s+p, s+p+o       | `SPOG` |
//! | p, p+o              | `POSG` |
//! | o, o+s              | `OSPG` |
//!
//! The store is internally synchronized with a single `parking_lot::RwLock`
//! (interner and indexes are always accessed together, so one lock beats
//! many). All public methods take `&self`.
//!
//! # Id-space access
//!
//! [`QuadStore::reader`] pins the read lock once and exposes the encoded
//! view: terms resolve to [`TermId`]s, scans yield `[u32; 4]` keys, and
//! nothing is decoded until the caller asks. The SPARQL evaluator runs whole
//! queries against one reader — encode once, match in id space, decode only
//! the projected bindings. `match_quads` and the `objects`/`subjects`
//! helpers are thin decoded views over the same primitive.

use crate::interner::{Interner, TermId};
use crate::model::{GraphName, Iri, Quad, Term, Triple};
use parking_lot::RwLock;
use std::collections::BTreeSet;

/// Encoded graph component: `0` is the default graph, otherwise
/// `TermId + 1` of the graph IRI.
pub type GraphCode = u32;

const DEFAULT_GRAPH: GraphCode = 0;

/// One quad in id space, in a particular component order.
type Key = [u32; 4];

/// A pattern over the graph position of a quad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphPattern {
    /// Match quads in any graph (default and named).
    Any,
    /// Match only the default graph.
    Default,
    /// Match only the given named graph.
    Named(Iri),
    /// Match any *named* graph (the `GRAPH ?g { ... }` SPARQL construct).
    AnyNamed,
}

impl From<GraphName> for GraphPattern {
    fn from(value: GraphName) -> Self {
        match value {
            GraphName::Default => GraphPattern::Default,
            GraphName::Named(iri) => GraphPattern::Named(iri),
        }
    }
}

impl From<&GraphName> for GraphPattern {
    fn from(value: &GraphName) -> Self {
        GraphPattern::from(value.clone())
    }
}

/// The graph position of an id-space pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdGraph {
    /// Any graph, default included.
    #[default]
    Any,
    /// Any *named* graph.
    AnyNamed,
    /// Exactly this graph code (`0` = default graph).
    Code(GraphCode),
}

/// A quad pattern in id space; `None` positions are wildcards. Bound
/// positions hold raw interner ids — a term that was never interned has no
/// id and therefore cannot be expressed (it matches nothing anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdPattern {
    pub s: Option<u32>,
    pub p: Option<u32>,
    pub o: Option<u32>,
    pub g: IdGraph,
}

#[derive(Debug, Default)]
struct Inner {
    interner: Interner,
    gspo: BTreeSet<Key>,
    gpos: BTreeSet<Key>,
    gosp: BTreeSet<Key>,
    spog: BTreeSet<Key>,
    posg: BTreeSet<Key>,
    ospg: BTreeSet<Key>,
}

/// An in-memory, indexed, thread-safe RDF quad store.
#[derive(Debug, Default)]
pub struct QuadStore {
    inner: RwLock<Inner>,
    /// Monotonic count of successful mutations (inserts, removes, graph
    /// clears) — a change stamp for caches layered above the store, which
    /// quad *count* alone cannot provide (a remove+insert pair is
    /// count-neutral but invalidates derived state).
    mutations: std::sync::atomic::AtomicU64,
}

impl Inner {
    fn graph_code(&mut self, graph: &GraphName) -> GraphCode {
        match graph {
            GraphName::Default => DEFAULT_GRAPH,
            GraphName::Named(iri) => self.interner.intern_iri(iri).raw() + 1,
        }
    }

    fn graph_code_existing(&self, graph: &GraphName) -> Option<GraphCode> {
        match graph {
            GraphName::Default => Some(DEFAULT_GRAPH),
            GraphName::Named(iri) => self.interner.get_iri(iri).map(|id| id.raw() + 1),
        }
    }

    fn decode_graph(&self, code: GraphCode) -> GraphName {
        if code == DEFAULT_GRAPH {
            GraphName::Default
        } else {
            match self.interner.resolve(TermId::from_raw(code - 1)) {
                Term::Iri(iri) => GraphName::Named(iri.clone()),
                other => unreachable!("graph code resolved to non-IRI term {other}"),
            }
        }
    }

    fn encode_quad(&mut self, quad: &Quad) -> Key {
        let g = self.graph_code(&quad.graph);
        let s = self.interner.intern(&quad.subject).raw();
        let p = self.interner.intern_iri(&quad.predicate).raw();
        let o = self.interner.intern(&quad.object).raw();
        [g, s, p, o]
    }

    fn encode_quad_existing(&self, quad: &Quad) -> Option<Key> {
        Some([
            self.graph_code_existing(&quad.graph)?,
            self.interner.get(&quad.subject)?.raw(),
            self.interner.get_iri(&quad.predicate)?.raw(),
            self.interner.get(&quad.object)?.raw(),
        ])
    }

    fn insert_ids(&mut self, g: u32, s: u32, p: u32, o: u32) -> bool {
        let fresh = self.gspo.insert([g, s, p, o]);
        if fresh {
            self.gpos.insert([g, p, o, s]);
            self.gosp.insert([g, o, s, p]);
            self.spog.insert([s, p, o, g]);
            self.posg.insert([p, o, s, g]);
            self.ospg.insert([o, s, p, g]);
        }
        fresh
    }

    fn remove_ids(&mut self, g: u32, s: u32, p: u32, o: u32) -> bool {
        let was = self.gspo.remove(&[g, s, p, o]);
        if was {
            self.gpos.remove(&[g, p, o, s]);
            self.gosp.remove(&[g, o, s, p]);
            self.spog.remove(&[s, p, o, g]);
            self.posg.remove(&[p, o, s, g]);
            self.ospg.remove(&[o, s, p, g]);
        }
        was
    }

    fn decode(&self, g: u32, s: u32, p: u32, o: u32) -> Quad {
        let subject = self.interner.resolve(TermId::from_raw(s)).clone();
        let predicate = match self.interner.resolve(TermId::from_raw(p)) {
            Term::Iri(iri) => iri.clone(),
            other => unreachable!("predicate resolved to non-IRI term {other}"),
        };
        let object = self.interner.resolve(TermId::from_raw(o)).clone();
        Quad {
            subject,
            predicate,
            object,
            graph: self.decode_graph(g),
        }
    }

    /// The single match primitive: invokes `f` with each matching key in
    /// `[g, s, p, o]` order, picking the index whose prefix covers the bound
    /// positions so every shape is one contiguous range scan.
    fn for_each_match(&self, pattern: IdPattern, mut f: impl FnMut(Key)) {
        let IdPattern { s, p, o, g } = pattern;
        let (g, named_only) = match g {
            IdGraph::Any => (None, false),
            IdGraph::AnyNamed => (None, true),
            IdGraph::Code(code) => (Some(code), false),
        };
        let mut push = |g: u32, s: u32, p: u32, o: u32| {
            if named_only && g == DEFAULT_GRAPH {
                return;
            }
            f([g, s, p, o]);
        };
        match (g, s, p, o) {
            (Some(g), Some(s), Some(p), Some(o)) => {
                if self.gspo.contains(&[g, s, p, o]) {
                    push(g, s, p, o);
                }
            }
            (Some(g), Some(s), Some(p), None) => {
                scan_prefix(&self.gspo, &[g, s, p], |[g, s, p, o]| push(g, s, p, o))
            }
            (Some(g), Some(s), None, None) => {
                scan_prefix(&self.gspo, &[g, s], |[g, s, p, o]| push(g, s, p, o))
            }
            (Some(g), Some(s), None, Some(o)) => {
                scan_prefix(&self.gosp, &[g, o, s], |[g, o, s, p]| push(g, s, p, o))
            }
            (Some(g), None, Some(p), Some(o)) => {
                scan_prefix(&self.gpos, &[g, p, o], |[g, p, o, s]| push(g, s, p, o))
            }
            (Some(g), None, Some(p), None) => {
                scan_prefix(&self.gpos, &[g, p], |[g, p, o, s]| push(g, s, p, o))
            }
            (Some(g), None, None, Some(o)) => {
                scan_prefix(&self.gosp, &[g, o], |[g, o, s, p]| push(g, s, p, o))
            }
            (Some(g), None, None, None) => {
                scan_prefix(&self.gspo, &[g], |[g, s, p, o]| push(g, s, p, o))
            }
            (None, Some(s), Some(p), Some(o)) => {
                scan_prefix(&self.spog, &[s, p, o], |[s, p, o, g]| push(g, s, p, o))
            }
            (None, Some(s), Some(p), None) => {
                scan_prefix(&self.spog, &[s, p], |[s, p, o, g]| push(g, s, p, o))
            }
            (None, Some(s), None, None) => {
                scan_prefix(&self.spog, &[s], |[s, p, o, g]| push(g, s, p, o))
            }
            (None, Some(s), None, Some(o)) => {
                scan_prefix(&self.ospg, &[o, s], |[o, s, p, g]| push(g, s, p, o))
            }
            (None, None, Some(p), Some(o)) => {
                scan_prefix(&self.posg, &[p, o], |[p, o, s, g]| push(g, s, p, o))
            }
            (None, None, Some(p), None) => {
                scan_prefix(&self.posg, &[p], |[p, o, s, g]| push(g, s, p, o))
            }
            (None, None, None, Some(o)) => {
                scan_prefix(&self.ospg, &[o], |[o, s, p, g]| push(g, s, p, o))
            }
            (None, None, None, None) => {
                scan_prefix(&self.spog, &[], |[s, p, o, g]| push(g, s, p, o))
            }
        }
    }
}

/// Scans `index` for keys starting with the bound `prefix`, invoking `f` with
/// each full key.
fn scan_prefix(index: &BTreeSet<Key>, prefix: &[u32], mut f: impl FnMut(Key)) {
    let mut lo = [0u32; 4];
    let mut hi = [u32::MAX; 4];
    lo[..prefix.len()].copy_from_slice(prefix);
    hi[..prefix.len()].copy_from_slice(prefix);
    for &key in index.range(lo..=hi) {
        f(key);
    }
}

/// A pinned read view of the store: one lock acquisition, id-space access.
///
/// Holding a reader blocks writers — scope it to one query.
pub struct StoreReader<'a> {
    inner: parking_lot::RwLockReadGuard<'a, Inner>,
}

impl StoreReader<'_> {
    /// The id of an interned term, if it occurs in the store's vocabulary.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.inner.interner.get(term)
    }

    /// The id of `Term::Iri(iri)` without building the wrapper.
    pub fn iri_id(&self, iri: &Iri) -> Option<TermId> {
        self.inner.interner.get_iri(iri)
    }

    /// The graph code of a graph name (`0` = default graph).
    pub fn graph_code(&self, graph: &GraphName) -> Option<GraphCode> {
        self.inner.graph_code_existing(graph)
    }

    /// Decodes a term id.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.inner.interner.resolve(id)
    }

    /// Decodes a graph code.
    pub fn resolve_graph(&self, code: GraphCode) -> GraphName {
        self.inner.decode_graph(code)
    }

    /// Number of distinct interned terms; also the exclusive upper bound of
    /// the store's id space (ids are dense from 0).
    pub fn term_count(&self) -> usize {
        self.inner.interner.len()
    }

    /// Runs `f` over every key matching the pattern, in `[g, s, p, o]` order.
    pub fn for_each_match(&self, pattern: IdPattern, f: impl FnMut([u32; 4])) {
        self.inner.for_each_match(pattern, f)
    }

    /// Number of keys matching the pattern (no decode).
    pub fn match_count(&self, pattern: IdPattern) -> usize {
        let mut n = 0;
        self.inner.for_each_match(pattern, |_| n += 1);
        n
    }

    /// Decodes one matched key back to a quad.
    pub fn decode(&self, key: [u32; 4]) -> Quad {
        self.inner.decode(key[0], key[1], key[2], key[3])
    }
}

impl QuadStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the read lock and returns the id-space view.
    pub fn reader(&self) -> StoreReader<'_> {
        StoreReader {
            inner: self.inner.read(),
        }
    }

    /// Inserts a quad; returns `true` if it was not already present.
    pub fn insert(&self, quad: &Quad) -> bool {
        let mut inner = self.inner.write();
        let [g, s, p, o] = inner.encode_quad(quad);
        let added = inner.insert_ids(g, s, p, o);
        if added {
            self.bump_mutations(1);
        }
        added
    }

    /// Monotonic mutation stamp: advances on every successful insert,
    /// remove or graph clear. Equal stamps ⇒ identical contents (the
    /// converse need not hold), so caches over the store can use it as a
    /// cheap validity check.
    pub fn mutation_count(&self) -> u64 {
        self.mutations.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump_mutations(&self, by: u64) {
        // Called while holding the write lock, so Release/Acquire pairs
        // with readers sampling the stamp.
        self.mutations
            .fetch_add(by, std::sync::atomic::Ordering::Release);
    }

    /// Overwrites the mutation stamp — recovery only. A freshly booted
    /// store restarts counting at 0, so a cache stamp taken before a
    /// restart could collide with a different post-restart state; restoring
    /// the persisted count before replay keeps the stamp's "equal ⇒
    /// identical contents" guarantee across process lifetimes.
    pub fn restore_mutation_count(&self, count: u64) {
        self.mutations
            .store(count, std::sync::atomic::Ordering::Release);
    }

    /// Inserts a triple into the given graph.
    pub fn insert_in(
        &self,
        graph: &GraphName,
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> bool {
        self.insert(&Quad::new(subject, predicate, object, graph.clone()))
    }

    /// Inserts a triple into the default graph.
    pub fn insert_triple(&self, triple: &Triple) -> bool {
        self.insert(&Quad {
            subject: triple.subject.clone(),
            predicate: triple.predicate.clone(),
            object: triple.object.clone(),
            graph: GraphName::Default,
        })
    }

    /// Inserts every quad of an iterator under **one** write-lock
    /// acquisition, returning how many were new.
    ///
    /// When the store is empty (bulk load), keys are encoded first and each
    /// of the six permutation indexes is built from a sorted key vector,
    /// which is substantially faster than six B-tree inserts per quad.
    pub fn extend<I: IntoIterator<Item = Quad>>(&self, quads: I) -> usize {
        let mut inner = self.inner.write();
        if inner.gspo.is_empty() {
            // Bulk path: encode everything, then build each index from a
            // sorted run (BTreeSet bulk-builds efficiently from ordered
            // input).
            let mut keys: Vec<Key> = Vec::new();
            for quad in quads {
                keys.push(inner.encode_quad(&quad));
            }
            keys.sort_unstable();
            keys.dedup();
            let added = keys.len();
            let inner = &mut *inner;
            inner.gspo = keys.iter().copied().collect();
            type Rebuild<'a> = (&'a mut BTreeSet<Key>, fn(Key) -> Key);
            let rebuilds: [Rebuild<'_>; 5] = [
                (&mut inner.gpos, |[g, s, p, o]| [g, p, o, s]),
                (&mut inner.gosp, |[g, s, p, o]| [g, o, s, p]),
                (&mut inner.spog, |[g, s, p, o]| [s, p, o, g]),
                (&mut inner.posg, |[g, s, p, o]| [p, o, s, g]),
                (&mut inner.ospg, |[g, s, p, o]| [o, s, p, g]),
            ];
            for (dest, perm) in rebuilds {
                let mut permuted: Vec<Key> = keys.iter().map(|&k| perm(k)).collect();
                permuted.sort_unstable();
                *dest = permuted.into_iter().collect();
            }
            self.bump_mutations(added as u64);
            added
        } else {
            let mut added = 0;
            for quad in quads {
                let [g, s, p, o] = inner.encode_quad(&quad);
                if inner.insert_ids(g, s, p, o) {
                    added += 1;
                }
            }
            self.bump_mutations(added as u64);
            added
        }
    }

    /// Removes a quad; returns `true` if it was present.
    pub fn remove(&self, quad: &Quad) -> bool {
        let mut inner = self.inner.write();
        let Some([g, s, p, o]) = inner.encode_quad_existing(quad) else {
            return false;
        };
        let removed = inner.remove_ids(g, s, p, o);
        if removed {
            self.bump_mutations(1);
        }
        removed
    }

    /// True when the exact quad is present.
    pub fn contains(&self, quad: &Quad) -> bool {
        let inner = self.inner.read();
        match inner.encode_quad_existing(quad) {
            Some(key) => inner.gspo.contains(&key),
            None => false,
        }
    }

    /// Total number of quads, across all graphs.
    pub fn len(&self) -> usize {
        self.inner.read().gspo.len()
    }

    /// True when the store holds no quads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of quads in one graph.
    pub fn graph_len(&self, graph: &GraphName) -> usize {
        let inner = self.inner.read();
        let Some(g) = inner.graph_code_existing(graph) else {
            return 0;
        };
        let mut n = 0;
        scan_prefix(&inner.gspo, &[g], |_| n += 1);
        n
    }

    /// All named graphs that currently hold at least one quad.
    pub fn named_graphs(&self) -> Vec<Iri> {
        let inner = self.inner.read();
        let mut graphs = Vec::new();
        let mut cursor = 1u32; // skip the default graph
        loop {
            let lo = [cursor, 0, 0, 0];
            match inner.gspo.range(lo..).next() {
                Some(&[g, _, _, _]) if g >= cursor => {
                    if let GraphName::Named(iri) = inner.decode_graph(g) {
                        graphs.push(iri);
                    }
                    if g == u32::MAX {
                        break;
                    }
                    cursor = g + 1;
                }
                _ => break,
            }
        }
        graphs
    }

    /// Encodes a term-space pattern to id space; `None` when a bound term
    /// was never interned (in which case nothing can match).
    fn encode_pattern(
        inner: &Inner,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
        graph: &GraphPattern,
    ) -> Option<IdPattern> {
        let s = match subject {
            Some(t) => Some(inner.interner.get(t)?.raw()),
            None => None,
        };
        let p = match predicate {
            Some(iri) => Some(inner.interner.get_iri(iri)?.raw()),
            None => None,
        };
        let o = match object {
            Some(t) => Some(inner.interner.get(t)?.raw()),
            None => None,
        };
        Self::encode_graph_only(
            inner,
            IdPattern {
                s,
                p,
                o,
                g: IdGraph::Any,
            },
            graph,
        )
    }

    /// Matches quads against a pattern; `None` positions are wildcards.
    ///
    /// This is the decoded view over the store's single query primitive; the
    /// SPARQL evaluator uses the id-space form ([`QuadStore::reader`])
    /// directly and never materializes `Quad`s for intermediate results.
    pub fn match_quads(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
        graph: &GraphPattern,
    ) -> Vec<Quad> {
        let inner = self.inner.read();
        let Some(pattern) = Self::encode_pattern(&inner, subject, predicate, object, graph) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        inner.for_each_match(pattern, |[g, s, p, o]| {
            out.push(inner.decode(g, s, p, o));
        });
        out
    }

    /// All quads in the store.
    pub fn iter_all(&self) -> Vec<Quad> {
        self.match_quads(None, None, None, &GraphPattern::Any)
    }

    /// All quads of one graph.
    pub fn graph_quads(&self, graph: &GraphName) -> Vec<Quad> {
        self.match_quads(None, None, None, &GraphPattern::from(graph))
    }

    /// Convenience: the objects of `(subject, predicate, ?o)` in a graph.
    /// Decodes only the object column.
    pub fn objects(&self, subject: &Term, predicate: &Iri, graph: &GraphPattern) -> Vec<Term> {
        let inner = self.inner.read();
        let Some(pattern) =
            Self::encode_pattern(&inner, Some(subject), Some(predicate), None, graph)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        inner.for_each_match(pattern, |[_, _, _, o]| {
            out.push(inner.interner.resolve(TermId::from_raw(o)).clone());
        });
        out
    }

    /// Convenience: the subjects of `(?s, predicate, object)` in a graph.
    /// Decodes only the subject column.
    pub fn subjects(&self, predicate: &Iri, object: &Term, graph: &GraphPattern) -> Vec<Term> {
        let inner = self.inner.read();
        let Some(pattern) =
            Self::encode_pattern(&inner, None, Some(predicate), Some(object), graph)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        inner.for_each_match(pattern, |[_, s, _, _]| {
            out.push(inner.interner.resolve(TermId::from_raw(s)).clone());
        });
        out
    }

    /// Like [`QuadStore::objects`] but for IRI subjects and IRI objects:
    /// skips non-IRI hits and never materializes a `Term` wrapper for the
    /// lookup. The fast path for the ontology layer's `G`/`S`/`M` walks.
    pub fn iri_objects(&self, subject: &Iri, predicate: &Iri, graph: &GraphPattern) -> Vec<Iri> {
        let inner = self.inner.read();
        let (Some(s), Some(p)) = (
            inner.interner.get_iri(subject),
            inner.interner.get_iri(predicate),
        ) else {
            return Vec::new();
        };
        let Some(pattern) = Self::encode_graph_only(
            &inner,
            IdPattern {
                s: Some(s.raw()),
                p: Some(p.raw()),
                o: None,
                g: IdGraph::Any,
            },
            graph,
        ) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        inner.for_each_match(pattern, |[_, _, _, o]| {
            if let Term::Iri(iri) = inner.interner.resolve(TermId::from_raw(o)) {
                out.push(iri.clone());
            }
        });
        out
    }

    /// Like [`QuadStore::subjects`] but for IRI objects and IRI subjects —
    /// see [`QuadStore::iri_objects`].
    pub fn iri_subjects(&self, predicate: &Iri, object: &Iri, graph: &GraphPattern) -> Vec<Iri> {
        let inner = self.inner.read();
        let (Some(p), Some(o)) = (
            inner.interner.get_iri(predicate),
            inner.interner.get_iri(object),
        ) else {
            return Vec::new();
        };
        let Some(pattern) = Self::encode_graph_only(
            &inner,
            IdPattern {
                s: None,
                p: Some(p.raw()),
                o: Some(o.raw()),
                g: IdGraph::Any,
            },
            graph,
        ) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        inner.for_each_match(pattern, |[_, s, _, _]| {
            if let Term::Iri(iri) = inner.interner.resolve(TermId::from_raw(s)) {
                out.push(iri.clone());
            }
        });
        out
    }

    /// Fills in the graph position of an otherwise-encoded pattern.
    fn encode_graph_only(
        inner: &Inner,
        mut pattern: IdPattern,
        graph: &GraphPattern,
    ) -> Option<IdPattern> {
        pattern.g = match graph {
            GraphPattern::Any => IdGraph::Any,
            GraphPattern::AnyNamed => IdGraph::AnyNamed,
            GraphPattern::Default => IdGraph::Code(DEFAULT_GRAPH),
            GraphPattern::Named(iri) => {
                IdGraph::Code(inner.interner.get_iri(iri).map(|id| id.raw() + 1)?)
            }
        };
        Some(pattern)
    }

    /// Removes every quad of a named graph, returning how many were removed.
    pub fn clear_graph(&self, graph: &GraphName) -> usize {
        let mut inner = self.inner.write();
        let Some(g) = inner.graph_code_existing(graph) else {
            return 0;
        };
        let mut keys = Vec::new();
        scan_prefix(&inner.gspo, &[g], |key| keys.push(key));
        for &[g, s, p, o] in &keys {
            inner.remove_ids(g, s, p, o);
        }
        self.bump_mutations(keys.len() as u64);
        keys.len()
    }

    /// Number of distinct interned terms (diagnostics / bench reporting).
    pub fn term_count(&self) -> usize {
        self.inner.read().interner.len()
    }
}

impl Clone for QuadStore {
    /// Deep copy: clones all quads into a fresh store. Used to snapshot the
    /// ontology before speculative updates (e.g. in tests and the evolution
    /// harness).
    fn clone(&self) -> Self {
        let store = QuadStore::new();
        store.extend(self.iter_all());
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(s)
    }

    fn quad(s: &str, p: &str, o: &str) -> Quad {
        Quad::new(iri(s), iri(p), iri(o), GraphName::Default)
    }

    #[test]
    fn insert_is_idempotent() {
        let store = QuadStore::new();
        let q = quad("http://e/s", "http://e/p", "http://e/o");
        assert!(store.insert(&q));
        assert!(!store.insert(&q));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn remove_round_trips() {
        let store = QuadStore::new();
        let q = quad("http://e/s", "http://e/p", "http://e/o");
        store.insert(&q);
        assert!(store.remove(&q));
        assert!(!store.remove(&q));
        assert!(store.is_empty());
    }

    #[test]
    fn contains_distinguishes_graphs() {
        let store = QuadStore::new();
        let named = Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o"),
            GraphName::named(iri("http://e/g")),
        );
        store.insert(&named);
        assert!(store.contains(&named));
        assert!(!store.contains(&quad("http://e/s", "http://e/p", "http://e/o")));
    }

    #[test]
    fn match_all_sixteen_binding_combinations() {
        let store = QuadStore::new();
        let g = GraphName::named(iri("http://e/g"));
        store.insert(&Quad::new(
            iri("http://e/s1"),
            iri("http://e/p1"),
            iri("http://e/o1"),
            g.clone(),
        ));
        store.insert(&Quad::new(
            iri("http://e/s1"),
            iri("http://e/p2"),
            iri("http://e/o2"),
            g.clone(),
        ));
        store.insert(&Quad::new(
            iri("http://e/s2"),
            iri("http://e/p1"),
            iri("http://e/o1"),
            GraphName::Default,
        ));

        let s1 = Term::iri("http://e/s1");
        let p1 = iri("http://e/p1");
        let o1 = Term::iri("http://e/o1");
        let gp = GraphPattern::Named(iri("http://e/g"));

        // fully bound
        assert_eq!(
            store
                .match_quads(Some(&s1), Some(&p1), Some(&o1), &gp)
                .len(),
            1
        );
        // g+s+p
        assert_eq!(store.match_quads(Some(&s1), Some(&p1), None, &gp).len(), 1);
        // g+s
        assert_eq!(store.match_quads(Some(&s1), None, None, &gp).len(), 2);
        // g+s+o
        assert_eq!(store.match_quads(Some(&s1), None, Some(&o1), &gp).len(), 1);
        // g+p+o
        assert_eq!(store.match_quads(None, Some(&p1), Some(&o1), &gp).len(), 1);
        // g+p
        assert_eq!(store.match_quads(None, Some(&p1), None, &gp).len(), 1);
        // g+o
        assert_eq!(store.match_quads(None, None, Some(&o1), &gp).len(), 1);
        // g only
        assert_eq!(store.match_quads(None, None, None, &gp).len(), 2);
        // s+p+o across graphs
        assert_eq!(
            store
                .match_quads(Some(&s1), Some(&p1), Some(&o1), &GraphPattern::Any)
                .len(),
            1
        );
        // s+p
        assert_eq!(
            store
                .match_quads(Some(&s1), Some(&p1), None, &GraphPattern::Any)
                .len(),
            1
        );
        // s
        assert_eq!(
            store
                .match_quads(Some(&s1), None, None, &GraphPattern::Any)
                .len(),
            2
        );
        // s+o
        assert_eq!(
            store
                .match_quads(Some(&s1), None, Some(&o1), &GraphPattern::Any)
                .len(),
            1
        );
        // p+o
        assert_eq!(
            store
                .match_quads(None, Some(&p1), Some(&o1), &GraphPattern::Any)
                .len(),
            2
        );
        // p
        assert_eq!(
            store
                .match_quads(None, Some(&p1), None, &GraphPattern::Any)
                .len(),
            2
        );
        // o
        assert_eq!(
            store
                .match_quads(None, None, Some(&o1), &GraphPattern::Any)
                .len(),
            2
        );
        // everything
        assert_eq!(
            store
                .match_quads(None, None, None, &GraphPattern::Any)
                .len(),
            3
        );
    }

    #[test]
    fn any_named_excludes_default_graph() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        store.insert(&Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o2"),
            GraphName::named(iri("http://e/g")),
        ));
        let named = store.match_quads(None, None, None, &GraphPattern::AnyNamed);
        assert_eq!(named.len(), 1);
        assert_eq!(named[0].graph, GraphName::named(iri("http://e/g")));
    }

    #[test]
    fn unknown_bound_term_matches_nothing() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        let unknown = Term::iri("http://e/zzz");
        assert!(store
            .match_quads(Some(&unknown), None, None, &GraphPattern::Any)
            .is_empty());
    }

    #[test]
    fn named_graphs_enumerates_each_once() {
        let store = QuadStore::new();
        let g1 = GraphName::named(iri("http://e/g1"));
        let g2 = GraphName::named(iri("http://e/g2"));
        store.insert(&Quad::new(
            iri("http://e/a"),
            iri("http://e/p"),
            iri("http://e/b"),
            g1.clone(),
        ));
        store.insert(&Quad::new(
            iri("http://e/c"),
            iri("http://e/p"),
            iri("http://e/d"),
            g1.clone(),
        ));
        store.insert(&Quad::new(
            iri("http://e/a"),
            iri("http://e/p"),
            iri("http://e/b"),
            g2,
        ));
        store.insert(&quad("http://e/x", "http://e/p", "http://e/y"));
        let mut names: Vec<String> = store
            .named_graphs()
            .iter()
            .map(|i| i.as_str().to_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["http://e/g1", "http://e/g2"]);
    }

    #[test]
    fn clear_graph_only_touches_that_graph() {
        let store = QuadStore::new();
        let g1 = GraphName::named(iri("http://e/g1"));
        store.insert(&Quad::new(
            iri("http://e/a"),
            iri("http://e/p"),
            iri("http://e/b"),
            g1.clone(),
        ));
        store.insert(&quad("http://e/x", "http://e/p", "http://e/y"));
        assert_eq!(store.clear_graph(&g1), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.graph_len(&g1), 0);
    }

    #[test]
    fn literals_and_iris_do_not_collide() {
        let store = QuadStore::new();
        store.insert(&Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            Literal::string("http://e/o"),
            GraphName::Default,
        ));
        let as_iri = Term::iri("http://e/o");
        assert!(store
            .match_quads(None, None, Some(&as_iri), &GraphPattern::Any)
            .is_empty());
        let as_lit = Term::Literal(Literal::string("http://e/o"));
        assert_eq!(
            store
                .match_quads(None, None, Some(&as_lit), &GraphPattern::Any)
                .len(),
            1
        );
    }

    #[test]
    fn clone_is_deep() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o"));
        let copy = store.clone();
        copy.insert(&quad("http://e/s2", "http://e/p", "http://e/o"));
        assert_eq!(store.len(), 1);
        assert_eq!(copy.len(), 2);
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o1"));
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o2"));
        let objs = store.objects(
            &Term::iri("http://e/s"),
            &iri("http://e/p"),
            &GraphPattern::Any,
        );
        assert_eq!(objs.len(), 2);
        let subs = store.subjects(
            &iri("http://e/p"),
            &Term::iri("http://e/o1"),
            &GraphPattern::Any,
        );
        assert_eq!(subs, vec![Term::iri("http://e/s")]);
    }

    #[test]
    fn bulk_extend_matches_incremental_inserts() {
        let quads: Vec<Quad> = (0..500)
            .map(|i| {
                Quad::new(
                    iri(&format!("http://e/s/{}", i % 50)),
                    iri(&format!("http://e/p/{}", i % 7)),
                    iri(&format!("http://e/o/{}", i % 31)),
                    if i % 3 == 0 {
                        GraphName::Default
                    } else {
                        GraphName::named(iri(&format!("http://e/g/{}", i % 4)))
                    },
                )
            })
            .collect();
        // Bulk (empty-store) path.
        let bulk = QuadStore::new();
        let added_bulk = bulk.extend(quads.iter().cloned());
        // Incremental path.
        let incr = QuadStore::new();
        let mut added_incr = 0;
        for q in &quads {
            if incr.insert(q) {
                added_incr += 1;
            }
        }
        assert_eq!(added_bulk, added_incr);
        assert_eq!(bulk.len(), incr.len());
        let mut a = bulk.iter_all();
        let mut b = incr.iter_all();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Every index permutation answers consistently after bulk build.
        for q in &quads {
            assert!(bulk.contains(q));
            assert!(!bulk
                .match_quads(
                    Some(&q.subject),
                    Some(&q.predicate),
                    None,
                    &GraphPattern::from(&q.graph)
                )
                .is_empty());
            assert!(!bulk
                .match_quads(
                    None,
                    Some(&q.predicate),
                    Some(&q.object),
                    &GraphPattern::Any
                )
                .is_empty());
            assert!(!bulk
                .match_quads(Some(&q.subject), None, Some(&q.object), &GraphPattern::Any)
                .is_empty());
        }
    }

    #[test]
    fn extend_on_nonempty_store_still_counts_fresh_quads() {
        let store = QuadStore::new();
        store.insert(&quad("http://e/a", "http://e/p", "http://e/b"));
        let added = store.extend(vec![
            quad("http://e/a", "http://e/p", "http://e/b"), // duplicate
            quad("http://e/c", "http://e/p", "http://e/d"),
        ]);
        assert_eq!(added, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn reader_exposes_consistent_id_space() {
        let store = QuadStore::new();
        let g = GraphName::named(iri("http://e/g"));
        store.insert(&Quad::new(
            iri("http://e/s"),
            iri("http://e/p"),
            iri("http://e/o"),
            g.clone(),
        ));
        store.insert(&quad("http://e/s", "http://e/p", "http://e/o2"));

        let reader = store.reader();
        let s = reader.term_id(&Term::iri("http://e/s")).unwrap();
        let p = reader.iri_id(&iri("http://e/p")).unwrap();
        assert_eq!(reader.resolve(s), &Term::iri("http://e/s"));

        // s+p across all graphs: both quads.
        let pattern = IdPattern {
            s: Some(s.raw()),
            p: Some(p.raw()),
            o: None,
            g: IdGraph::Any,
        };
        assert_eq!(reader.match_count(pattern), 2);

        // Named-graphs-only view excludes the default graph quad.
        let pattern = IdPattern {
            g: IdGraph::AnyNamed,
            ..pattern
        };
        let mut decoded = Vec::new();
        reader.for_each_match(pattern, |key| decoded.push(reader.decode(key)));
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].graph, g);
        assert_eq!(reader.resolve_graph(reader.graph_code(&g).unwrap()), g);
    }
}
