//! Turtle subset reader and writer.
//!
//! Supports the fragment of Turtle the paper's metamodels use (Codes 6–7):
//! `@prefix` directives, IRIs (angle-bracketed or prefixed names), blank
//! nodes, plain / language-tagged / typed literals, predicate lists (`;`),
//! object lists (`,`) and comments. No collections, no `[ ... ]` anonymous
//! blank-node property lists, no multiline strings — the vocabularies don't
//! need them, and the parser rejects them loudly rather than mis-reading.

use crate::model::{BlankNode, GraphName, Iri, Literal, Quad, Term, Triple};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a literal's lexical form for serialization.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_literal(s: &str) -> Result<String, TurtleError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(TurtleError::BadEscape(other)),
            None => return Err(TurtleError::UnexpectedEof("escape sequence")),
        }
    }
    Ok(out)
}

/// Errors produced while parsing Turtle.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TurtleError {
    #[error("unexpected end of input while parsing {0}")]
    UnexpectedEof(&'static str),
    #[error("unknown prefix: {0}")]
    UnknownPrefix(String),
    #[error("unexpected character {0:?} at offset {1}")]
    UnexpectedChar(char, usize),
    #[error("invalid escape sequence: \\{0}")]
    BadEscape(char),
    #[error("expected {expected} but found {found:?}")]
    Expected {
        expected: &'static str,
        found: String,
    },
    #[error("literal is not a valid subject")]
    LiteralSubject,
    #[error("invalid IRI: {0}")]
    BadIri(String),
}

/// A prefix table used by both the writer and the parser.
#[derive(Debug, Clone, Default)]
pub struct PrefixMap {
    prefixes: BTreeMap<String, String>,
}

impl PrefixMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// A prefix map preloaded with the vocabularies of the BDI ontology.
    pub fn with_common_vocabularies() -> Self {
        let mut map = Self::new();
        map.insert("rdf", crate::vocab::rdf::NS);
        map.insert("rdfs", crate::vocab::rdfs::NS);
        map.insert("owl", crate::vocab::owl::NS);
        map.insert("xsd", crate::vocab::xsd::NS);
        map.insert("voaf", crate::vocab::voaf::NS);
        map.insert("vann", crate::vocab::vann::NS);
        map.insert("sc", crate::vocab::sc::NS);
        map
    }

    /// Registers `prefix:` → namespace.
    pub fn insert(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.prefixes.insert(prefix.into(), namespace.into());
    }

    /// Expands a prefixed name `pfx:local`.
    pub fn expand(&self, prefixed: &str) -> Result<Iri, TurtleError> {
        let (pfx, local) = prefixed
            .split_once(':')
            .ok_or_else(|| TurtleError::UnknownPrefix(prefixed.to_owned()))?;
        let ns = self
            .prefixes
            .get(pfx)
            .ok_or_else(|| TurtleError::UnknownPrefix(pfx.to_owned()))?;
        Iri::try_new(&format!("{ns}{local}")).map_err(|e| TurtleError::BadIri(e.to_string()))
    }

    /// Compacts an IRI into `pfx:local` when a registered namespace prefixes
    /// it; otherwise returns the `<...>` form.
    pub fn compact(&self, iri: &Iri) -> String {
        let s = iri.as_str();
        for (pfx, ns) in &self.prefixes {
            if let Some(local) = s.strip_prefix(ns.as_str()) {
                if !local.is_empty()
                    && local
                        .chars()
                        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '/'))
                    && !local.contains('/')
                {
                    return format!("{pfx}:{local}");
                }
            }
        }
        format!("<{s}>")
    }

    /// Iterates registered `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }
}

/// Serializes triples as Turtle, grouping by subject and using `;` lists.
pub fn write_turtle<'a>(
    triples: impl IntoIterator<Item = &'a Triple>,
    prefixes: &PrefixMap,
) -> String {
    let mut by_subject: BTreeMap<String, Vec<&Triple>> = BTreeMap::new();
    let mut subject_terms: BTreeMap<String, &Term> = BTreeMap::new();
    for t in triples {
        let key = t.subject.to_string();
        by_subject.entry(key.clone()).or_default().push(t);
        subject_terms.entry(key).or_insert(&t.subject);
    }

    let mut out = String::new();
    for (pfx, ns) in prefixes.iter() {
        let _ = writeln!(out, "@prefix {pfx}: <{ns}> .");
    }
    if !by_subject.is_empty() {
        out.push('\n');
    }
    for (key, triples) in &by_subject {
        let subject = subject_terms[key];
        let _ = write!(out, "{}", render_term(subject, prefixes));
        let mut grouped: BTreeMap<String, Vec<&Triple>> = BTreeMap::new();
        for t in triples {
            grouped
                .entry(t.predicate.as_str().to_owned())
                .or_default()
                .push(t);
        }
        let n = grouped.len();
        for (i, (_, ts)) in grouped.iter().enumerate() {
            let pred = &ts[0].predicate;
            let _ = write!(out, " {} ", render_predicate(pred, prefixes));
            for (j, t) in ts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", render_term(&t.object, prefixes));
            }
            out.push_str(if i + 1 == n { " .\n" } else { " ;\n   " });
        }
    }
    out
}

fn render_predicate(pred: &Iri, prefixes: &PrefixMap) -> String {
    if pred.as_str() == crate::vocab::rdf::TYPE.as_str() {
        "a".to_owned()
    } else {
        prefixes.compact(pred)
    }
}

fn render_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => prefixes.compact(iri),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(lit) => {
            let mut s = format!("\"{}\"", escape_literal(lit.lexical()));
            if let Some(lang) = lit.lang() {
                let _ = write!(s, "@{lang}");
            } else if let Some(dt) = lit.datatype() {
                let _ = write!(s, "^^{}", prefixes.compact(dt));
            }
            s
        }
    }
}

/// Parses a Turtle document into triples, returning the triples and the
/// prefix map declared by the document.
pub fn parse_turtle(input: &str) -> Result<(Vec<Triple>, PrefixMap), TurtleError> {
    let mut parser = Parser::new(input);
    parser.parse_document()?;
    Ok((parser.triples, parser.prefixes))
}

/// Parses Turtle and loads the triples into `graph` of `store`.
pub fn load_turtle(
    store: &crate::store::QuadStore,
    graph: &GraphName,
    input: &str,
) -> Result<usize, TurtleError> {
    let (triples, _) = parse_turtle(input)?;
    Ok(store.extend(triples.into_iter().map(|t| Quad {
        subject: t.subject,
        predicate: t.predicate,
        object: t.object,
        graph: graph.clone(),
    })))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    prefixes: PrefixMap,
    triples: Vec<Triple>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            prefixes: PrefixMap::new(),
            triples: Vec::new(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect_char(&mut self, expected: char) -> Result<(), TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(TurtleError::UnexpectedChar(c, self.pos)),
            None => Err(TurtleError::UnexpectedEof("punctuation")),
        }
    }

    fn parse_document(&mut self) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            if self.rest().is_empty() {
                return Ok(());
            }
            if self.rest().starts_with("@prefix") {
                self.parse_prefix_directive()?;
            } else {
                self.parse_triple_block()?;
            }
        }
    }

    fn parse_prefix_directive(&mut self) -> Result<(), TurtleError> {
        self.pos += "@prefix".len();
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            self.bump();
        }
        let prefix = self.input[start..self.pos].to_owned();
        self.expect_char(':')?;
        self.skip_ws();
        let iri = self.parse_angle_iri()?;
        self.expect_char('.')?;
        self.prefixes.insert(prefix, iri.as_str().to_owned());
        Ok(())
    }

    fn parse_angle_iri(&mut self) -> Result<Iri, TurtleError> {
        self.expect_char('<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let iri = Iri::try_new(&self.input[start..self.pos])
                    .map_err(|e| TurtleError::BadIri(e.to_string()))?;
                self.bump();
                return Ok(iri);
            }
            self.bump();
        }
        Err(TurtleError::UnexpectedEof("IRI"))
    }

    fn parse_prefixed_name(&mut self) -> Result<Iri, TurtleError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/') {
                self.bump();
            } else {
                break;
            }
        }
        // A trailing '.' is statement punctuation, not part of the name.
        let mut name = &self.input[start..self.pos];
        while name.ends_with('.') {
            name = &name[..name.len() - 1];
            self.pos -= 1;
        }
        if name.is_empty() {
            return Err(TurtleError::Expected {
                expected: "prefixed name",
                found: self.rest().chars().take(10).collect(),
            });
        }
        self.prefixes.expand(name)
    }

    fn parse_term(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_angle_iri()?)),
            Some('"') => self.parse_literal(),
            Some('_') if self.rest().starts_with("_:") => {
                self.pos += 2;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Term::Blank(BlankNode::new(&self.input[start..self.pos])))
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // `a` keyword or prefixed name.
                if self.rest().starts_with('a')
                    && self
                        .rest()
                        .chars()
                        .nth(1)
                        .is_some_and(|c| c.is_whitespace())
                {
                    self.bump();
                    return Ok(Term::Iri((*crate::vocab::rdf::TYPE).clone()));
                }
                Ok(Term::Iri(self.parse_prefixed_name()?))
            }
            Some(c) => Err(TurtleError::UnexpectedChar(c, self.pos)),
            None => Err(TurtleError::UnexpectedEof("term")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term, TurtleError> {
        self.expect_char('"')?;
        let mut raw = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    raw.push('\\');
                    match self.bump() {
                        Some(c) => raw.push(c),
                        None => return Err(TurtleError::UnexpectedEof("literal escape")),
                    }
                }
                Some('"') => break,
                Some(c) => raw.push(c),
                None => return Err(TurtleError::UnexpectedEof("literal")),
            }
        }
        let lexical = unescape_literal(&raw)?;
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '-' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Term::Literal(Literal::lang_string(
                    lexical,
                    &self.input[start..self.pos],
                )))
            }
            Some('^') if self.rest().starts_with("^^") => {
                self.pos += 2;
                let dt = if self.peek() == Some('<') {
                    self.parse_angle_iri()?
                } else {
                    self.parse_prefixed_name()?
                };
                Ok(Term::Literal(Literal::typed(lexical, dt)))
            }
            _ => Ok(Term::Literal(Literal::string(lexical))),
        }
    }

    fn parse_triple_block(&mut self) -> Result<(), TurtleError> {
        let subject = self.parse_term()?;
        if subject.is_literal() {
            return Err(TurtleError::LiteralSubject);
        }
        loop {
            self.skip_ws();
            let predicate = match self.parse_term()? {
                Term::Iri(iri) => iri,
                other => {
                    return Err(TurtleError::Expected {
                        expected: "predicate IRI",
                        found: other.to_string(),
                    })
                }
            };
            loop {
                let object = self.parse_term()?;
                self.triples.push(Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                        continue;
                    }
                    _ => break,
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(';') => {
                    self.bump();
                    // Allow a dangling `;` before `.`
                    self.skip_ws();
                    if self.peek() == Some('.') {
                        self.bump();
                        return Ok(());
                    }
                    continue;
                }
                Some('.') => {
                    self.bump();
                    return Ok(());
                }
                Some(c) => return Err(TurtleError::UnexpectedChar(c, self.pos)),
                None => return Err(TurtleError::UnexpectedEof("statement terminator")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            ex:a ex:p ex:b .
            ex:a ex:q "lit" .
        "#;
        let (triples, prefixes) = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(
            prefixes.expand("ex:a").unwrap().as_str(),
            "http://example.org/a"
        );
    }

    #[test]
    fn parse_predicate_and_object_lists() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            ex:a ex:p ex:b , ex:c ;
                 ex:q ex:d .
        "#;
        let (triples, _) = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 3);
        assert!(triples
            .iter()
            .all(|t| t.subject == Term::iri("http://example.org/a")));
    }

    #[test]
    fn parse_a_keyword_and_typed_literals() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            ex:a a ex:Class ; ex:v "12"^^xsd:integer ; ex:l "hi"@en .
        "#;
        let (triples, _) = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 3);
        let type_triple = &triples[0];
        assert_eq!(
            type_triple.predicate.as_str(),
            crate::vocab::rdf::TYPE.as_str()
        );
        let int = triples[1].object.as_literal().unwrap();
        assert_eq!(int.as_integer(), Some(12));
        let lang = triples[2].object.as_literal().unwrap();
        assert_eq!(lang.lang(), Some("en"));
    }

    #[test]
    fn parse_paper_metamodel_snippet() {
        // Abbreviated Code 6 from the paper.
        let doc = r#"
            @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            @prefix G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> .
            G:Concept rdf:type rdfs:Class ;
                rdfs:isDefinedBy <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> .
            G:hasFeature rdf:type rdf:Property ;
                rdfs:domain G:Concept ;
                rdfs:range G:Feature .
        "#;
        let (triples, _) = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 5);
    }

    #[test]
    fn round_trip_write_then_parse() {
        let triples = vec![
            Triple::new(
                Iri::new("http://e/s"),
                Iri::new("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                Iri::new("http://e/C"),
            ),
            Triple::new(
                Iri::new("http://e/s"),
                Iri::new("http://e/p"),
                Literal::string("x \"y\""),
            ),
            Triple::new(
                Iri::new("http://e/s"),
                Iri::new("http://e/p"),
                Literal::integer(5),
            ),
        ];
        let mut prefixes = PrefixMap::with_common_vocabularies();
        prefixes.insert("e", "http://e/");
        let doc = write_turtle(&triples, &prefixes);
        let (parsed, _) = parse_turtle(&doc).unwrap();
        let mut a: Vec<String> = triples.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = parsed.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_turtle("zz:a zz:p zz:b .").unwrap_err();
        assert!(matches!(err, TurtleError::UnknownPrefix(_)));
    }

    #[test]
    fn blank_nodes_parse() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            _:b0 ex:p ex:a .
        "#;
        let (triples, _) = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].subject, Term::Blank(BlankNode::new("b0")));
    }

    #[test]
    fn load_into_store_graph() {
        let store = crate::store::QuadStore::new();
        let g = GraphName::named(Iri::new("http://e/g"));
        let n = load_turtle(&store, &g, "@prefix ex: <http://e/> . ex:a ex:p ex:b .").unwrap();
        assert_eq!(n, 1);
        assert_eq!(store.graph_len(&g), 1);
    }

    #[test]
    fn escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash";
        let escaped = escape_literal(original);
        assert_eq!(unescape_literal(&escaped).unwrap(), original);
    }
}
