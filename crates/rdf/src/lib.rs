//! # bdi-rdf — the RDF substrate of the BDI ontology
//!
//! An in-memory, indexed, thread-safe RDF **named-graph quad store** with:
//!
//! * a compact term model ([`model`]) with interning ([`interner`]),
//! * six permutation indexes answering any quad pattern with one range scan
//!   ([`store`]),
//! * a Turtle subset reader/writer ([`turtle`]),
//! * RDFS entailment — materialization and on-demand closure ([`reason`]),
//! * a restricted SPARQL engine ([`sparql`]) covering the paper's accepted
//!   query template (Code 3), its algebra (Code 4) and the internal queries
//!   of Algorithms 1–5 (`GRAPH ?g { … }`, `VALUES`).
//!
//! This crate is self-contained: it is the triplestore the paper assumes as
//! its substrate (Jena + Jena TDB in the authors' implementation), built from
//! scratch because no mature pure-Rust option fits the requirements.
//!
//! ## The encode → evaluate → decode pipeline
//!
//! Every term is interned to a dense `u32` id ([`interner::TermId`]) on
//! insertion, and the six indexes hold `[u32; 4]` keys — one permutation per
//! bound-prefix shape:
//!
//! | bound prefix        | index  |
//! |---------------------|--------|
//! | g, g+s, g+s+p, all  | `GSPO` |
//! | g+p, g+p+o          | `GPOS` |
//! | g+o, g+o+s          | `GOSP` |
//! | s, s+p, s+p+o       | `SPOG` |
//! | p, p+o              | `POSG` |
//! | o, o+s              | `OSPG` |
//!
//! Queries run entirely in id space: [`store::QuadStore::reader`] pins the
//! read lock once, pattern constants **encode** to ids up front, the SPARQL
//! evaluator joins fixed-width id rows against range scans, and only the
//! surviving solutions **decode** back to [`model::Term`]s
//! ([`sparql::evaluate`]; [`sparql::evaluate_count`] never decodes at all).
//! `match_quads` and the `objects`/`subjects`/`iri_objects`/`iri_subjects`
//! helpers are thin decoded views over the same primitive. See
//! `BENCH_eval.json` at the workspace root for the measured effect.

pub mod interner;
pub mod model;
pub mod reason;
pub mod sparql;
pub mod store;
pub mod trig;
pub mod turtle;
pub mod vocab;

pub use model::{BlankNode, GraphName, Iri, Literal, Quad, Term, Triple};
pub use store::{GraphPattern, QuadStore};
