//! # bdi-rdf — the RDF substrate of the BDI ontology
//!
//! An in-memory, indexed, thread-safe RDF **named-graph quad store** with:
//!
//! * a compact term model ([`model`]) with interning ([`interner`]),
//! * six permutation indexes answering any quad pattern with one range scan
//!   ([`store`]),
//! * a Turtle subset reader/writer ([`turtle`]),
//! * RDFS entailment — materialization and on-demand closure ([`reason`]),
//! * a restricted SPARQL engine ([`sparql`]) covering the paper's accepted
//!   query template (Code 3), its algebra (Code 4) and the internal queries
//!   of Algorithms 1–5 (`GRAPH ?g { … }`, `VALUES`).
//!
//! This crate is self-contained: it is the triplestore the paper assumes as
//! its substrate (Jena + Jena TDB in the authors' implementation), built from
//! scratch because no mature pure-Rust option fits the requirements.

pub mod interner;
pub mod model;
pub mod reason;
pub mod sparql;
pub mod store;
pub mod trig;
pub mod turtle;
pub mod vocab;

pub use model::{BlankNode, GraphName, Iri, Literal, Quad, Term, Triple};
pub use store::{GraphPattern, QuadStore};
