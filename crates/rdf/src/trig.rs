//! TriG subset reader and writer — Turtle extended with named graphs.
//!
//! The full BDI ontology `T` is a *dataset* (default graph + the `G`/`S`/`M`
//! graphs + one LAV named graph per wrapper), which plain Turtle cannot
//! express. This module supports the TriG fragment needed to serialize and
//! reload `T` losslessly:
//!
//! ```text
//! @prefix ex: <http://example.org/> .
//! ex:defaultSubject ex:p ex:o .            # default graph
//! GRAPH ex:g1 { ex:a ex:p ex:b . }         # named graphs
//! ex:g2 { ex:c ex:p ex:d . }               # brace form without keyword
//! ```

use crate::model::{GraphName, Iri, Quad, Term, Triple};
use crate::store::QuadStore;
use crate::turtle::{parse_turtle, write_turtle, PrefixMap, TurtleError};

/// Errors raised while parsing TriG.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TrigError {
    #[error(transparent)]
    Turtle(#[from] TurtleError),
    #[error("unterminated graph block for {0}")]
    UnterminatedGraph(String),
    #[error("expected graph name before `{{` at offset {0}")]
    MissingGraphName(usize),
}

/// Serializes an entire store (default graph + all named graphs) as TriG.
pub fn write_trig(store: &QuadStore, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (pfx, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {pfx}: <{ns}> .\n"));
    }
    out.push('\n');

    // Default graph first, as plain triples.
    let default_triples: Vec<Triple> = store
        .graph_quads(&GraphName::Default)
        .into_iter()
        .map(Quad::into_triple)
        .collect();
    if !default_triples.is_empty() {
        out.push_str(&strip_prefix_header(&write_turtle(
            default_triples.iter(),
            prefixes,
        )));
        out.push('\n');
    }

    for graph in store.named_graphs() {
        let triples: Vec<Triple> = store
            .graph_quads(&GraphName::Named(graph.clone()))
            .into_iter()
            .map(Quad::into_triple)
            .collect();
        out.push_str(&format!("GRAPH {} {{\n", prefixes.compact(&graph)));
        for line in strip_prefix_header(&write_turtle(triples.iter(), prefixes)).lines() {
            if line.is_empty() {
                continue;
            }
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("}\n\n");
    }
    out
}

/// `write_turtle` emits its own prefix header; drop it when embedding.
fn strip_prefix_header(turtle: &str) -> String {
    turtle
        .lines()
        .filter(|l| !l.starts_with("@prefix"))
        .collect::<Vec<_>>()
        .join("\n")
        .trim_start()
        .to_owned()
        + "\n"
}

/// Parses a TriG document into quads.
pub fn parse_trig(input: &str) -> Result<Vec<Quad>, TrigError> {
    // Strategy: split the document into (graph, turtle-fragment) sections by
    // scanning for GRAPH blocks at brace level zero, then reuse the Turtle
    // parser per section with the shared prefix header.
    let mut prefix_header = String::new();
    let mut sections: Vec<(GraphName, String)> = Vec::new();
    let mut default_body = String::new();

    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let n = chars.len();

    while i < n {
        // Skip whitespace/comments between statements.
        while i < n && (chars[i].is_whitespace()) {
            i += 1;
        }
        if i >= n {
            break;
        }
        if chars[i] == '#' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // @prefix directive.
        if input[offset(&chars, i)..].starts_with("@prefix") {
            let start = i;
            let end = statement_end(&chars, i).ok_or(TrigError::Turtle(
                TurtleError::UnexpectedEof("@prefix directive"),
            ))?;
            i = end + 1; // consume '.'
            prefix_header.push_str(&slice(&chars, start, i));
            prefix_header.push('\n');
            continue;
        }
        // GRAPH keyword (case-insensitive) or `name {`.
        let rest = &input[offset(&chars, i)..];
        let (graph_name_start, explicit_keyword) = if rest.len() >= 5
            && rest[..5].eq_ignore_ascii_case("graph")
            && rest[5..].starts_with(char::is_whitespace)
        {
            (i + 5, true)
        } else {
            (i, false)
        };

        // Look ahead: is there a `{` before the statement-ending `.`? Then
        // it is a graph block; otherwise it is a default-graph statement.
        let mut j = graph_name_start;
        let mut saw_brace = false;
        while j < n {
            match chars[j] {
                '{' => {
                    saw_brace = true;
                    break;
                }
                '.' if !explicit_keyword && ends_statement(&chars, j) => break,
                '"' => j = skip_string(&chars, j),
                '<' => j = skip_angle(&chars, j),
                _ => {}
            }
            j += 1;
        }

        if !saw_brace {
            // Default-graph statement: copy up to and including the '.'.
            let start = i;
            let k = statement_end(&chars, i).ok_or(TrigError::Turtle(
                TurtleError::UnexpectedEof("default graph statement"),
            ))?;
            default_body.push_str(&slice(&chars, start, k + 1));
            default_body.push('\n');
            i = k + 1;
            continue;
        }

        // Graph block: name is chars[graph_name_start..j] trimmed.
        let name_text = slice(&chars, graph_name_start, j).trim().to_owned();
        if name_text.is_empty() {
            return Err(TrigError::MissingGraphName(i));
        }
        // Body: from after '{' to the matching '}' (no nesting in TriG).
        let body_start = j + 1;
        let mut k = body_start;
        let mut depth = 1;
        while k < n && depth > 0 {
            match chars[k] {
                '{' => depth += 1,
                '}' => depth -= 1,
                '"' => k = skip_string(&chars, k),
                '<' => k = skip_angle(&chars, k),
                _ => {}
            }
            k += 1;
        }
        if depth != 0 {
            return Err(TrigError::UnterminatedGraph(name_text));
        }
        let body = slice(&chars, body_start, k - 1);
        sections.push((
            GraphName::Named(resolve_graph_name(&name_text, &prefix_header)?),
            body,
        ));
        i = k;
    }

    let mut quads = Vec::new();
    let parse_section = |body: &str| -> Result<Vec<Triple>, TrigError> {
        let full = format!("{prefix_header}\n{body}");
        let (triples, _) = parse_turtle(&full)?;
        Ok(triples)
    };
    for triple in parse_section(&default_body)? {
        quads.push(Quad {
            subject: triple.subject,
            predicate: triple.predicate,
            object: triple.object,
            graph: GraphName::Default,
        });
    }
    for (graph, body) in sections {
        for triple in parse_section(&body)? {
            quads.push(Quad {
                subject: triple.subject,
                predicate: triple.predicate,
                object: triple.object,
                graph: graph.clone(),
            });
        }
    }
    Ok(quads)
}

fn offset(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// Index of the closing `"` of a string starting at `chars[start] == '"'`.
fn skip_string(chars: &[char], start: usize) -> usize {
    let mut k = start + 1;
    while k < chars.len() && chars[k] != '"' {
        if chars[k] == '\\' {
            k += 1;
        }
        k += 1;
    }
    k
}

/// Index of the closing `>` of an IRI starting at `chars[start] == '<'`.
fn skip_angle(chars: &[char], start: usize) -> usize {
    let mut k = start + 1;
    while k < chars.len() && chars[k] != '>' {
        k += 1;
    }
    k
}

/// True when the `.` at `chars[i]` terminates a statement: it is followed
/// by whitespace, EOF, a comment or a brace — not a character of a name.
fn ends_statement(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => true,
        Some(c) => c.is_whitespace() || matches!(c, '#' | '}' | '{'),
    }
}

/// Index of the statement-terminating `.` starting the scan at `from`,
/// skipping string literals and angle-bracket IRIs.
fn statement_end(chars: &[char], from: usize) -> Option<usize> {
    let mut k = from;
    while k < chars.len() {
        match chars[k] {
            '"' => k = skip_string(chars, k),
            '<' => k = skip_angle(chars, k),
            '.' if ends_statement(chars, k) => return Some(k),
            _ => {}
        }
        k += 1;
    }
    None
}

fn slice(chars: &[char], from: usize, to: usize) -> String {
    chars[from..to].iter().collect()
}

fn resolve_graph_name(text: &str, prefix_header: &str) -> Result<Iri, TrigError> {
    if let Some(stripped) = text.strip_prefix('<') {
        let inner = stripped.trim_end_matches('>');
        return Ok(Iri::try_new(inner).map_err(|e| TurtleError::BadIri(e.to_string()))?);
    }
    // Prefixed name: reuse the Turtle parser on a synthetic statement.
    let doc = format!("{prefix_header}\n{text} {text} {text} .");
    let (triples, _) = parse_turtle(&doc)?;
    match &triples[0].subject {
        Term::Iri(iri) => Ok(iri.clone()),
        other => Err(TrigError::Turtle(TurtleError::Expected {
            expected: "graph IRI",
            found: other.to_string(),
        })),
    }
}

/// Loads a TriG document into a store, returning how many quads were new.
pub fn load_trig(store: &QuadStore, input: &str) -> Result<usize, TrigError> {
    let quads = parse_trig(input)?;
    Ok(store.extend(quads))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> QuadStore {
        let store = QuadStore::new();
        store.insert(&Quad::new(
            Iri::new("http://e/s"),
            Iri::new("http://e/p"),
            Iri::new("http://e/o"),
            GraphName::Default,
        ));
        store.insert(&Quad::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            crate::model::Literal::string("lit \"quoted\""),
            GraphName::Named(Iri::new("http://e/g1")),
        ));
        store.insert(&Quad::new(
            Iri::new("http://e/b"),
            Iri::new("http://e/q"),
            Iri::new("http://e/c"),
            GraphName::Named(Iri::new("http://e/g2")),
        ));
        store
    }

    #[test]
    fn round_trip_store_to_trig_and_back() {
        let store = sample_store();
        let mut prefixes = PrefixMap::new();
        prefixes.insert("e", "http://e/");
        let doc = write_trig(&store, &prefixes);

        let reloaded = QuadStore::new();
        let n = load_trig(&reloaded, &doc).unwrap();
        assert_eq!(n, 3);
        let mut a: Vec<String> = store.iter_all().iter().map(|q| q.to_string()).collect();
        let mut b: Vec<String> = reloaded.iter_all().iter().map(|q| q.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_graph_keyword_and_brace_forms() {
        let doc = r#"
            @prefix e: <http://e/> .
            e:x e:p e:y .
            GRAPH e:g1 { e:a e:p e:b . }
            e:g2 { e:c e:p e:d . }
        "#;
        let quads = parse_trig(doc).unwrap();
        assert_eq!(quads.len(), 3);
        assert_eq!(
            quads
                .iter()
                .filter(|q| q.graph == GraphName::Default)
                .count(),
            1
        );
        assert!(quads
            .iter()
            .any(|q| q.graph == GraphName::Named(Iri::new("http://e/g2"))));
    }

    #[test]
    fn angle_bracket_graph_names() {
        let doc = r#"
            @prefix e: <http://e/> .
            GRAPH <http://e/gX> { e:a e:p e:b . }
        "#;
        let quads = parse_trig(doc).unwrap();
        assert_eq!(quads[0].graph, GraphName::Named(Iri::new("http://e/gX")));
    }

    #[test]
    fn literals_with_braces_do_not_confuse_the_scanner() {
        let doc = r#"
            @prefix e: <http://e/> .
            e:x e:p "contains { braces } and a dot ." .
            GRAPH e:g { e:a e:p "also } here" . }
        "#;
        let quads = parse_trig(doc).unwrap();
        assert_eq!(quads.len(), 2);
        let lit = quads
            .iter()
            .find(|q| q.graph == GraphName::Default)
            .unwrap();
        assert!(lit.object.to_string().contains("braces"));
    }

    #[test]
    fn unterminated_graph_is_an_error() {
        let doc = "@prefix e: <http://e/> . GRAPH e:g { e:a e:p e:b .";
        assert!(matches!(
            parse_trig(doc),
            Err(TrigError::UnterminatedGraph(_))
        ));
    }

    #[test]
    fn empty_document_parses() {
        assert!(parse_trig("").unwrap().is_empty());
        assert!(parse_trig("# just a comment\n").unwrap().is_empty());
    }
}
