//! Recursive-descent parser for the SPARQL subset.
//!
//! Accepts the grammar:
//!
//! ```text
//! query       := prefixDecl* SELECT DISTINCT? (var+ | '*') (FROM iri)? WHERE groupGraph
//! prefixDecl  := PREFIX pname ':' iri        (also `pfx:` glued form)
//! groupGraph  := '{' (valuesClause | graphBlock | triples)* '}'
//! valuesClause:= VALUES '(' var* ')' '{' ('(' term* ')')* '}'
//! graphBlock  := GRAPH (var | iri) '{' triples* '}'
//! triples     := node verb node (',' node)* (';' verb node (',' node)*)* '.'?
//! ```
//!
//! which covers Code 3 / Code 5 / Code 8 of the paper plus the internal
//! queries of Algorithms 1–5 (variables, `GRAPH ?g { … }`).

use super::ast::*;
use super::lexer::{tokenize, LexError, Token};
use crate::model::{Iri, Literal, Term};
use crate::turtle::PrefixMap;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ParseError {
    #[error(transparent)]
    Lex(#[from] LexError),
    #[error("unexpected end of query while parsing {0}")]
    UnexpectedEof(&'static str),
    #[error("expected {expected}, found `{found}`")]
    Unexpected {
        expected: &'static str,
        found: String,
    },
    #[error("unknown prefix in `{0}`")]
    UnknownPrefix(String),
    #[error("VALUES row has {found} terms but {expected} variables are declared")]
    ValuesArity { expected: usize, found: usize },
}

/// Parses a SPARQL `SELECT` query. `base_prefixes` seeds the prefix table
/// (queries may add their own `PREFIX` declarations on top).
pub fn parse_query(input: &str, base_prefixes: &PrefixMap) -> Result<SelectQuery, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: base_prefixes.clone(),
    };
    parser.parse_query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &'static str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if &t == expected => Ok(()),
            Some(t) => Err(ParseError::Unexpected {
                expected: what,
                found: t.to_string(),
            }),
            None => Err(ParseError::UnexpectedEof(what)),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            Some(t) => Err(ParseError::Unexpected {
                expected: "keyword",
                found: t.to_string(),
            }),
            None => Err(ParseError::UnexpectedEof("keyword")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn parse_query(&mut self) -> Result<SelectQuery, ParseError> {
        while self.at_keyword("PREFIX") {
            self.parse_prefix_decl()?;
        }
        self.expect_keyword("SELECT")?;
        if self.at_keyword("DISTINCT") {
            self.bump();
        }
        let mut select = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(name)) = self.bump() {
                        select.push(Variable::new(name));
                    }
                }
                Some(Token::Star) => {
                    self.bump();
                    break;
                }
                _ => break,
            }
        }
        let from = if self.at_keyword("FROM") {
            self.bump();
            Some(self.parse_iri()?)
        } else {
            None
        };
        self.expect_keyword("WHERE")?;
        self.expect(&Token::LBrace, "`{`")?;

        let mut values = None;
        let mut patterns = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Token::Keyword(k)) if k == "VALUES" => {
                    values = Some(self.parse_values()?);
                }
                Some(Token::Keyword(k)) if k == "GRAPH" => {
                    self.parse_graph_block(&mut patterns)?;
                }
                Some(_) => {
                    self.parse_triples(GraphSpec::Active, &mut patterns)?;
                }
                None => return Err(ParseError::UnexpectedEof("`}`")),
            }
        }
        Ok(SelectQuery {
            select,
            from,
            values,
            patterns,
        })
    }

    fn parse_prefix_decl(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("PREFIX")?;
        let name = match self.bump() {
            // `pfx:` lexes as a prefixed name with an empty local part.
            Some(Token::PrefixedName(p)) => p.trim_end_matches(':').to_owned(),
            Some(t) => {
                return Err(ParseError::Unexpected {
                    expected: "prefix name",
                    found: t.to_string(),
                })
            }
            None => return Err(ParseError::UnexpectedEof("prefix name")),
        };
        let iri = self.parse_iri()?;
        self.prefixes.insert(name, iri.as_str().to_owned());
        Ok(())
    }

    fn parse_iri(&mut self) -> Result<Iri, ParseError> {
        match self.bump() {
            Some(Token::Iri(iri)) => Iri::try_new(&iri).map_err(|_| ParseError::Unexpected {
                expected: "IRI",
                found: iri,
            }),
            Some(Token::PrefixedName(name)) => self
                .prefixes
                .expand(&name)
                .map_err(|_| ParseError::UnknownPrefix(name)),
            Some(t) => Err(ParseError::Unexpected {
                expected: "IRI",
                found: t.to_string(),
            }),
            None => Err(ParseError::UnexpectedEof("IRI")),
        }
    }

    fn parse_values(&mut self) -> Result<ValuesClause, ParseError> {
        self.expect_keyword("VALUES")?;
        self.expect(&Token::LParen, "`(` after VALUES")?;
        let mut vars = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Var(v)) => vars.push(Variable::new(v)),
                Some(Token::RParen) => break,
                Some(t) => {
                    return Err(ParseError::Unexpected {
                        expected: "variable or `)`",
                        found: t.to_string(),
                    })
                }
                None => return Err(ParseError::UnexpectedEof("VALUES variables")),
            }
        }
        self.expect(&Token::LBrace, "`{` opening VALUES rows")?;
        let mut rows = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Token::LParen) => {
                    self.bump();
                    let mut row = Vec::new();
                    loop {
                        if matches!(self.peek(), Some(Token::RParen)) {
                            self.bump();
                            break;
                        }
                        row.push(self.parse_constant_term()?);
                    }
                    if row.len() != vars.len() {
                        return Err(ParseError::ValuesArity {
                            expected: vars.len(),
                            found: row.len(),
                        });
                    }
                    rows.push(row);
                }
                Some(t) => {
                    return Err(ParseError::Unexpected {
                        expected: "`(` or `}` in VALUES rows",
                        found: t.to_string(),
                    })
                }
                None => return Err(ParseError::UnexpectedEof("VALUES rows")),
            }
        }
        Ok(ValuesClause { vars, rows })
    }

    fn parse_graph_block(&mut self, patterns: &mut Vec<QuadPattern>) -> Result<(), ParseError> {
        self.expect_keyword("GRAPH")?;
        let spec = match self.peek() {
            Some(Token::Var(_)) => {
                let Some(Token::Var(v)) = self.bump() else {
                    unreachable!()
                };
                GraphSpec::Var(Variable::new(v))
            }
            _ => GraphSpec::Named(self.parse_iri()?),
        };
        self.expect(&Token::LBrace, "`{` opening GRAPH block")?;
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => self.parse_triples(spec.clone(), patterns)?,
                None => return Err(ParseError::UnexpectedEof("GRAPH block")),
            }
        }
    }

    fn parse_constant_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Token::Iri(iri)) => Ok(Term::Iri(Iri::try_new(&iri).map_err(|_| {
                ParseError::Unexpected {
                    expected: "IRI",
                    found: iri.clone(),
                }
            })?)),
            Some(Token::PrefixedName(name)) => Ok(Term::Iri(
                self.prefixes
                    .expand(&name)
                    .map_err(|_| ParseError::UnknownPrefix(name))?,
            )),
            Some(Token::Literal(value)) => match self.peek() {
                Some(Token::LangTag(_)) => {
                    let Some(Token::LangTag(lang)) = self.bump() else {
                        unreachable!()
                    };
                    Ok(Term::Literal(Literal::lang_string(value, lang)))
                }
                Some(Token::DatatypeMarker) => {
                    self.bump();
                    let dt = self.parse_iri()?;
                    Ok(Term::Literal(Literal::typed(value, dt)))
                }
                _ => Ok(Term::Literal(Literal::string(value))),
            },
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    Ok(Term::Literal(Literal::typed(
                        n,
                        (*crate::vocab::xsd::DOUBLE).clone(),
                    )))
                } else {
                    Ok(Term::Literal(Literal::typed(
                        n,
                        (*crate::vocab::xsd::INTEGER).clone(),
                    )))
                }
            }
            Some(t) => Err(ParseError::Unexpected {
                expected: "constant term",
                found: t.to_string(),
            }),
            None => Err(ParseError::UnexpectedEof("constant term")),
        }
    }

    fn parse_node(&mut self) -> Result<TermOrVar, ParseError> {
        match self.peek() {
            Some(Token::Var(_)) => {
                let Some(Token::Var(v)) = self.bump() else {
                    unreachable!()
                };
                Ok(TermOrVar::Var(Variable::new(v)))
            }
            Some(Token::PrefixedName(name)) if name == "a" => {
                self.bump();
                Ok(TermOrVar::Term(Term::Iri(
                    (*crate::vocab::rdf::TYPE).clone(),
                )))
            }
            _ => Ok(TermOrVar::Term(self.parse_constant_term()?)),
        }
    }

    fn parse_triples(
        &mut self,
        graph: GraphSpec,
        patterns: &mut Vec<QuadPattern>,
    ) -> Result<(), ParseError> {
        let subject = self.parse_node()?;
        loop {
            let predicate = self.parse_node()?;
            loop {
                let object = self.parse_node()?;
                patterns.push(QuadPattern {
                    pattern: TriplePattern {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    },
                    graph: graph.clone(),
                });
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.bump();
                    continue;
                }
                break;
            }
            match self.peek() {
                Some(Token::Semicolon) => {
                    self.bump();
                    // Dangling `;` before `.` or `}`.
                    if matches!(self.peek(), Some(Token::Dot)) {
                        self.bump();
                        return Ok(());
                    }
                    if matches!(self.peek(), Some(Token::RBrace) | None) {
                        return Ok(());
                    }
                    continue;
                }
                Some(Token::Dot) => {
                    self.bump();
                    return Ok(());
                }
                _ => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefixes() -> PrefixMap {
        let mut p = PrefixMap::with_common_vocabularies();
        p.insert("sup", "http://e/sup/");
        p.insert("G", "http://e/G/");
        p
    }

    #[test]
    fn parses_the_paper_template_query() {
        // Code 8 of the paper, modulo namespaces.
        let q = parse_query(
            r#"
            SELECT ?x ?y
            FROM <http://e/Global>
            WHERE {
                VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
                sup:SoftwareApplication G:hasFeature sup:applicationId .
                sup:SoftwareApplication sup:hasMonitor sup:Monitor .
                sup:Monitor sup:generatesQoS sup:InfoMonitor .
                sup:InfoMonitor G:hasFeature sup:lagRatio
            }
            "#,
            &prefixes(),
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.as_ref().unwrap().as_str(), "http://e/Global");
        let values = q.values.unwrap();
        assert_eq!(values.vars.len(), 2);
        assert_eq!(values.rows.len(), 1);
        assert_eq!(values.rows[0][0], Term::iri("http://e/sup/applicationId"));
        assert_eq!(q.patterns.len(), 4);
        // All template patterns are constant.
        assert!(q.patterns.iter().all(|p| p.pattern.bound_count() == 3));
    }

    #[test]
    fn parses_variables_and_graph_blocks() {
        let q = parse_query(
            "SELECT ?g WHERE { GRAPH ?g { sup:Monitor G:hasFeature sup:monitorId } }",
            &prefixes(),
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert!(matches!(&q.patterns[0].graph, GraphSpec::Var(v) if v.name() == "g"));
    }

    #[test]
    fn parses_prefix_declarations() {
        let q = parse_query(
            "PREFIX ex: <http://x.org/> SELECT ?s WHERE { ?s a ex:C . }",
            &PrefixMap::new(),
        )
        .unwrap();
        let TermOrVar::Term(obj) = &q.patterns[0].pattern.object else {
            panic!("expected constant object");
        };
        assert_eq!(obj, &Term::iri("http://x.org/C"));
    }

    #[test]
    fn select_star_and_semicolon_lists() {
        let q = parse_query(
            "SELECT * WHERE { ?s a sup:C ; sup:p ?o1 , ?o2 . }",
            &prefixes(),
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.projection().len(), 3);
    }

    #[test]
    fn values_arity_mismatch_is_an_error() {
        let err = parse_query(
            "SELECT ?x ?y WHERE { VALUES (?x ?y) { (sup:a) } }",
            &prefixes(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParseError::ValuesArity {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_query("SELECT ?x WHERE { ?x a zz:C . }", &PrefixMap::new()).unwrap_err();
        assert!(matches!(err, ParseError::UnknownPrefix(_)));
    }

    #[test]
    fn literals_in_patterns() {
        let q = parse_query(
            r#"SELECT ?s WHERE { ?s sup:label "hello"@en . ?s sup:count "3"^^xsd:integer . }"#,
            &prefixes(),
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
        let TermOrVar::Term(Term::Literal(l)) = &q.patterns[0].pattern.object else {
            panic!("expected literal");
        };
        assert_eq!(l.lang(), Some("en"));
    }
}
