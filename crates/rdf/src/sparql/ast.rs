//! Abstract syntax for the restricted SPARQL fragment.
//!
//! The paper restricts OMQs to the template of Code 3: a `SELECT` over
//! invited variables, a `VALUES` clause binding each variable to an attribute
//! IRI, and a basic graph pattern of constant triples. Internally the
//! algorithms also issue queries with variables and `GRAPH ?g { ... }`
//! blocks (Algorithms 3–5), so the AST supports both.

use crate::model::{Iri, Term};
use std::fmt;
use std::sync::Arc;

/// A SPARQL variable (stored without the leading `?`).
///
/// The name lives behind an `Arc<str>` so that building solution bindings —
/// which clones the variable once per row — is a refcount bump, not a string
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A position in a triple pattern: a constant term or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermOrVar {
    Term(Term),
    Var(Variable),
}

impl TermOrVar {
    pub fn iri(value: impl AsRef<str>) -> Self {
        TermOrVar::Term(Term::iri(value))
    }

    pub fn var(name: impl AsRef<str>) -> Self {
        TermOrVar::Var(Variable::new(name))
    }

    /// Returns the constant term, if this position is bound.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermOrVar::Term(t) => Some(t),
            TermOrVar::Var(_) => None,
        }
    }

    /// Returns the variable, if this position is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            TermOrVar::Var(v) => Some(v),
            TermOrVar::Term(_) => None,
        }
    }
}

impl fmt::Display for TermOrVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermOrVar::Term(t) => t.fmt(f),
            TermOrVar::Var(v) => v.fmt(f),
        }
    }
}

impl From<Term> for TermOrVar {
    fn from(value: Term) -> Self {
        TermOrVar::Term(value)
    }
}

impl From<Iri> for TermOrVar {
    fn from(value: Iri) -> Self {
        TermOrVar::Term(Term::Iri(value))
    }
}

impl From<Variable> for TermOrVar {
    fn from(value: Variable) -> Self {
        TermOrVar::Var(value)
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: TermOrVar,
    pub predicate: TermOrVar,
    pub object: TermOrVar,
}

impl TriplePattern {
    pub fn new(
        subject: impl Into<TermOrVar>,
        predicate: impl Into<TermOrVar>,
        object: impl Into<TermOrVar>,
    ) -> Self {
        Self {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Number of constant positions — used for greedy join ordering.
    pub fn bound_count(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .iter()
            .filter(|p| p.as_term().is_some())
            .count()
    }

    /// All variables mentioned by the pattern.
    pub fn variables(&self) -> Vec<&Variable> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|p| p.as_var())
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// The graph selector of a pattern block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// The query's active graph: the `FROM` graph if given, otherwise the
    /// dataset default (see [`super::eval::EvalOptions`]).
    Active,
    /// `GRAPH <iri> { ... }`.
    Named(Iri),
    /// `GRAPH ?g { ... }` — binds the graph name.
    Var(Variable),
}

/// A triple pattern together with its graph selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadPattern {
    pub pattern: TriplePattern,
    pub graph: GraphSpec,
}

impl QuadPattern {
    pub fn in_active(pattern: TriplePattern) -> Self {
        Self {
            pattern,
            graph: GraphSpec::Active,
        }
    }
}

/// A `VALUES (?v1 … ?vn) { (t11 … t1n) … }` clause.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValuesClause {
    pub vars: Vec<Variable>,
    pub rows: Vec<Vec<Term>>,
}

/// A parsed `SELECT` query of the supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// Projected variables; empty means `SELECT *`.
    pub select: Vec<Variable>,
    /// `FROM <g>` — the active graph.
    pub from: Option<Iri>,
    /// Optional `VALUES` clause (Code 3 binds projection vars to attributes).
    pub values: Option<ValuesClause>,
    /// The basic graph pattern, possibly spanning `GRAPH` blocks.
    pub patterns: Vec<QuadPattern>,
}

impl SelectQuery {
    /// All variables projected by the query; for `SELECT *`, every variable
    /// appearing in the pattern (in first-appearance order).
    pub fn projection(&self) -> Vec<Variable> {
        if !self.select.is_empty() {
            return self.select.clone();
        }
        let mut seen = Vec::new();
        let mut push = |v: &Variable| {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        };
        if let Some(values) = &self.values {
            values.vars.iter().for_each(&mut push);
        }
        for qp in &self.patterns {
            for v in qp.pattern.variables() {
                push(v);
            }
            if let GraphSpec::Var(v) = &qp.graph {
                push(v);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_display_includes_question_mark() {
        assert_eq!(Variable::new("x").to_string(), "?x");
    }

    #[test]
    fn bound_count_counts_constants() {
        let p = TriplePattern::new(
            TermOrVar::iri("http://e/s"),
            TermOrVar::var("p"),
            TermOrVar::iri("http://e/o"),
        );
        assert_eq!(p.bound_count(), 2);
        assert_eq!(p.variables(), vec![&Variable::new("p")]);
    }

    #[test]
    fn select_star_projects_pattern_variables_in_order() {
        let q = SelectQuery {
            select: vec![],
            from: None,
            values: None,
            patterns: vec![
                QuadPattern::in_active(TriplePattern::new(
                    TermOrVar::var("a"),
                    TermOrVar::iri("http://e/p"),
                    TermOrVar::var("b"),
                )),
                QuadPattern {
                    pattern: TriplePattern::new(
                        TermOrVar::var("a"),
                        TermOrVar::var("p2"),
                        TermOrVar::iri("http://e/o"),
                    ),
                    graph: GraphSpec::Var(Variable::new("g")),
                },
            ],
        };
        let names: Vec<String> = q.projection().iter().map(|v| v.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b", "p2", "g"]);
    }
}
