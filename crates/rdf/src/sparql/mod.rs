//! Restricted SPARQL engine: lexer, parser, algebra and evaluator.
//!
//! The supported fragment is exactly what the paper requires: `SELECT`
//! queries over one `FROM` graph with a `VALUES` table and a basic graph
//! pattern (Code 3), plus variables and `GRAPH ?g { … }` blocks for the
//! internal queries of Algorithms 1–5.

pub mod algebra;
pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use algebra::to_algebra;
pub use ast::{
    GraphSpec, QuadPattern, SelectQuery, TermOrVar, TriplePattern, ValuesClause, Variable,
};
pub use eval::{evaluate, evaluate_count, Binding, EvalOptions, Solutions};
pub use parser::{parse_query, ParseError};
