//! Tokenizer for the SPARQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `SELECT`, `FROM`, `WHERE`, `VALUES`, `PREFIX`, `GRAPH`, `DISTINCT` —
    /// matched case-insensitively and normalized to upper case.
    Keyword(String),
    /// `?name`.
    Var(String),
    /// `<iri>` content, without brackets.
    Iri(String),
    /// `prefix:local` (also bare `a`).
    PrefixedName(String),
    /// String literal content (unescaped) with optional language / datatype
    /// handled by the parser via following tokens.
    Literal(String),
    /// `@lang` following a literal.
    LangTag(String),
    /// `^^` announcing a datatype.
    DatatypeMarker,
    /// Number literal kept as its lexical form.
    Number(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Iri(i) => write!(f, "<{i}>"),
            Token::PrefixedName(p) => write!(f, "{p}"),
            Token::Literal(l) => write!(f, "\"{l}\""),
            Token::LangTag(l) => write!(f, "@{l}"),
            Token::DatatypeMarker => write!(f, "^^"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
        }
    }
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum LexError {
    #[error("unexpected character {0:?} at offset {1}")]
    UnexpectedChar(char, usize),
    #[error("unterminated {0}")]
    Unterminated(&'static str),
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "VALUES", "PREFIX", "GRAPH", "DISTINCT",
];

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            _ if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '?' | '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                if start == i {
                    return Err(LexError::UnexpectedChar('?', start));
                }
                tokens.push(Token::Var(bytes[start..i].iter().collect()));
            }
            '<' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != '>' {
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(LexError::Unterminated("IRI"));
                }
                tokens.push(Token::Iri(bytes[start..i].iter().collect()));
                i += 1;
            }
            '"' => {
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError::Unterminated("string literal"));
                    }
                    match bytes[i] {
                        '\\' => {
                            i += 1;
                            if i >= bytes.len() {
                                return Err(LexError::Unterminated("string literal"));
                            }
                            value.push(match bytes[i] {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            });
                            i += 1;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        other => {
                            value.push(other);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Literal(value));
            }
            '@' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '-') {
                    i += 1;
                }
                tokens.push(Token::LangTag(bytes[start..i].iter().collect()));
            }
            '^' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '^' {
                    tokens.push(Token::DatatypeMarker);
                    i += 2;
                } else {
                    return Err(LexError::UnexpectedChar('^', i));
                }
            }
            _ if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    // A trailing dot is statement punctuation.
                    if bytes[i] == '.' && (i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token::Number(bytes[start..i].iter().collect()));
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric()
                        || matches!(bytes[i], '_' | '-' | ':' | '.' | '/' | '~'))
                {
                    // A trailing dot is statement punctuation, not name.
                    if bytes[i] == '.'
                        && (i + 1 >= bytes.len()
                            || !(bytes[i + 1].is_alphanumeric()
                                || matches!(bytes[i + 1], '_' | '-' | '/')))
                    {
                        break;
                    }
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::PrefixedName(word));
                }
            }
            other => return Err(LexError::UnexpectedChar(other, i)),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_minimal_query() {
        let toks = tokenize("SELECT ?x WHERE { ?x a <http://e/C> . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Var("x".into()),
                Token::Keyword("WHERE".into()),
                Token::LBrace,
                Token::Var("x".into()),
                Token::PrefixedName("a".into()),
                Token::Iri("http://e/C".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select ?x where { }").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[2], Token::Keyword("WHERE".into()));
    }

    #[test]
    fn literals_with_lang_and_datatype() {
        let toks = tokenize(r#""chat"@en "12"^^xsd:integer"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Literal("chat".into()),
                Token::LangTag("en".into()),
                Token::Literal("12".into()),
                Token::DatatypeMarker,
                Token::PrefixedName("xsd:integer".into()),
            ]
        );
    }

    #[test]
    fn prefixed_names_keep_dots_inside() {
        let toks = tokenize("sup:Monitor.v2 sup:p sup:o .").unwrap();
        assert_eq!(toks[0], Token::PrefixedName("sup:Monitor.v2".into()));
        assert_eq!(toks.last(), Some(&Token::Dot));
    }

    #[test]
    fn unterminated_iri_is_an_error() {
        assert!(matches!(
            tokenize("<http://e/x"),
            Err(LexError::Unterminated("IRI"))
        ));
    }

    #[test]
    fn numbers_lex_and_trailing_dot_separates() {
        let toks = tokenize("42 3.25 7 .").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("42".into()),
                Token::Number("3.25".into()),
                Token::Number("7".into()),
                Token::Dot,
            ]
        );
    }
}
