//! SPARQL algebra rendering.
//!
//! The paper manipulates OMQs through their SPARQL-algebra form (Code 4):
//!
//! ```text
//! (project (?v1 … ?vn)
//!   (join
//!     (table (vars ?v1 … ?vn) (row [?v1 attr1] … ))
//!     (bgp (triple s1 p1 attr1) … )))
//! ```
//!
//! [`to_algebra`] produces that s-expression for any supported query; it is
//! what `bdi-core` hands to the rewriting pipeline (and what tests assert
//! against to demonstrate fidelity with the ARQ output shown in the paper).

use super::ast::*;
use std::fmt::Write as _;

/// Renders the algebra s-expression of a query.
pub fn to_algebra(query: &SelectQuery) -> String {
    let mut out = String::new();
    let projection = query.projection();
    out.push_str("(project (");
    for (i, v) in projection.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str(")\n");

    let has_table = query.values.as_ref().is_some_and(|v| !v.rows.is_empty());
    if has_table {
        out.push_str("  (join\n");
        let values = query.values.as_ref().expect("checked above");
        out.push_str("    (table (vars");
        for v in &values.vars {
            let _ = write!(out, " {v}");
        }
        out.push_str(")\n");
        for row in &values.rows {
            out.push_str("      (row");
            for (v, t) in values.vars.iter().zip(row) {
                let _ = write!(out, " [{v} {t}]");
            }
            out.push_str(")\n");
        }
        out.push_str("    )\n");
        write_bgp(&mut out, query, "    ");
        out.push_str("  ))");
    } else {
        write_bgp(&mut out, query, "  ");
        out.push(')');
    }
    out
}

fn write_bgp(out: &mut String, query: &SelectQuery, indent: &str) {
    out.push_str(indent);
    out.push_str("(bgp\n");
    for qp in &query.patterns {
        out.push_str(indent);
        match &qp.graph {
            GraphSpec::Active => {
                let _ = writeln!(out, "  (triple {})", qp.pattern);
            }
            GraphSpec::Named(g) => {
                let _ = writeln!(out, "  (graph <{}> (triple {}))", g.as_str(), qp.pattern);
            }
            GraphSpec::Var(v) => {
                let _ = writeln!(out, "  (graph {v} (triple {}))", qp.pattern);
            }
        }
    }
    out.push_str(indent);
    out.push_str(")\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parser::parse_query;
    use crate::turtle::PrefixMap;

    #[test]
    fn algebra_of_the_template_query_matches_code4_shape() {
        let mut prefixes = PrefixMap::new();
        prefixes.insert("sup", "http://e/sup/");
        prefixes.insert("G", "http://e/G/");
        let q = parse_query(
            "SELECT ?x ?y FROM <http://e/Global> WHERE {
                VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
                sup:App G:hasFeature sup:applicationId .
                sup:App sup:hasMonitor sup:Monitor
            }",
            &prefixes,
        )
        .unwrap();
        let algebra = to_algebra(&q);
        assert!(algebra.starts_with("(project (?x ?y)"));
        assert!(algebra.contains("(join"));
        assert!(algebra.contains("(table (vars ?x ?y)"));
        assert!(algebra
            .contains("(row [?x <http://e/sup/applicationId>] [?y <http://e/sup/lagRatio>])"));
        assert!(algebra.contains("(bgp"));
        assert!(algebra.contains(
            "(triple <http://e/sup/App> <http://e/G/hasFeature> <http://e/sup/applicationId>)"
        ));
    }

    #[test]
    fn algebra_without_values_has_no_join() {
        let q = parse_query("SELECT ?s WHERE { ?s ?p ?o . }", &PrefixMap::new()).unwrap();
        let algebra = to_algebra(&q);
        assert!(!algebra.contains("(join"));
        assert!(algebra.contains("(triple ?s ?p ?o)"));
    }

    #[test]
    fn graph_blocks_render() {
        let q = parse_query(
            "SELECT ?g WHERE { GRAPH ?g { ?s ?p ?o } }",
            &PrefixMap::new(),
        )
        .unwrap();
        assert!(to_algebra(&q).contains("(graph ?g (triple ?s ?p ?o))"));
    }
}
