//! Evaluation of the SPARQL subset over a [`QuadStore`].
//!
//! Semantics follow the SPARQL algebra of Code 4: the `VALUES` table is
//! joined with the basic graph pattern, then the projection is applied.
//! BGP matching uses greedy most-bound-first pattern ordering, substituting
//! bindings as they accumulate — each step is a single index range scan in
//! the store.
//!
//! # Id-space execution
//!
//! The evaluator pins the store's read lock once per query
//! ([`QuadStore::reader`]) and never leaves id space until projection time:
//!
//! 1. **Encode** — pattern constants and `VALUES` terms are resolved to
//!    `u32` term ids up front. Terms outside the store's vocabulary get
//!    query-local ids above the store's id range (they can never match a
//!    scan, which is exactly their semantics).
//! 2. **Evaluate** — solution rows are fixed-width id slots stored in one
//!    flat arena (`Vec<u32>` with a stride, `u32::MAX` = unbound), indexed
//!    by a per-query variable table; joins extend rows by scanning
//!    `[u32; 4]` keys and comparing ids, with no hashing, no `Term`
//!    cloning and no per-row allocation at all.
//! 3. **Decode** — only the surviving rows are materialized into the
//!    public [`Binding`]/[`Solutions`] view.

use super::ast::*;
use crate::interner::TermId;
use crate::model::{Iri, Term};
use crate::store::{IdGraph, IdPattern, QuadStore, StoreReader};
use std::collections::{HashMap, HashSet};

/// One solution mapping (variable → term).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Binding {
    map: HashMap<Variable, Term>,
}

impl Binding {
    pub fn get(&self, var: &Variable) -> Option<&Term> {
        self.map.get(var)
    }

    /// Convenience lookup by variable name.
    pub fn get_by_name(&self, name: &str) -> Option<&Term> {
        self.map.get(&Variable::new(name))
    }

    pub fn set(&mut self, var: Variable, term: Term) {
        self.map.insert(var, term);
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Term)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The result of a `SELECT` query: projected variables plus solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solutions {
    pub vars: Vec<Variable>,
    pub bindings: Vec<Binding>,
}

impl Solutions {
    /// Terms bound to `var` across all solutions, deduplicated, in
    /// first-seen order.
    pub fn column(&self, var: &str) -> Vec<Term> {
        let v = Variable::new(var);
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for b in &self.bindings {
            if let Some(t) = b.get(&v) {
                if seen.insert(t) {
                    out.push(t.clone());
                }
            }
        }
        out
    }

    /// IRIs bound to `var` (skipping non-IRI bindings), deduplicated.
    pub fn iri_column(&self, var: &str) -> Vec<Iri> {
        self.column(var)
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    pub fn len(&self) -> usize {
        self.bindings.len()
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// When `true`, patterns outside `GRAPH` blocks (and queries without
    /// `FROM`) match the *union* of all graphs, mirroring a union-default
    /// SPARQL dataset. When `false`, they match only the default graph.
    ///
    /// The BDI ontology stores `G`, `S` and `M` in separate named graphs and
    /// the paper's internal queries (`FROM T`) range over all of them, so the
    /// ontology layer evaluates with this enabled.
    pub default_graph_as_union: bool,
}

/// A pattern position, compiled to id space: a constant id or a slot in the
/// query's variable table.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Const(u32),
    Var(usize),
}

/// The graph selector, compiled to id space.
#[derive(Debug, Clone, Copy)]
enum GraphSel {
    /// A fixed graph view (`FROM`, `GRAPH <iri>`, default, union).
    Fixed(IdGraph),
    /// `GRAPH ?g` — slot in the variable table (binds the graph IRI's term
    /// id).
    Var(usize),
}

#[derive(Debug, Clone, Copy)]
struct CompiledPattern {
    s: Pos,
    p: Pos,
    o: Pos,
    g: GraphSel,
}

/// Unbound slot sentinel. The interner reserves `u32::MAX` (it aborts before
/// handing it out as an id), so no real term id collides with it.
const UNBOUND: u32 = u32::MAX;

/// Flat row storage: `width` slots per row in one contiguous buffer, so the
/// join loop never allocates per row.
struct RowArena {
    width: usize,
    data: Vec<u32>,
}

impl RowArena {
    fn new(width: usize) -> Self {
        Self {
            width,
            data: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        // `width` is always >= 1: variable-free queries get one pad slot.
        self.data.len() / self.width
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Appends a copy of `row`, returning the new row's mutable slice for
    /// in-place binding.
    fn push(&mut self, row: &[u32]) -> &mut [u32] {
        let start = self.data.len();
        self.data.extend_from_slice(row);
        &mut self.data[start..start + self.width]
    }

    /// Drops the most recently pushed row (consistency check failed).
    fn pop(&mut self) {
        self.data.truncate(self.data.len() - self.width);
    }
}

/// The per-query encoding context: query-local ids for terms outside the
/// store's vocabulary (`VALUES` rows and constants may mention them; they
/// can never match a scan, but they must still project).
struct Encoder {
    base: u32,
    extra: Vec<Term>,
    extra_ids: HashMap<Term, u32>,
}

impl Encoder {
    fn new(reader: &StoreReader<'_>) -> Self {
        let base = u32::try_from(reader.term_count()).expect("id space exceeds u32");
        Self {
            base,
            extra: Vec::new(),
            extra_ids: HashMap::new(),
        }
    }

    /// Encodes a term, assigning a query-local id if the store has none.
    fn encode(&mut self, reader: &StoreReader<'_>, term: &Term) -> u32 {
        if let Some(id) = reader.term_id(term) {
            return id.raw();
        }
        if let Some(&id) = self.extra_ids.get(term) {
            return id;
        }
        let id = self.base + self.extra.len() as u32;
        self.extra.push(term.clone());
        self.extra_ids.insert(term.clone(), id);
        id
    }

    /// Decodes any id this encoder produced.
    fn decode<'a>(&'a self, reader: &'a StoreReader<'a>, id: u32) -> &'a Term {
        if id < self.base {
            reader.resolve(TermId::from_raw(id))
        } else {
            &self.extra[(id - self.base) as usize]
        }
    }

    /// The graph code an id denotes when used in graph position: store ids
    /// shift by one (0 is the default graph); query-local ids cannot name a
    /// stored graph, so they map to an impossible scan.
    fn graph_code_of(&self, id: u32) -> Option<u32> {
        if id < self.base {
            Some(id + 1)
        } else {
            None
        }
    }
}

/// The id-space result of [`solve`]: the variable table, the encoder (for
/// decoding query-local ids) and the surviving rows.
struct Solved {
    vars: Vec<Variable>,
    encoder: Encoder,
    rows: RowArena,
}

/// Evaluates a query against a store, materializing term-space bindings.
pub fn evaluate(store: &QuadStore, query: &SelectQuery, options: &EvalOptions) -> Solutions {
    let reader = store.reader();
    let projection = query.projection();
    let Some(solved) = solve(&reader, query, options) else {
        return Solutions {
            vars: projection,
            bindings: Vec::new(),
        };
    };

    // ---- Decode surviving rows into the public view.
    let Solved {
        vars,
        encoder,
        rows,
    } = solved;
    let bindings = (0..rows.len())
        .map(|i| {
            let mut b = Binding::default();
            for (slot, &id) in rows.row(i).iter().enumerate() {
                if id != UNBOUND && slot < vars.len() {
                    b.set(vars[slot].clone(), encoder.decode(&reader, id).clone());
                }
            }
            b
        })
        .collect();

    Solutions {
        vars: projection,
        bindings,
    }
}

/// Evaluates a query and returns only the number of solutions, never leaving
/// id space — the cheap form for existence checks and cardinalities.
pub fn evaluate_count(store: &QuadStore, query: &SelectQuery, options: &EvalOptions) -> usize {
    let reader = store.reader();
    solve(&reader, query, options).map_or(0, |s| s.rows.len())
}

/// Runs the encode → order → join pipeline in id space. `None` means the
/// query is statically unsatisfiable (a named graph or `FROM` target that
/// holds no quads).
fn solve(reader: &StoreReader<'_>, query: &SelectQuery, options: &EvalOptions) -> Option<Solved> {
    let mut encoder = Encoder::new(reader);

    // ---- Variable table: slot index per variable, first-appearance order.
    let mut vars: Vec<Variable> = Vec::new();
    let mut slot_of = HashMap::new();
    let slot =
        |v: &Variable, vars: &mut Vec<Variable>, slot_of: &mut HashMap<Variable, usize>| -> usize {
            if let Some(&s) = slot_of.get(v) {
                return s;
            }
            vars.push(v.clone());
            slot_of.insert(v.clone(), vars.len() - 1);
            vars.len() - 1
        };
    if let Some(values) = &query.values {
        for v in &values.vars {
            slot(v, &mut vars, &mut slot_of);
        }
    }
    for qp in &query.patterns {
        for v in qp.pattern.variables() {
            slot(v, &mut vars, &mut slot_of);
        }
        if let GraphSpec::Var(v) = &qp.graph {
            slot(v, &mut vars, &mut slot_of);
        }
    }
    // Variable-free queries still need one row to carry existence.
    let width = vars.len().max(1);

    // ---- Seed rows from the VALUES table (Code 4 joins it with the BGP).
    let mut rows = RowArena::new(width);
    let blank_row = vec![UNBOUND; width];
    match &query.values {
        Some(values) => {
            for row in &values.rows {
                let slots = rows.push(&blank_row);
                for (var, term) in values.vars.iter().zip(row) {
                    slots[slot_of[var]] = encoder.encode(reader, term);
                }
            }
        }
        None => {
            rows.push(&blank_row);
        }
    }

    // ---- Compile patterns to id space.
    let active_graph = match &query.from {
        // FROM naming a graph with no quads makes every Active-graph
        // pattern unsatisfiable (encoded as None).
        Some(iri) => reader.iri_id(iri).map(|id| IdGraph::Code(id.raw() + 1)),
        None if options.default_graph_as_union => Some(IdGraph::Any),
        None => Some(IdGraph::Code(0)),
    };

    let mut compiled: Vec<CompiledPattern> = Vec::with_capacity(query.patterns.len());
    for qp in &query.patterns {
        let pos = |tv: &TermOrVar, encoder: &mut Encoder| match tv {
            TermOrVar::Term(t) => Pos::Const(encoder.encode(reader, t)),
            TermOrVar::Var(v) => Pos::Var(slot_of[v]),
        };
        let s = pos(&qp.pattern.subject, &mut encoder);
        let p = pos(&qp.pattern.predicate, &mut encoder);
        let o = pos(&qp.pattern.object, &mut encoder);
        let g = match &qp.graph {
            GraphSpec::Active => match active_graph {
                Some(g) => GraphSel::Fixed(g),
                None => return None,
            },
            GraphSpec::Named(iri) => match reader.iri_id(iri) {
                Some(id) => GraphSel::Fixed(IdGraph::Code(id.raw() + 1)),
                None => return None,
            },
            GraphSpec::Var(v) => GraphSel::Var(slot_of[v]),
        };
        compiled.push(CompiledPattern { s, p, o, g });
    }

    // ---- Greedy ordering: repeatedly pick the pattern with the most bound
    // positions (constants + already-chosen variables).
    let mut bound_slots: Vec<bool> = vec![false; width];
    if let Some(values) = &query.values {
        for v in &values.vars {
            bound_slots[slot_of[v]] = true;
        }
    }
    let mut remaining = compiled;
    let mut ordered: Vec<CompiledPattern> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, cp)| {
                let mut score = 0usize;
                for pos in [cp.s, cp.p, cp.o] {
                    match pos {
                        Pos::Const(_) => score += 2,
                        Pos::Var(s) if bound_slots[s] => score += 1,
                        Pos::Var(_) => {}
                    }
                }
                score
            })
            .expect("remaining is non-empty");
        let cp = remaining.remove(idx);
        for pos in [cp.s, cp.p, cp.o] {
            if let Pos::Var(s) = pos {
                bound_slots[s] = true;
            }
        }
        if let GraphSel::Var(s) = cp.g {
            bound_slots[s] = true;
        }
        ordered.push(cp);
    }

    // ---- Join loop, entirely over id rows in flat arenas.
    for cp in &ordered {
        let mut next = RowArena::new(width);
        // Heuristic: each surviving row extends to at least one row.
        next.data.reserve(rows.data.len());
        for i in 0..rows.len() {
            extend_row(reader, &encoder, cp, rows.row(i), &mut next);
        }
        rows = next;
        if rows.data.is_empty() {
            break;
        }
    }

    Some(Solved {
        vars,
        encoder,
        rows,
    })
}

/// Extends one row against one pattern: resolves bound positions, scans the
/// store, and pushes every consistent extension into `out`.
fn extend_row(
    reader: &StoreReader<'_>,
    encoder: &Encoder,
    cp: &CompiledPattern,
    row: &[u32],
    out: &mut RowArena,
) {
    let resolve = |pos: Pos| -> Option<u32> {
        match pos {
            Pos::Const(id) => Some(id),
            Pos::Var(slot) if row[slot] != UNBOUND => Some(row[slot]),
            Pos::Var(_) => None,
        }
    };
    let s = resolve(cp.s);
    let p = resolve(cp.p);
    let o = resolve(cp.o);
    let g = match cp.g {
        GraphSel::Fixed(g) => g,
        GraphSel::Var(slot) if row[slot] != UNBOUND => {
            // A bound graph variable scans exactly that named graph; ids
            // outside the store's range (or non-graph terms) match nothing.
            match encoder.graph_code_of(row[slot]) {
                Some(code) => IdGraph::Code(code),
                None => return,
            }
        }
        GraphSel::Var(_) => IdGraph::AnyNamed,
    };

    reader.for_each_match(IdPattern { s, p, o, g }, |[kg, ks, kp, ko]| {
        let extended = out.push(row);
        let mut ok = true;
        let mut bind = |pos: Pos, id: u32, extended: &mut [u32]| match pos {
            Pos::Const(_) => {}
            Pos::Var(slot) => {
                if extended[slot] == UNBOUND {
                    extended[slot] = id;
                } else if extended[slot] != id {
                    // Repeated variable within this pattern disagreeing
                    // (scan-bound occurrences always agree already).
                    ok = false;
                }
            }
        };
        bind(cp.s, ks, extended);
        bind(cp.p, kp, extended);
        bind(cp.o, ko, extended);
        if let GraphSel::Var(slot) = cp.g {
            // kg > 0 always: AnyNamed / Code(named) scans never yield the
            // default graph here.
            debug_assert!(kg > 0);
            bind(Pos::Var(slot), kg - 1, extended);
        }
        if !ok {
            out.pop();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphName, Literal};
    use crate::sparql::parser::parse_query;
    use crate::turtle::PrefixMap;

    fn store() -> QuadStore {
        let s = QuadStore::new();
        let g = GraphName::named(Iri::new("http://e/G"));
        let w1 = GraphName::named(Iri::new("http://e/w1"));
        s.insert_in(
            &g,
            Iri::new("http://e/App"),
            Iri::new("http://e/hasMonitor"),
            Iri::new("http://e/Monitor"),
        );
        s.insert_in(
            &g,
            Iri::new("http://e/App"),
            Iri::new("http://e/hasFeature"),
            Iri::new("http://e/appId"),
        );
        s.insert_in(
            &g,
            Iri::new("http://e/Monitor"),
            Iri::new("http://e/hasFeature"),
            Iri::new("http://e/monitorId"),
        );
        s.insert_in(
            &w1,
            Iri::new("http://e/Monitor"),
            Iri::new("http://e/hasFeature"),
            Iri::new("http://e/monitorId"),
        );
        s
    }

    fn prefixes() -> PrefixMap {
        let mut p = PrefixMap::new();
        p.insert("e", "http://e/");
        p
    }

    #[test]
    fn bgp_with_variables_joins() {
        let q = parse_query(
            "SELECT ?c ?f FROM <http://e/G> WHERE { ?c e:hasFeature ?f . }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn from_graph_scopes_matching() {
        let q = parse_query(
            "SELECT ?c WHERE { ?c e:hasFeature e:monitorId . }",
            &prefixes(),
        )
        .unwrap();
        // Without FROM and without union default: default graph only → empty.
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert!(sols.is_empty());
        // Union default: both G and w1 match, deduplication happens per
        // binding so the same ?c appears twice.
        let sols = evaluate(
            &store(),
            &q,
            &EvalOptions {
                default_graph_as_union: true,
            },
        );
        assert_eq!(sols.column("c").len(), 1);
    }

    #[test]
    fn graph_variable_binds_named_graphs() {
        let q = parse_query(
            "SELECT ?g WHERE { GRAPH ?g { e:Monitor e:hasFeature e:monitorId } }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        let graphs = sols.iri_column("g");
        assert_eq!(graphs.len(), 2); // both G and w1 contain the triple
    }

    #[test]
    fn values_clause_seeds_bindings() {
        let q = parse_query(
            "SELECT ?f FROM <http://e/G> WHERE {
                VALUES (?f) { (e:appId) (e:monitorId) }
                ?c e:hasFeature ?f .
             }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn repeated_variable_must_agree() {
        let s = QuadStore::new();
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/a"),
        ));
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/b"),
        ));
        let q = parse_query("SELECT ?x WHERE { ?x e:p ?x . }", &prefixes()).unwrap();
        let sols = evaluate(&s, &q, &EvalOptions::default());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.column("x"), vec![Term::iri("http://e/a")]);
    }

    #[test]
    fn chained_join_over_two_patterns() {
        let q = parse_query(
            "SELECT ?f FROM <http://e/G> WHERE {
                e:App e:hasMonitor ?m .
                ?m e:hasFeature ?f .
             }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.column("f"), vec![Term::iri("http://e/monitorId")]);
    }

    #[test]
    fn unmatched_pattern_yields_no_solutions() {
        let q = parse_query(
            "SELECT ?x FROM <http://e/G> WHERE { ?x e:nonexistent ?y . }",
            &prefixes(),
        )
        .unwrap();
        assert!(evaluate(&store(), &q, &EvalOptions::default()).is_empty());
    }

    #[test]
    fn values_terms_outside_store_vocabulary_still_project() {
        // A VALUES row whose term occurs in no quad must survive when no
        // pattern constrains it (the paper's Code 3 binds projection vars to
        // attribute IRIs that may be newer than the data).
        let s = QuadStore::new();
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/b"),
        ));
        let q = parse_query(
            "SELECT ?v WHERE { VALUES (?v) { (e:unknown) (e:a) } }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&s, &q, &EvalOptions::default());
        assert_eq!(sols.len(), 2);
        assert_eq!(
            sols.column("v"),
            vec![Term::iri("http://e/unknown"), Term::iri("http://e/a")]
        );
    }

    #[test]
    fn values_term_outside_vocabulary_joined_against_pattern_is_empty() {
        let s = QuadStore::new();
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/b"),
        ));
        let q = parse_query(
            "SELECT ?o WHERE { VALUES (?s) { (e:unknown) } ?s e:p ?o . }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(
            &s,
            &q,
            &EvalOptions {
                default_graph_as_union: true,
            },
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn from_nonexistent_graph_is_empty() {
        let q = parse_query(
            "SELECT ?s FROM <http://e/no-such-graph> WHERE { ?s e:hasFeature ?f . }",
            &prefixes(),
        )
        .unwrap();
        assert!(evaluate(&store(), &q, &EvalOptions::default()).is_empty());
    }

    #[test]
    fn graph_variable_shared_with_object_position_joins_on_term_identity() {
        // ?g is used both as the graph selector and an object: the same IRI
        // term must satisfy both occurrences.
        let s = QuadStore::new();
        let g1 = GraphName::named(Iri::new("http://e/g1"));
        let g2 = GraphName::named(Iri::new("http://e/g2"));
        // g1 contains a triple pointing at g1 (self-describing); g2 points at g1.
        s.insert_in(
            &g1,
            Iri::new("http://e/x"),
            Iri::new("http://e/inGraph"),
            Iri::new("http://e/g1"),
        );
        s.insert_in(
            &g2,
            Iri::new("http://e/y"),
            Iri::new("http://e/inGraph"),
            Iri::new("http://e/g1"),
        );
        let q = parse_query(
            "SELECT ?s ?g WHERE { GRAPH ?g { ?s e:inGraph ?g } }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&s, &q, &EvalOptions::default());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.column("s"), vec![Term::iri("http://e/x")]);
    }

    #[test]
    fn evaluate_count_agrees_with_evaluate() {
        let s = store();
        for q in [
            "SELECT ?c ?f FROM <http://e/G> WHERE { ?c e:hasFeature ?f . }",
            "SELECT ?g WHERE { GRAPH ?g { e:Monitor e:hasFeature e:monitorId } }",
            "SELECT ?x FROM <http://e/G> WHERE { ?x e:nonexistent ?y . }",
        ] {
            let q = parse_query(q, &prefixes()).unwrap();
            let opts = EvalOptions::default();
            assert_eq!(evaluate_count(&s, &q, &opts), evaluate(&s, &q, &opts).len());
        }
    }

    #[test]
    fn literal_constants_match_exactly() {
        let s = QuadStore::new();
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Literal::integer(42),
        ));
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/b"),
            Iri::new("http://e/p"),
            Literal::string("42"),
        ));
        let q = parse_query("SELECT ?s WHERE { ?s e:p 42 . }", &prefixes()).unwrap();
        let sols = evaluate(
            &s,
            &q,
            &EvalOptions {
                default_graph_as_union: true,
            },
        );
        assert_eq!(sols.column("s"), vec![Term::iri("http://e/a")]);
    }
}
