//! Evaluation of the SPARQL subset over a [`QuadStore`].
//!
//! Semantics follow the SPARQL algebra of Code 4: the `VALUES` table is
//! joined with the basic graph pattern, then the projection is applied.
//! BGP matching uses greedy most-bound-first pattern ordering, substituting
//! bindings as they accumulate — each step is a single index range scan in
//! the store.

use super::ast::*;
use crate::model::{GraphName, Iri, Term};
use crate::store::{GraphPattern, QuadStore};
use std::collections::HashMap;

/// One solution mapping (variable → term).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Binding {
    map: HashMap<Variable, Term>,
}

impl Binding {
    pub fn get(&self, var: &Variable) -> Option<&Term> {
        self.map.get(var)
    }

    /// Convenience lookup by variable name.
    pub fn get_by_name(&self, name: &str) -> Option<&Term> {
        self.map.get(&Variable::new(name))
    }

    pub fn set(&mut self, var: Variable, term: Term) {
        self.map.insert(var, term);
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Term)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The result of a `SELECT` query: projected variables plus solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solutions {
    pub vars: Vec<Variable>,
    pub bindings: Vec<Binding>,
}

impl Solutions {
    /// Terms bound to `var` across all solutions, deduplicated, in order.
    pub fn column(&self, var: &str) -> Vec<Term> {
        let v = Variable::new(var);
        let mut seen = Vec::new();
        for b in &self.bindings {
            if let Some(t) = b.get(&v) {
                if !seen.contains(t) {
                    seen.push(t.clone());
                }
            }
        }
        seen
    }

    /// IRIs bound to `var` (skipping non-IRI bindings), deduplicated.
    pub fn iri_column(&self, var: &str) -> Vec<Iri> {
        self.column(var)
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    pub fn len(&self) -> usize {
        self.bindings.len()
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// When `true`, patterns outside `GRAPH` blocks (and queries without
    /// `FROM`) match the *union* of all graphs, mirroring a union-default
    /// SPARQL dataset. When `false`, they match only the default graph.
    ///
    /// The BDI ontology stores `G`, `S` and `M` in separate named graphs and
    /// the paper's internal queries (`FROM T`) range over all of them, so the
    /// ontology layer evaluates with this enabled.
    pub default_graph_as_union: bool,
}

/// Evaluates a query against a store.
pub fn evaluate(store: &QuadStore, query: &SelectQuery, options: &EvalOptions) -> Solutions {
    // Seed solutions from the VALUES table (Code 4 joins the table with the
    // BGP), or with the single empty binding.
    let mut solutions: Vec<Binding> = match &query.values {
        Some(values) => values
            .rows
            .iter()
            .map(|row| {
                let mut b = Binding::default();
                for (var, term) in values.vars.iter().zip(row) {
                    b.set(var.clone(), term.clone());
                }
                b
            })
            .collect(),
        None => vec![Binding::default()],
    };

    // Greedy ordering: repeatedly pick the unevaluated pattern with the most
    // statically bound positions (constants + already-chosen variables).
    let mut remaining: Vec<&QuadPattern> = query.patterns.iter().collect();
    let mut chosen_vars: Vec<Variable> = query
        .values
        .as_ref()
        .map(|v| v.vars.clone())
        .unwrap_or_default();
    let mut ordered: Vec<&QuadPattern> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, qp)| {
                let p = &qp.pattern;
                let mut score = 0usize;
                for pos in [&p.subject, &p.predicate, &p.object] {
                    match pos {
                        TermOrVar::Term(_) => score += 2,
                        TermOrVar::Var(v) if chosen_vars.contains(v) => score += 1,
                        TermOrVar::Var(_) => {}
                    }
                }
                score
            })
            .expect("remaining is non-empty");
        let qp = remaining.remove(idx);
        for v in qp.pattern.variables() {
            if !chosen_vars.contains(v) {
                chosen_vars.push(v.clone());
            }
        }
        if let GraphSpec::Var(v) = &qp.graph {
            if !chosen_vars.contains(v) {
                chosen_vars.push(v.clone());
            }
        }
        ordered.push(qp);
    }

    for qp in ordered {
        let mut next: Vec<Binding> = Vec::new();
        for binding in &solutions {
            extend_binding(store, qp, binding, query.from.as_ref(), options, &mut next);
        }
        solutions = next;
        if solutions.is_empty() {
            break;
        }
    }

    let vars = query.projection();
    Solutions {
        vars,
        bindings: solutions,
    }
}

fn resolve(pos: &TermOrVar, binding: &Binding) -> Option<Term> {
    match pos {
        TermOrVar::Term(t) => Some(t.clone()),
        TermOrVar::Var(v) => binding.get(v).cloned(),
    }
}

fn extend_binding(
    store: &QuadStore,
    qp: &QuadPattern,
    binding: &Binding,
    from: Option<&Iri>,
    options: &EvalOptions,
    out: &mut Vec<Binding>,
) {
    let s = resolve(&qp.pattern.subject, binding);
    let p = resolve(&qp.pattern.predicate, binding);
    let o = resolve(&qp.pattern.object, binding);

    // Predicate constants must be IRIs; a non-IRI binding cannot match.
    let p_iri = match &p {
        Some(Term::Iri(iri)) => Some(iri.clone()),
        Some(_) => return,
        None => None,
    };

    let graph_pattern = match &qp.graph {
        GraphSpec::Active => match from {
            Some(iri) => GraphPattern::Named(iri.clone()),
            None if options.default_graph_as_union => GraphPattern::Any,
            None => GraphPattern::Default,
        },
        GraphSpec::Named(iri) => GraphPattern::Named(iri.clone()),
        GraphSpec::Var(v) => match binding.get(v) {
            Some(Term::Iri(iri)) => GraphPattern::Named(iri.clone()),
            Some(_) => return,
            None => GraphPattern::AnyNamed,
        },
    };

    for quad in store.match_quads(s.as_ref(), p_iri.as_ref(), o.as_ref(), &graph_pattern) {
        let mut b = binding.clone();
        let mut ok = true;
        if let TermOrVar::Var(v) = &qp.pattern.subject {
            ok &= bind(&mut b, v, quad.subject.clone());
        }
        if let TermOrVar::Var(v) = &qp.pattern.predicate {
            ok &= bind(&mut b, v, Term::Iri(quad.predicate.clone()));
        }
        if let TermOrVar::Var(v) = &qp.pattern.object {
            ok &= bind(&mut b, v, quad.object.clone());
        }
        if let GraphSpec::Var(v) = &qp.graph {
            if let GraphName::Named(iri) = &quad.graph {
                ok &= bind(&mut b, v, Term::Iri(iri.clone()));
            } else {
                ok = false;
            }
        }
        if ok {
            out.push(b);
        }
    }
}

/// Binds `var` to `term`, failing when already bound to a different term.
fn bind(binding: &mut Binding, var: &Variable, term: Term) -> bool {
    match binding.get(var) {
        Some(existing) => existing == &term,
        None => {
            binding.set(var.clone(), term);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parser::parse_query;
    use crate::turtle::PrefixMap;

    fn store() -> QuadStore {
        let s = QuadStore::new();
        let g = GraphName::named(Iri::new("http://e/G"));
        let w1 = GraphName::named(Iri::new("http://e/w1"));
        s.insert_in(&g, Iri::new("http://e/App"), Iri::new("http://e/hasMonitor"), Iri::new("http://e/Monitor"));
        s.insert_in(&g, Iri::new("http://e/App"), Iri::new("http://e/hasFeature"), Iri::new("http://e/appId"));
        s.insert_in(&g, Iri::new("http://e/Monitor"), Iri::new("http://e/hasFeature"), Iri::new("http://e/monitorId"));
        s.insert_in(&w1, Iri::new("http://e/Monitor"), Iri::new("http://e/hasFeature"), Iri::new("http://e/monitorId"));
        s
    }

    fn prefixes() -> PrefixMap {
        let mut p = PrefixMap::new();
        p.insert("e", "http://e/");
        p
    }

    #[test]
    fn bgp_with_variables_joins() {
        let q = parse_query(
            "SELECT ?c ?f FROM <http://e/G> WHERE { ?c e:hasFeature ?f . }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn from_graph_scopes_matching() {
        let q = parse_query(
            "SELECT ?c WHERE { ?c e:hasFeature e:monitorId . }",
            &prefixes(),
        )
        .unwrap();
        // Without FROM and without union default: default graph only → empty.
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert!(sols.is_empty());
        // Union default: both G and w1 match, deduplication happens per
        // binding so the same ?c appears twice.
        let sols = evaluate(
            &store(),
            &q,
            &EvalOptions {
                default_graph_as_union: true,
            },
        );
        assert_eq!(sols.column("c").len(), 1);
    }

    #[test]
    fn graph_variable_binds_named_graphs() {
        let q = parse_query(
            "SELECT ?g WHERE { GRAPH ?g { e:Monitor e:hasFeature e:monitorId } }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        let graphs = sols.iri_column("g");
        assert_eq!(graphs.len(), 2); // both G and w1 contain the triple
    }

    #[test]
    fn values_clause_seeds_bindings() {
        let q = parse_query(
            "SELECT ?f FROM <http://e/G> WHERE {
                VALUES (?f) { (e:appId) (e:monitorId) }
                ?c e:hasFeature ?f .
             }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn repeated_variable_must_agree() {
        let s = QuadStore::new();
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/a"),
        ));
        s.insert_triple(&crate::model::Triple::new(
            Iri::new("http://e/a"),
            Iri::new("http://e/p"),
            Iri::new("http://e/b"),
        ));
        let q = parse_query("SELECT ?x WHERE { ?x e:p ?x . }", &prefixes()).unwrap();
        let sols = evaluate(&s, &q, &EvalOptions::default());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.column("x"), vec![Term::iri("http://e/a")]);
    }

    #[test]
    fn chained_join_over_two_patterns() {
        let q = parse_query(
            "SELECT ?f FROM <http://e/G> WHERE {
                e:App e:hasMonitor ?m .
                ?m e:hasFeature ?f .
             }",
            &prefixes(),
        )
        .unwrap();
        let sols = evaluate(&store(), &q, &EvalOptions::default());
        assert_eq!(sols.column("f"), vec![Term::iri("http://e/monitorId")]);
    }

    #[test]
    fn unmatched_pattern_yields_no_solutions() {
        let q = parse_query(
            "SELECT ?x FROM <http://e/G> WHERE { ?x e:nonexistent ?y . }",
            &prefixes(),
        )
        .unwrap();
        assert!(evaluate(&store(), &q, &EvalOptions::default()).is_empty());
    }
}
