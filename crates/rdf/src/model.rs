//! RDF term, triple and quad data model.
//!
//! The model follows RDF 1.1 Concepts: a *term* is an IRI, a blank node, or a
//! literal (plain, language-tagged or datatyped). Terms are cheap to clone —
//! all string payloads live behind [`Arc<str>`] so that the same IRI shared
//! across millions of quads costs one allocation.

use std::fmt;
use std::sync::Arc;

/// An IRI reference (absolute or prefixed-expanded).
///
/// IRIs are compared by string value. Construction does not validate the
/// grammar beyond rejecting embedded whitespace and angle brackets, which is
/// the level of strictness the paper's vocabularies need: all IRIs we handle
/// are produced programmatically from namespace constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from a string, panicking on characters that can never
    /// occur in a serialized IRI. Use [`Iri::try_new`] for fallible parsing.
    pub fn new(value: impl AsRef<str>) -> Self {
        Self::try_new(value.as_ref()).expect("invalid IRI")
    }

    /// Fallible constructor rejecting whitespace, `<`, `>` and `"`.
    pub fn try_new(value: &str) -> Result<Self, InvalidTerm> {
        if value.is_empty() {
            return Err(InvalidTerm::EmptyIri);
        }
        if value
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '"'))
        {
            return Err(InvalidTerm::IllegalIriChar(value.to_owned()));
        }
        Ok(Self(Arc::from(value)))
    }

    /// The IRI string, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the *local name*: the suffix after the last `/` or `#`.
    ///
    /// This mirrors the paper's convention of addressing ontology elements by
    /// their suffix (e.g. `sup:lagRatio` → `lagRatio`).
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['/', '#']) {
            Some(idx) => &s[idx + 1..],
            None => s,
        }
    }

    /// Joins a namespace IRI with a suffix, inserting no separator: namespace
    /// IRIs in this codebase always end in `/` or `#`.
    pub fn join(&self, suffix: &str) -> Iri {
        let mut s = String::with_capacity(self.0.len() + suffix.len());
        s.push_str(&self.0);
        s.push_str(suffix);
        Iri::new(s)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(value: &str) -> Self {
        Iri::new(value)
    }
}

impl From<&Iri> for Iri {
    fn from(value: &Iri) -> Self {
        value.clone()
    }
}

/// A blank node with a store-local label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label (no leading `_:`).
    pub fn new(label: impl AsRef<str>) -> Self {
        Self(Arc::from(label.as_ref()))
    }

    /// The label, without the `_:` prefix.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: a lexical form plus either a language tag or a datatype.
///
/// Plain literals carry the implicit datatype `xsd:string`, per RDF 1.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    lang: Option<Arc<str>>,
    datatype: Option<Iri>,
}

impl Literal {
    /// A plain (string) literal.
    pub fn string(value: impl AsRef<str>) -> Self {
        Self {
            lexical: Arc::from(value.as_ref()),
            lang: None,
            datatype: None,
        }
    }

    /// A language-tagged literal (`"chat"@en`).
    pub fn lang_string(value: impl AsRef<str>, lang: impl AsRef<str>) -> Self {
        Self {
            lexical: Arc::from(value.as_ref()),
            lang: Some(Arc::from(lang.as_ref().to_ascii_lowercase().as_str())),
            datatype: None,
        }
    }

    /// A typed literal (`"12"^^xsd:integer`).
    pub fn typed(value: impl AsRef<str>, datatype: Iri) -> Self {
        Self {
            lexical: Arc::from(value.as_ref()),
            lang: None,
            datatype: Some(datatype),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Self::typed(value.to_string(), crate::vocab::xsd::INTEGER.clone())
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Self::typed(value.to_string(), crate::vocab::xsd::DOUBLE.clone())
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Self::typed(value.to_string(), crate::vocab::xsd::BOOLEAN.clone())
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag, if any (lower-cased).
    pub fn lang(&self) -> Option<&str> {
        self.lang.as_deref()
    }

    /// The explicit datatype, if any. Plain literals return `None`; callers
    /// that need RDF 1.1 semantics should treat that as `xsd:string`.
    pub fn datatype(&self) -> Option<&Iri> {
        self.datatype.as_ref()
    }

    /// Parses the lexical form as an integer if the datatype permits.
    pub fn as_integer(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", crate::turtle::escape_literal(&self.lexical))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        }
        Ok(())
    }
}

/// Any RDF term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

/// `Term`'s hash is written out manually (not derived) so the interner can
/// hash an `Iri` *as if* it were wrapped in `Term::Iri` without building the
/// wrapper — see `hash_term_iri` below. The variant tag is a fixed `u8`.
impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Term::Iri(iri) => hash_term_iri(iri, state),
            Term::Blank(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Term::Literal(l) => {
                state.write_u8(2);
                l.hash(state);
            }
        }
    }
}

/// Hashes an IRI with the exact byte stream `Term::Iri(iri).hash(..)` would
/// produce. Kept next to `Term`'s impl so the two cannot drift apart.
pub(crate) fn hash_term_iri<H: std::hash::Hasher>(iri: &Iri, state: &mut H) {
    use std::hash::Hash;
    state.write_u8(0);
    iri.hash(state);
}

impl Term {
    /// Convenience constructor for IRI terms.
    pub fn iri(value: impl AsRef<str>) -> Self {
        Term::Iri(Iri::new(value))
    }

    /// Returns the IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// Returns the literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// True when the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True when the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => iri.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<&Iri> for Term {
    fn from(value: &Iri) -> Self {
        Term::Iri(value.clone())
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

impl From<BlankNode> for Term {
    fn from(value: BlankNode) -> Self {
        Term::Blank(value)
    }
}

/// A triple in the default graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Iri,
    pub object: Term,
}

impl Triple {
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        Self {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

impl From<String> for Iri {
    fn from(value: String) -> Self {
        Iri::new(value)
    }
}

/// The graph component of a quad: the default graph or a named graph.
///
/// The paper's Mapping graph `M` associates each wrapper with a *named graph*
/// identifying the subgraph of `G` it provides; named graphs are therefore a
/// first-class construct here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphName {
    Default,
    Named(Iri),
}

impl GraphName {
    pub fn named(iri: impl Into<Iri>) -> Self {
        GraphName::Named(iri.into())
    }

    /// The IRI of a named graph, or `None` for the default graph.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            GraphName::Named(iri) => Some(iri),
            GraphName::Default => None,
        }
    }
}

impl fmt::Display for GraphName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphName::Default => f.write_str("DEFAULT"),
            GraphName::Named(iri) => iri.fmt(f),
        }
    }
}

impl From<Iri> for GraphName {
    fn from(value: Iri) -> Self {
        GraphName::Named(value)
    }
}

/// A quad: a triple plus the graph it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quad {
    pub subject: Term,
    pub predicate: Iri,
    pub object: Term,
    pub graph: GraphName,
}

impl Quad {
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
        graph: impl Into<GraphName>,
    ) -> Self {
        Self {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
            graph: graph.into(),
        }
    }

    /// Drops the graph component.
    pub fn into_triple(self) -> Triple {
        Triple {
            subject: self.subject,
            predicate: self.predicate,
            object: self.object,
        }
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.graph {
            GraphName::Default => {
                write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
            }
            GraphName::Named(g) => write!(
                f,
                "{} {} {} {} .",
                self.subject, self.predicate, self.object, g
            ),
        }
    }
}

/// Errors raised when constructing malformed terms.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum InvalidTerm {
    #[error("IRI must not be empty")]
    EmptyIri,
    #[error("IRI contains an illegal character: {0:?}")]
    IllegalIriChar(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_after_slash_and_hash() {
        assert_eq!(Iri::new("http://ex.org/a/b").local_name(), "b");
        assert_eq!(Iri::new("http://ex.org/ns#thing").local_name(), "thing");
        assert_eq!(Iri::new("urn:x").local_name(), "urn:x");
    }

    #[test]
    fn iri_rejects_whitespace_and_brackets() {
        assert!(Iri::try_new("http://ex.org/a b").is_err());
        assert!(Iri::try_new("http://ex.org/<x>").is_err());
        assert!(Iri::try_new("").is_err());
    }

    #[test]
    fn iri_join_concatenates() {
        let ns = Iri::new("http://ex.org/ns/");
        assert_eq!(ns.join("Monitor").as_str(), "http://ex.org/ns/Monitor");
    }

    #[test]
    fn literal_kinds() {
        let plain = Literal::string("hello");
        assert_eq!(plain.lexical(), "hello");
        assert!(plain.datatype().is_none());

        let tagged = Literal::lang_string("hello", "EN");
        assert_eq!(tagged.lang(), Some("en"));

        let typed = Literal::integer(42);
        assert_eq!(typed.as_integer(), Some(42));
        assert_eq!(
            typed.datatype().unwrap().as_str(),
            "http://www.w3.org/2001/XMLSchema#integer"
        );
    }

    #[test]
    fn term_display_round_trip_shapes() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(
            Term::Literal(Literal::string("a\"b")).to_string(),
            "\"a\\\"b\""
        );
        assert_eq!(Term::Blank(BlankNode::new("b0")).to_string(), "_:b0");
    }

    #[test]
    fn quad_display_includes_graph() {
        let q = Quad::new(
            Iri::new("http://e/s"),
            Iri::new("http://e/p"),
            Iri::new("http://e/o"),
            GraphName::named(Iri::new("http://e/g")),
        );
        assert_eq!(
            q.to_string(),
            "<http://e/s> <http://e/p> <http://e/o> <http://e/g> ."
        );
    }

    #[test]
    fn graph_name_accessors() {
        assert_eq!(GraphName::Default.as_iri(), None);
        let g = GraphName::named(Iri::new("http://e/g"));
        assert_eq!(g.as_iri().unwrap().as_str(), "http://e/g");
    }
}
