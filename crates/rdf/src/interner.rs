//! Term interning.
//!
//! The quad store does not index [`Term`] values directly: every distinct term
//! is assigned a dense `u32` [`TermId`] and all indexes operate on ids. This
//! keeps index entries at 16 bytes per quad and makes equality a register
//! compare — the dominant operation during BGP matching (see the `interning`
//! ablation bench for the measured effect).

use crate::model::Term;
use std::collections::HashMap;

/// A dense identifier for an interned [`Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional `Term ↔ TermId` table.
///
/// Not thread-safe by itself; the store wraps it (together with the indexes)
/// in a single `parking_lot::RwLock`, following the guidance of keeping
/// values accessed together under one lock.
#[derive(Debug, Default)]
pub struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("interner overflow: more than 2^32 terms"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Looks up the id of an already-interned term.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Iri, Literal};

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let t = Term::iri("http://e/a");
        let a = i.intern(&t);
        let b = i.intern(&t);
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern(&Term::iri("http://e/a"));
        let b = i.intern(&Term::iri("http://e/b"));
        let c = i.intern(&Term::Literal(Literal::string("http://e/a")));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let term = Term::Iri(Iri::new("http://e/x"));
        let id = i.intern(&term);
        assert_eq!(i.resolve(id), &term);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert!(i.get(&Term::iri("http://e/a")).is_none());
        assert!(i.is_empty());
    }
}
