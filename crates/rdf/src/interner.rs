//! Term interning.
//!
//! The quad store does not index [`Term`] values directly: every distinct term
//! is assigned a dense `u32` [`TermId`] and all indexes operate on ids. This
//! keeps index entries at 16 bytes per quad and makes equality a register
//! compare — the dominant operation during BGP matching (see the `interning`
//! ablation bench for the measured effect).
//!
//! The table is open-addressed (linear probing over a power-of-two bucket
//! array) rather than a `HashMap<Term, TermId>`: each distinct term is stored
//! exactly once in the dense `terms` vector, so interning clones the term a
//! single time, and IRI-only call sites ([`Interner::intern_iri`],
//! [`Interner::get_iri`]) hash the IRI directly without materializing a
//! temporary `Term` wrapper.

use crate::model::{Iri, Term};
use std::hash::{Hash, Hasher};

/// A dense identifier for an interned [`Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`, for id-space index keys.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from a raw index key component. The caller must have
    /// obtained the value from the same store's id space.
    pub fn from_raw(raw: u32) -> Self {
        TermId(raw)
    }
}

const EMPTY: u32 = u32::MAX;

/// FxHash-style multiplicative hasher — terms are tiny, SipHash's setup cost
/// dominates BGP matching otherwise.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Hash whole words where possible; strings (IRIs are 20-60 bytes)
        // arrive here via `str`'s `Hash`, so this is the hot path.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        self.add(tail ^ bytes.len() as u64);
    }

    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

fn hash_term(term: &Term) -> u64 {
    let mut h = FxHasher::default();
    term.hash(&mut h);
    h.finish()
}

/// Must agree with [`Term`]'s manual `Hash` impl for the `Iri` variant.
fn hash_iri_term(iri: &Iri) -> u64 {
    let mut h = FxHasher::default();
    crate::model::hash_term_iri(iri, &mut h);
    h.finish()
}

/// A bidirectional `Term ↔ TermId` table.
///
/// Not thread-safe by itself; the store wraps it (together with the indexes)
/// in a single `parking_lot::RwLock`, following the guidance of keeping
/// values accessed together under one lock.
#[derive(Debug, Default)]
pub struct Interner {
    terms: Vec<Term>,
    /// Cached hash of each interned term, index-aligned with `terms`.
    hashes: Vec<u64>,
    /// Open-addressed bucket array holding term ids; `EMPTY` marks a free
    /// slot. Length is always a power of two.
    table: Vec<u32>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    fn mask(&self) -> usize {
        self.table.len() - 1
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(16);
        self.table = vec![EMPTY; new_len];
        let mask = new_len - 1;
        for (id, &h) in self.hashes.iter().enumerate() {
            let mut slot = h as usize & mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = id as u32;
        }
    }

    /// Probes for a term with hash `h` satisfying `eq`; returns the id if
    /// found, otherwise the free slot where it belongs.
    fn probe(&self, h: u64, eq: impl Fn(&Term) -> bool) -> Result<TermId, usize> {
        let mask = self.mask();
        let mut slot = h as usize & mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                return Err(slot);
            }
            if self.hashes[id as usize] == h && eq(&self.terms[id as usize]) {
                return Ok(TermId(id));
            }
            slot = (slot + 1) & mask;
        }
    }

    fn insert_at(&mut self, slot: usize, h: u64, term: Term) -> TermId {
        // `u32::MAX` is reserved: it is the bucket table's EMPTY marker (and
        // the evaluator's UNBOUND row sentinel), so the last representable
        // u32 must never become a term id.
        let id = u32::try_from(self.terms.len())
            .ok()
            .filter(|&id| id != EMPTY)
            .expect("interner overflow: more than 2^32 - 1 terms");
        self.terms.push(term);
        self.hashes.push(h);
        self.table[slot] = id;
        // Grow at ~70% load so probe chains stay short.
        if self.terms.len() * 10 >= self.table.len() * 7 {
            self.grow();
        }
        TermId(id)
    }

    /// Interns a term, returning its id. Idempotent. The term is cloned at
    /// most once (on first sight).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if self.table.is_empty() {
            self.grow();
        }
        let h = hash_term(term);
        match self.probe(h, |t| t == term) {
            Ok(id) => id,
            Err(slot) => self.insert_at(slot, h, term.clone()),
        }
    }

    /// Interns `Term::Iri(iri)` without materializing the wrapper on lookup —
    /// the hot path for predicates and graph names.
    pub fn intern_iri(&mut self, iri: &Iri) -> TermId {
        if self.table.is_empty() {
            self.grow();
        }
        let h = hash_iri_term(iri);
        match self.probe(h, |t| matches!(t, Term::Iri(i) if i == iri)) {
            Ok(id) => id,
            Err(slot) => self.insert_at(slot, h, Term::Iri(iri.clone())),
        }
    }

    /// Looks up the id of an already-interned term.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        if self.table.is_empty() {
            return None;
        }
        self.probe(hash_term(term), |t| t == term).ok()
    }

    /// Looks up the id of `Term::Iri(iri)` without building the wrapper.
    pub fn get_iri(&self, iri: &Iri) -> Option<TermId> {
        if self.table.is_empty() {
            return None;
        }
        self.probe(
            hash_iri_term(iri),
            |t| matches!(t, Term::Iri(i) if i == iri),
        )
        .ok()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Iri, Literal};

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let t = Term::iri("http://e/a");
        let a = i.intern(&t);
        let b = i.intern(&t);
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern(&Term::iri("http://e/a"));
        let b = i.intern(&Term::iri("http://e/b"));
        let c = i.intern(&Term::Literal(Literal::string("http://e/a")));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let term = Term::Iri(Iri::new("http://e/x"));
        let id = i.intern(&term);
        assert_eq!(i.resolve(id), &term);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert!(i.get(&Term::iri("http://e/a")).is_none());
        assert!(i.is_empty());
    }

    #[test]
    fn iri_fast_path_agrees_with_term_path() {
        let mut i = Interner::new();
        let iri = Iri::new("http://e/p");
        let via_iri = i.intern_iri(&iri);
        let via_term = i.intern(&Term::Iri(iri.clone()));
        assert_eq!(via_iri, via_term);
        assert_eq!(i.get_iri(&iri), Some(via_iri));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn survives_growth_with_many_terms() {
        let mut i = Interner::new();
        let ids: Vec<TermId> = (0..10_000)
            .map(|n| i.intern(&Term::iri(format!("http://e/t/{n}"))))
            .collect();
        assert_eq!(i.len(), 10_000);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.get(&Term::iri(format!("http://e/t/{n}"))), Some(*id));
            assert_eq!(i.resolve(*id), &Term::iri(format!("http://e/t/{n}")));
        }
    }
}
