//! RDFS entailment.
//!
//! The paper restricts reasoning to the **RDFS entailment regime** (§2, §8):
//! subclass/subproperty transitivity, type propagation, and domain/range
//! typing — enough for the ontology's feature taxonomy (`sup:monitorId
//! rdfs:subClassOf sc:identifier`) to be queryable, and deliberately *not* a
//! description-logic reasoner.
//!
//! Two access paths are provided:
//!
//! * [`materialize`] — forward-chaining fixpoint that adds all inferred quads
//!   to the store (the classic pre-computation a triplestore like Jena TDB
//!   performs). Inferred instance triples land in the graph of the instance
//!   premise; inferred schema triples in the graph of their first premise.
//! * [`is_subclass_of`] / [`subclass_closure`] — on-demand reachability
//!   queries that do not mutate the store; the rewriting algorithms use these
//!   so query answering works on non-materialized ontologies too (see the
//!   `entailment` ablation bench for the trade-off).

#[cfg(test)]
use crate::model::GraphName;
use crate::model::{Iri, Quad, Term};
use crate::store::{GraphPattern, IdGraph, IdPattern, QuadStore};
use crate::vocab::{rdf, rdfs};
use std::collections::{HashSet, VecDeque};

/// Applies the RDFS rules to a fixpoint, returning the number of quads added.
///
/// Implemented rules (numbers from the RDF Semantics spec):
/// * rdfs5 — `subPropertyOf` transitivity
/// * rdfs7 — property inheritance: `(s p o), (p subPropertyOf q) ⟹ (s q o)`
/// * rdfs9 — type propagation: `(s type C), (C subClassOf D) ⟹ (s type D)`
/// * rdfs11 — `subClassOf` transitivity
/// * rdfs2 — domain typing: `(p domain C), (s p o) ⟹ (s type C)`
/// * rdfs3 — range typing: `(p range C), (s p o) ⟹ (o type C)` for non-literal `o`
pub fn materialize(store: &QuadStore) -> usize {
    let mut added_total = 0;
    loop {
        let mut new_quads: Vec<Quad> = Vec::new();

        // Schema snapshot for this round.
        let sub_class =
            store.match_quads(None, Some(&rdfs::SUB_CLASS_OF), None, &GraphPattern::Any);
        let sub_prop =
            store.match_quads(None, Some(&rdfs::SUB_PROPERTY_OF), None, &GraphPattern::Any);
        let domains = store.match_quads(None, Some(&rdfs::DOMAIN), None, &GraphPattern::Any);
        let ranges = store.match_quads(None, Some(&rdfs::RANGE), None, &GraphPattern::Any);

        // rdfs11: subClassOf transitivity.
        for q1 in &sub_class {
            for q2 in &sub_class {
                if q1.object == q2.subject && q1.subject != q2.object {
                    new_quads.push(Quad {
                        subject: q1.subject.clone(),
                        predicate: (*rdfs::SUB_CLASS_OF).clone(),
                        object: q2.object.clone(),
                        graph: q1.graph.clone(),
                    });
                }
            }
        }
        // rdfs5: subPropertyOf transitivity.
        for q1 in &sub_prop {
            for q2 in &sub_prop {
                if q1.object == q2.subject && q1.subject != q2.object {
                    new_quads.push(Quad {
                        subject: q1.subject.clone(),
                        predicate: (*rdfs::SUB_PROPERTY_OF).clone(),
                        object: q2.object.clone(),
                        graph: q1.graph.clone(),
                    });
                }
            }
        }
        // rdfs9: type propagation along subClassOf.
        for sc in &sub_class {
            for typed in store.match_quads(
                None,
                Some(&rdf::TYPE),
                Some(&sc.subject),
                &GraphPattern::Any,
            ) {
                new_quads.push(Quad {
                    subject: typed.subject.clone(),
                    predicate: (*rdf::TYPE).clone(),
                    object: sc.object.clone(),
                    graph: typed.graph.clone(),
                });
            }
        }
        // rdfs7: property inheritance.
        for sp in &sub_prop {
            let (Some(p), Some(q)) = (sp.subject.as_iri(), sp.object.as_iri()) else {
                continue;
            };
            for stmt in store.match_quads(None, Some(p), None, &GraphPattern::Any) {
                new_quads.push(Quad {
                    subject: stmt.subject.clone(),
                    predicate: q.clone(),
                    object: stmt.object.clone(),
                    graph: stmt.graph.clone(),
                });
            }
        }
        // rdfs2: domain typing.
        for dom in &domains {
            let Some(p) = dom.subject.as_iri() else {
                continue;
            };
            for stmt in store.match_quads(None, Some(p), None, &GraphPattern::Any) {
                new_quads.push(Quad {
                    subject: stmt.subject.clone(),
                    predicate: (*rdf::TYPE).clone(),
                    object: dom.object.clone(),
                    graph: stmt.graph.clone(),
                });
            }
        }
        // rdfs3: range typing (non-literal objects only).
        for ran in &ranges {
            let Some(p) = ran.subject.as_iri() else {
                continue;
            };
            for stmt in store.match_quads(None, Some(p), None, &GraphPattern::Any) {
                if stmt.object.is_literal() {
                    continue;
                }
                new_quads.push(Quad {
                    subject: stmt.object.clone(),
                    predicate: (*rdf::TYPE).clone(),
                    object: ran.object.clone(),
                    graph: stmt.graph.clone(),
                });
            }
        }

        let mut added_this_round = 0;
        for quad in new_quads {
            if store.insert(&quad) {
                added_this_round += 1;
            }
        }
        added_total += added_this_round;
        if added_this_round == 0 {
            return added_total;
        }
    }
}

/// True when `sub rdfs:subClassOf* sup` holds under RDFS entailment
/// (reflexive-transitive reachability), without materializing.
///
/// Early-exits the id-space BFS as soon as the target id is reached, never
/// decoding a term.
pub fn is_subclass_of(store: &QuadStore, sub: &Iri, sup: &Iri) -> bool {
    if sub == sup {
        return true;
    }
    let reader = store.reader();
    let (Some(start), Some(target), Some(p)) = (
        reader.iri_id(sub),
        reader.iri_id(sup),
        reader.iri_id(&rdfs::SUB_CLASS_OF),
    ) else {
        return false;
    };
    let mut seen: HashSet<u32> = HashSet::from([start.raw()]);
    let mut queue: VecDeque<u32> = VecDeque::from([start.raw()]);
    while let Some(current) = queue.pop_front() {
        let mut found = false;
        reader.for_each_match(
            IdPattern {
                s: Some(current),
                p: Some(p.raw()),
                o: None,
                g: IdGraph::Any,
            },
            |[_, _, _, o]| {
                if o == target.raw() {
                    found = true;
                }
                if seen.insert(o) {
                    queue.push_back(o);
                }
            },
        );
        if found {
            return true;
        }
    }
    false
}

/// Direction of a [`closure_ids`] walk along `rdfs:subClassOf` edges.
enum Walk {
    /// Follow `sub → sup` (subject bound, objects discovered).
    Up,
    /// Follow `sup → sub` (object bound, subjects discovered).
    Down,
}

/// Reflexive-transitive reachability along `rdfs:subClassOf`, computed
/// entirely in id space under one read lock: the BFS frontier and seen-set
/// hold `u32` ids, and terms decode once at the end. This runs per feature
/// during query rewriting, so it is a measured hot path.
///
/// The walk traverses *through* non-IRI nodes (e.g. a blank node standing
/// for a class expression) and only drops them from the decoded result —
/// RDFS reachability does not stop at a blank intermediate.
fn closure_ids(store: &QuadStore, class: &Iri, direction: Walk) -> HashSet<Iri> {
    let reader = store.reader();
    let (Some(start), Some(p)) = (reader.iri_id(class), reader.iri_id(&rdfs::SUB_CLASS_OF)) else {
        // Nothing interned: the closure is the reflexive singleton.
        return HashSet::from([class.clone()]);
    };
    let mut seen: HashSet<u32> = HashSet::from([start.raw()]);
    let mut queue: VecDeque<u32> = VecDeque::from([start.raw()]);
    while let Some(current) = queue.pop_front() {
        let pattern = match direction {
            Walk::Up => IdPattern {
                s: Some(current),
                p: Some(p.raw()),
                o: None,
                g: IdGraph::Any,
            },
            Walk::Down => IdPattern {
                s: None,
                p: Some(p.raw()),
                o: Some(current),
                g: IdGraph::Any,
            },
        };
        reader.for_each_match(pattern, |[_, s, _, o]| {
            let found = match direction {
                Walk::Up => o,
                Walk::Down => s,
            };
            if seen.insert(found) {
                queue.push_back(found);
            }
        });
    }
    seen.into_iter()
        .filter_map(
            |id| match reader.resolve(crate::interner::TermId::from_raw(id)) {
                Term::Iri(iri) => Some(iri.clone()),
                _ => None,
            },
        )
        .collect()
}

/// All (strict and reflexive) superclasses of `class` reachable through
/// `rdfs:subClassOf` in any graph.
pub fn subclass_closure(store: &QuadStore, class: &Iri) -> HashSet<Iri> {
    closure_ids(store, class, Walk::Up)
}

/// All subclasses (inverse closure) of `class`, reflexive.
pub fn superclass_of_closure(store: &QuadStore, class: &Iri) -> HashSet<Iri> {
    closure_ids(store, class, Walk::Down)
}

/// Instances of `class` under RDFS entailment: subjects typed with `class`
/// or any of its subclasses, in the given graph pattern.
pub fn instances_of(store: &QuadStore, class: &Iri, graph: &GraphPattern) -> Vec<Term> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for sub in superclass_of_closure(store, class) {
        for subject in store.subjects(&rdf::TYPE, &Term::Iri(sub), graph) {
            if seen.insert(subject.clone()) {
                out.push(subject);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(s)
    }

    fn setup_taxonomy() -> QuadStore {
        let store = QuadStore::new();
        let g = GraphName::Default;
        // monitorId ⊑ toolId ⊑ identifier
        store.insert_in(
            &g,
            iri("http://e/monitorId"),
            (*rdfs::SUB_CLASS_OF).clone(),
            iri("http://e/toolId"),
        );
        store.insert_in(
            &g,
            iri("http://e/toolId"),
            (*rdfs::SUB_CLASS_OF).clone(),
            iri("http://schema.org/identifier"),
        );
        store
    }

    #[test]
    fn subclass_reachability_is_transitive() {
        let store = setup_taxonomy();
        assert!(is_subclass_of(
            &store,
            &iri("http://e/monitorId"),
            &iri("http://schema.org/identifier")
        ));
        assert!(is_subclass_of(
            &store,
            &iri("http://e/monitorId"),
            &iri("http://e/monitorId")
        ));
        assert!(!is_subclass_of(
            &store,
            &iri("http://schema.org/identifier"),
            &iri("http://e/monitorId")
        ));
    }

    #[test]
    fn materialize_adds_transitive_subclass_edges() {
        let store = setup_taxonomy();
        let added = materialize(&store);
        assert!(added >= 1);
        assert!(store.contains(&Quad::new(
            iri("http://e/monitorId"),
            (*rdfs::SUB_CLASS_OF).clone(),
            iri("http://schema.org/identifier"),
            GraphName::Default,
        )));
    }

    #[test]
    fn materialize_propagates_types() {
        let store = setup_taxonomy();
        store.insert_in(
            &GraphName::Default,
            iri("http://e/m1"),
            (*rdf::TYPE).clone(),
            iri("http://e/monitorId"),
        );
        materialize(&store);
        assert!(store.contains(&Quad::new(
            iri("http://e/m1"),
            (*rdf::TYPE).clone(),
            iri("http://schema.org/identifier"),
            GraphName::Default,
        )));
    }

    #[test]
    fn materialize_is_idempotent() {
        let store = setup_taxonomy();
        store.insert_in(
            &GraphName::Default,
            iri("http://e/m1"),
            (*rdf::TYPE).clone(),
            iri("http://e/monitorId"),
        );
        materialize(&store);
        let len = store.len();
        assert_eq!(materialize(&store), 0);
        assert_eq!(store.len(), len);
    }

    #[test]
    fn domain_and_range_typing() {
        let store = QuadStore::new();
        let g = GraphName::Default;
        store.insert_in(
            &g,
            iri("http://e/hasMonitor"),
            (*rdfs::DOMAIN).clone(),
            iri("http://e/App"),
        );
        store.insert_in(
            &g,
            iri("http://e/hasMonitor"),
            (*rdfs::RANGE).clone(),
            iri("http://e/Monitor"),
        );
        store.insert_in(
            &g,
            iri("http://e/a1"),
            iri("http://e/hasMonitor"),
            iri("http://e/m1"),
        );
        // Literal objects must not be range-typed.
        store.insert_in(
            &g,
            iri("http://e/a1"),
            iri("http://e/hasMonitor"),
            Literal::string("oops"),
        );
        materialize(&store);
        assert!(store.contains(&Quad::new(
            iri("http://e/a1"),
            (*rdf::TYPE).clone(),
            iri("http://e/App"),
            g.clone()
        )));
        assert!(store.contains(&Quad::new(
            iri("http://e/m1"),
            (*rdf::TYPE).clone(),
            iri("http://e/Monitor"),
            g.clone()
        )));
        let typed_literals = store.match_quads(
            None,
            Some(&rdf::TYPE),
            Some(&Term::iri("http://e/Monitor")),
            &GraphPattern::Any,
        );
        assert_eq!(typed_literals.len(), 1);
    }

    #[test]
    fn subproperty_inheritance() {
        let store = QuadStore::new();
        let g = GraphName::Default;
        store.insert_in(
            &g,
            iri("http://e/p"),
            (*rdfs::SUB_PROPERTY_OF).clone(),
            iri("http://e/q"),
        );
        store.insert_in(&g, iri("http://e/s"), iri("http://e/p"), iri("http://e/o"));
        materialize(&store);
        assert!(store.contains(&Quad::new(
            iri("http://e/s"),
            iri("http://e/q"),
            iri("http://e/o"),
            g
        )));
    }

    #[test]
    fn instances_of_covers_subclasses() {
        let store = setup_taxonomy();
        let g = GraphName::Default;
        store.insert_in(
            &g,
            iri("http://e/x"),
            (*rdf::TYPE).clone(),
            iri("http://e/monitorId"),
        );
        store.insert_in(
            &g,
            iri("http://e/y"),
            (*rdf::TYPE).clone(),
            iri("http://e/toolId"),
        );
        let instances = instances_of(
            &store,
            &iri("http://schema.org/identifier"),
            &GraphPattern::Any,
        );
        assert_eq!(instances.len(), 2);
    }

    #[test]
    fn closure_traverses_through_blank_intermediates() {
        // A ⊑ _:b ⊑ C: reachability must pass through the blank node, and
        // the blank node itself must not appear in the decoded closure.
        let store = QuadStore::new();
        let g = GraphName::Default;
        let blank = Term::Blank(crate::model::BlankNode::new("b0"));
        store.insert_in(
            &g,
            iri("http://e/A"),
            (*rdfs::SUB_CLASS_OF).clone(),
            blank.clone(),
        );
        store.insert_in(&g, blank, (*rdfs::SUB_CLASS_OF).clone(), iri("http://e/C"));
        assert!(is_subclass_of(
            &store,
            &iri("http://e/A"),
            &iri("http://e/C")
        ));
        let closure = subclass_closure(&store, &iri("http://e/A"));
        assert!(closure.contains(&iri("http://e/C")));
        assert_eq!(closure.len(), 2); // A and C only; the blank is dropped
    }

    #[test]
    fn cyclic_taxonomy_terminates() {
        let store = QuadStore::new();
        let g = GraphName::Default;
        store.insert_in(
            &g,
            iri("http://e/A"),
            (*rdfs::SUB_CLASS_OF).clone(),
            iri("http://e/B"),
        );
        store.insert_in(
            &g,
            iri("http://e/B"),
            (*rdfs::SUB_CLASS_OF).clone(),
            iri("http://e/A"),
        );
        materialize(&store);
        assert!(is_subclass_of(
            &store,
            &iri("http://e/A"),
            &iri("http://e/B")
        ));
        assert!(is_subclass_of(
            &store,
            &iri("http://e/B"),
            &iri("http://e/A")
        ));
    }
}
