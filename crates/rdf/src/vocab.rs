//! Well-known RDF vocabularies used throughout the BDI ontology.
//!
//! Namespaces follow the paper: `rdf:`, `rdfs:`, `owl:`, `xsd:` plus the
//! documentation vocabularies (`voaf:`, `vann:`) referenced by Codes 6 and 7.

use crate::model::Iri;
use std::sync::OnceLock;

/// Declares a lazily-initialised namespaced IRI constant.
macro_rules! iri_const {
    ($(#[$doc:meta])* $name:ident = $value:expr) => {
        $(#[$doc])*
        pub static $name: LazyIri = LazyIri::new($value);
    };
}

/// A lazily constructed IRI constant. Dereferences to [`Iri`].
pub struct LazyIri {
    value: &'static str,
    cell: OnceLock<Iri>,
}

impl LazyIri {
    pub const fn new(value: &'static str) -> Self {
        Self {
            value,
            cell: OnceLock::new(),
        }
    }

    /// The underlying IRI string.
    pub fn as_str(&self) -> &'static str {
        self.value
    }
}

impl std::ops::Deref for LazyIri {
    type Target = Iri;

    fn deref(&self) -> &Iri {
        self.cell.get_or_init(|| Iri::new(self.value))
    }
}

impl From<&LazyIri> for Iri {
    fn from(value: &LazyIri) -> Iri {
        (**value).clone()
    }
}

impl From<&LazyIri> for crate::model::Term {
    fn from(value: &LazyIri) -> crate::model::Term {
        crate::model::Term::Iri((**value).clone())
    }
}

/// `rdf:` — the RDF syntax namespace.
pub mod rdf {
    use super::*;
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    iri_const!(
        /// `rdf:type`.
        TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
    );
    iri_const!(
        /// `rdf:Property`.
        PROPERTY = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property"
    );
}

/// `rdfs:` — RDF Schema.
pub mod rdfs {
    use super::*;
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    iri_const!(
        /// `rdfs:Class`.
        CLASS = "http://www.w3.org/2000/01/rdf-schema#Class"
    );
    iri_const!(
        /// `rdfs:subClassOf`.
        SUB_CLASS_OF = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
    );
    iri_const!(
        /// `rdfs:subPropertyOf`.
        SUB_PROPERTY_OF = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
    );
    iri_const!(
        /// `rdfs:domain`.
        DOMAIN = "http://www.w3.org/2000/01/rdf-schema#domain"
    );
    iri_const!(
        /// `rdfs:range`.
        RANGE = "http://www.w3.org/2000/01/rdf-schema#range"
    );
    iri_const!(
        /// `rdfs:label`.
        LABEL = "http://www.w3.org/2000/01/rdf-schema#label"
    );
    iri_const!(
        /// `rdfs:isDefinedBy`.
        IS_DEFINED_BY = "http://www.w3.org/2000/01/rdf-schema#isDefinedBy"
    );
    iri_const!(
        /// `rdfs:Datatype`.
        DATATYPE = "http://www.w3.org/2000/01/rdf-schema#Datatype"
    );
}

/// `owl:` — the fragment of OWL the paper uses (`owl:sameAs` for the mapping
/// function `F`).
pub mod owl {
    use super::*;
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    iri_const!(
        /// `owl:sameAs` — links a source attribute to the feature it maps to.
        SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"
    );
}

/// `xsd:` — XML Schema datatypes used for feature typing (§3.1).
pub mod xsd {
    use super::*;
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    iri_const!(STRING = "http://www.w3.org/2001/XMLSchema#string");
    iri_const!(INTEGER = "http://www.w3.org/2001/XMLSchema#integer");
    iri_const!(DOUBLE = "http://www.w3.org/2001/XMLSchema#double");
    iri_const!(BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean");
    iri_const!(DATE_TIME = "http://www.w3.org/2001/XMLSchema#dateTime");
    iri_const!(ANY_URI = "http://www.w3.org/2001/XMLSchema#anyURI");
}

/// `voaf:` — vocabulary-of-a-friend, used by the metamodel headers (Code 6/7).
pub mod voaf {
    use super::*;
    pub const NS: &str = "http://purl.org/vocommons/voaf#";
    iri_const!(VOCABULARY = "http://purl.org/vocommons/voaf#Vocabulary");
}

/// `vann:` — vocabulary annotation namespace (Code 6/7).
pub mod vann {
    use super::*;
    pub const NS: &str = "http://purl.org/vocab/vann/";
    iri_const!(PREFERRED_NAMESPACE_PREFIX = "http://purl.org/vocab/vann/preferredNamespacePrefix");
    iri_const!(PREFERRED_NAMESPACE_URI = "http://purl.org/vocab/vann/preferredNamespaceUri");
}

/// `sc:` — schema.org, reused by the paper for `sc:identifier` (the feature
/// taxonomy root marking ID semantics).
pub mod sc {
    use super::*;
    pub const NS: &str = "http://schema.org/";
    iri_const!(
        /// `sc:identifier` — superclass of all ID features (§3.1, Alg. 2/3).
        IDENTIFIER = "http://schema.org/identifier"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_resolve_to_expected_iris() {
        assert_eq!(rdf::TYPE.as_str(), format!("{}type", rdf::NS));
        assert_eq!(
            rdfs::SUB_CLASS_OF.as_str(),
            format!("{}subClassOf", rdfs::NS)
        );
        assert_eq!(owl::SAME_AS.as_str(), format!("{}sameAs", owl::NS));
        assert_eq!(sc::IDENTIFIER.as_str(), "http://schema.org/identifier");
    }

    #[test]
    fn lazy_iri_deref_is_stable() {
        let a: &Iri = &rdf::TYPE;
        let b: &Iri = &rdf::TYPE;
        assert_eq!(a, b);
    }
}
