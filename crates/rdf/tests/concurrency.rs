//! Concurrency tests for the quad store.
//!
//! The paper's MDM is a multi-user service: stewards register releases while
//! analysts query. The store is internally synchronized (one `RwLock` over
//! interner + indexes); these tests drive it from many threads and check
//! that no updates are lost and readers always observe consistent states.

use bdi_rdf::model::{GraphName, Iri, Quad, Term};
use bdi_rdf::store::{GraphPattern, QuadStore};
use std::sync::atomic::{AtomicBool, Ordering};

fn quad(writer: usize, i: usize) -> Quad {
    Quad::new(
        Iri::new(format!("http://c.example/s/{writer}/{i}")),
        Iri::new(format!("http://c.example/p/{}", i % 5)),
        Iri::new(format!("http://c.example/o/{}", i % 17)),
        GraphName::Named(Iri::new(format!("http://c.example/g/{writer}"))),
    )
}

#[test]
fn concurrent_writers_lose_nothing() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 500;
    let store = QuadStore::new();

    crossbeam::scope(|scope| {
        for writer in 0..WRITERS {
            let store = &store;
            scope.spawn(move |_| {
                for i in 0..PER_WRITER {
                    assert!(store.insert(&quad(writer, i)));
                }
            });
        }
    })
    .expect("no writer panicked");

    assert_eq!(store.len(), WRITERS * PER_WRITER);
    for writer in 0..WRITERS {
        let g = GraphName::Named(Iri::new(format!("http://c.example/g/{writer}")));
        assert_eq!(store.graph_len(&g), PER_WRITER);
    }
}

#[test]
fn readers_see_consistent_snapshots_during_writes() {
    let store = QuadStore::new();
    // Pre-populate a stable region readers can assert on.
    for i in 0..200 {
        store.insert(&quad(99, i));
    }
    let stable_graph = GraphName::Named(Iri::new("http://c.example/g/99"));
    let done = AtomicBool::new(false);

    crossbeam::scope(|scope| {
        // One writer mutating a different graph.
        scope.spawn(|_| {
            for i in 0..2_000 {
                store.insert(&quad(1, i));
            }
            done.store(true, Ordering::Release);
        });
        // Readers must always see the stable region intact and never a
        // torn state (graph_len is index-derived, so tearing would show).
        for _ in 0..4 {
            scope.spawn(|_| {
                while !done.load(Ordering::Acquire) {
                    assert_eq!(store.graph_len(&stable_graph), 200);
                    let p = Iri::new("http://c.example/p/3");
                    let matches = store.match_quads(
                        None,
                        Some(&p),
                        None,
                        &GraphPattern::Named(Iri::new("http://c.example/g/99")),
                    );
                    assert_eq!(matches.len(), 40); // 200 / 5 predicates
                }
            });
        }
    })
    .expect("no thread panicked");

    assert_eq!(store.len(), 2_200);
}

#[test]
fn concurrent_identical_inserts_are_idempotent() {
    // Many threads hammering the same quads: exactly one insert per quad
    // may report `true` overall... (the others must see it as duplicate) —
    // and the final count must be exact.
    const THREADS: usize = 8;
    const QUADS: usize = 100;
    let store = QuadStore::new();
    let fresh_counts: Vec<usize> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|_| {
                    let mut fresh = 0;
                    for i in 0..QUADS {
                        if store.insert(&quad(42, i)) {
                            fresh += 1;
                        }
                    }
                    fresh
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joins"))
            .collect()
    })
    .expect("no thread panicked");

    assert_eq!(store.len(), QUADS);
    assert_eq!(fresh_counts.iter().sum::<usize>(), QUADS);
}

#[test]
fn concurrent_removals_and_queries() {
    let store = QuadStore::new();
    for i in 0..1_000 {
        store.insert(&quad(7, i));
    }
    crossbeam::scope(|scope| {
        scope.spawn(|_| {
            for i in 0..500 {
                assert!(store.remove(&quad(7, i)));
            }
        });
        scope.spawn(|_| {
            // Reads interleave with removals; every returned quad must be
            // structurally valid (decode panics would fail the test).
            for _ in 0..50 {
                let all = store.match_quads(None, None, None, &GraphPattern::Any);
                assert!(all.len() <= 1_000);
                for q in &all {
                    assert!(q.subject.as_iri().is_some());
                }
            }
        });
    })
    .expect("no thread panicked");
    assert_eq!(store.len(), 500);
}

#[test]
fn term_lookup_is_stable_across_threads() {
    // The same term interned from different threads must behave identically
    // in matches.
    let store = QuadStore::new();
    let shared_object = Term::Iri(Iri::new("http://c.example/shared"));
    crossbeam::scope(|scope| {
        for t in 0..6 {
            let store = &store;
            let shared = shared_object.clone();
            scope.spawn(move |_| {
                for i in 0..200 {
                    store.insert(&Quad::new(
                        Iri::new(format!("http://c.example/s/{t}/{i}")),
                        Iri::new("http://c.example/p/shared"),
                        shared.as_iri().expect("iri").clone(),
                        GraphName::Default,
                    ));
                }
            });
        }
    })
    .expect("no thread panicked");
    let hits = store.match_quads(None, None, Some(&shared_object), &GraphPattern::Any);
    assert_eq!(hits.len(), 6 * 200);
}
