//! Relational algebra expressions over named sources.
//!
//! A *walk* (§2.2) is a relational algebra expression
//! `Π̃(w1) ⋈̃ … ⋈̃ Π̃(wk)` over wrappers. The rewriting algorithm in
//! `bdi-core` produces values of [`RelExpr`]; this module gives them a
//! printable form (matching the paper's Π/⋈ notation) and an evaluator that
//! resolves source names to relations through [`SourceResolver`].

use crate::ops;
use crate::relation::{Relation, RelationError};
use std::collections::BTreeSet;
use std::fmt;

/// Resolves a source (wrapper) name to its current relation.
pub trait SourceResolver {
    /// Returns the relation for `name`, or an error if unknown.
    fn resolve(&self, name: &str) -> Result<Relation, RelationError>;
}

/// Blanket impl so closures can act as resolvers in tests and examples.
impl<F> SourceResolver for F
where
    F: Fn(&str) -> Result<Relation, RelationError>,
{
    fn resolve(&self, name: &str) -> Result<Relation, RelationError> {
        self(name)
    }
}

/// Errors raised when evaluating an algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum AlgebraError {
    #[error(transparent)]
    Relation(#[from] RelationError),
    #[error("union of zero expressions")]
    EmptyUnion,
}

/// A relational algebra expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelExpr {
    /// A named source (a wrapper).
    Source { name: String },
    /// Π̃ — restricted projection (IDs always kept).
    Project {
        input: Box<RelExpr>,
        attributes: Vec<String>,
    },
    /// ⋈̃ — ID-restricted equi-join.
    Join {
        left: Box<RelExpr>,
        right: Box<RelExpr>,
        left_attr: String,
        right_attr: String,
    },
    /// Set union of walks.
    Union { inputs: Vec<RelExpr> },
    /// ρ — attribute renaming (used to give wrapper attributes their
    /// source-prefixed names, e.g. `VoDmonitorId` → `D1/VoDmonitorId`).
    Rename {
        input: Box<RelExpr>,
        renames: Vec<(String, String)>,
    },
}

impl RelExpr {
    pub fn source(name: impl Into<String>) -> Self {
        RelExpr::Source { name: name.into() }
    }

    pub fn project(self, attributes: Vec<String>) -> Self {
        RelExpr::Project {
            input: Box::new(self),
            attributes,
        }
    }

    pub fn join(
        self,
        right: RelExpr,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> Self {
        RelExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_attr: left_attr.into(),
            right_attr: right_attr.into(),
        }
    }

    pub fn union(inputs: Vec<RelExpr>) -> Self {
        RelExpr::Union { inputs }
    }

    pub fn rename(self, renames: Vec<(String, String)>) -> Self {
        RelExpr::Rename {
            input: Box::new(self),
            renames,
        }
    }

    /// The set of source names referenced — the paper's `wrappers(W)`.
    pub fn sources(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_sources(&mut out);
        out
    }

    fn collect_sources<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            RelExpr::Source { name } => {
                out.insert(name.as_str());
            }
            RelExpr::Project { input, .. } => input.collect_sources(out),
            RelExpr::Join { left, right, .. } => {
                left.collect_sources(out);
                right.collect_sources(out);
            }
            RelExpr::Union { inputs } => {
                for i in inputs {
                    i.collect_sources(out);
                }
            }
            RelExpr::Rename { input, .. } => input.collect_sources(out),
        }
    }

    /// Evaluates the expression against `resolver`.
    pub fn eval(&self, resolver: &dyn SourceResolver) -> Result<Relation, AlgebraError> {
        match self {
            RelExpr::Source { name } => Ok(resolver.resolve(name)?),
            RelExpr::Project { input, attributes } => {
                let rel = input.eval(resolver)?;
                let attrs: Vec<&str> = attributes.iter().map(String::as_str).collect();
                Ok(ops::project(&rel, &attrs)?)
            }
            RelExpr::Join {
                left,
                right,
                left_attr,
                right_attr,
            } => {
                let l = left.eval(resolver)?;
                let r = right.eval(resolver)?;
                Ok(ops::join(&l, &r, left_attr, right_attr)?)
            }
            RelExpr::Rename { input, renames } => {
                let rel = input.eval(resolver)?;
                let pairs: Vec<(&str, &str)> = renames
                    .iter()
                    .map(|(a, b)| (a.as_str(), b.as_str()))
                    .collect();
                Ok(ops::rename(&rel, &pairs)?)
            }
            RelExpr::Union { inputs } => {
                let mut iter = inputs.iter();
                let first = iter.next().ok_or(AlgebraError::EmptyUnion)?;
                let mut acc = first.eval(resolver)?;
                for expr in iter {
                    let rel = expr.eval(resolver)?;
                    acc = ops::union(&acc, &rel)?;
                }
                Ok(acc)
            }
        }
    }
}

impl fmt::Display for RelExpr {
    /// Pretty-prints in the paper's notation, e.g.
    /// `Π̃[lagRatio](w1) ⋈̃[VoDmonitorId=MonitorId] Π̃[TargetApp](w3)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelExpr::Source { name } => f.write_str(name),
            RelExpr::Project { input, attributes } => {
                write!(f, "Π̃[{}]({input})", attributes.join(", "))
            }
            RelExpr::Join {
                left,
                right,
                left_attr,
                right_attr,
            } => write!(f, "({left} ⋈̃[{left_attr}={right_attr}] {right})"),
            RelExpr::Union { inputs } => {
                let rendered: Vec<String> = inputs.iter().map(|i| i.to_string()).collect();
                write!(f, "{}", rendered.join(" ∪ "))
            }
            RelExpr::Rename { input, renames } => {
                let pairs: Vec<String> = renames.iter().map(|(a, b)| format!("{a}→{b}")).collect();
                write!(f, "ρ[{}]({input})", pairs.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn resolver(name: &str) -> Result<Relation, RelationError> {
        match name {
            "w1" => Relation::new(
                Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
                vec![
                    vec![Value::Int(12), Value::Float(0.75)],
                    vec![Value::Int(12), Value::Float(0.90)],
                    vec![Value::Int(18), Value::Float(0.1)],
                ],
            ),
            "w3" => Relation::new(
                Schema::from_parts::<&str>(&["TargetApp", "MonitorId", "FeedbackId"], &[]).unwrap(),
                vec![
                    vec![Value::Int(1), Value::Int(12), Value::Int(77)],
                    vec![Value::Int(2), Value::Int(18), Value::Int(45)],
                ],
            ),
            other => Err(RelationError::Schema(
                crate::schema::SchemaError::UnknownAttribute(other.to_owned()),
            )),
        }
    }

    #[test]
    fn running_example_walk_evaluates() {
        // Π̃[lagRatio](w1) ⋈̃ Π̃[](w3)
        let walk = RelExpr::source("w1").project(vec!["lagRatio".into()]).join(
            RelExpr::source("w3").project(vec![]),
            "VoDmonitorId",
            "MonitorId",
        );
        let rel = walk.eval(&resolver).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(
            rel.schema().names(),
            vec![
                "VoDmonitorId",
                "lagRatio",
                "TargetApp",
                "MonitorId",
                "FeedbackId"
            ]
        );
    }

    #[test]
    fn sources_are_collected() {
        let walk = RelExpr::source("w1").join(RelExpr::source("w3"), "a", "b");
        let names: Vec<&str> = walk.sources().into_iter().collect();
        assert_eq!(names, vec!["w1", "w3"]);
    }

    #[test]
    fn display_uses_paper_notation() {
        let walk = RelExpr::source("w1").project(vec!["lagRatio".into()]).join(
            RelExpr::source("w3"),
            "VoDmonitorId",
            "MonitorId",
        );
        assert_eq!(
            walk.to_string(),
            "(Π̃[lagRatio](w1) ⋈̃[VoDmonitorId=MonitorId] w3)"
        );
    }

    #[test]
    fn empty_union_errors() {
        assert!(matches!(
            RelExpr::union(vec![]).eval(&resolver),
            Err(AlgebraError::EmptyUnion)
        ));
    }

    #[test]
    fn unknown_source_errors() {
        assert!(RelExpr::source("zz").eval(&resolver).is_err());
    }
}
