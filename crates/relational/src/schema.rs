//! Relation schemas with ID / non-ID attribute classification.
//!
//! The paper defines a wrapper as `w(a_ID, a_nID)` — a relation whose
//! attributes are partitioned into **ID attributes** (join keys, never
//! projected out) and **non-ID attributes** (§2.2). The schema carries that
//! partition so the restricted operators Π̃ and ⋈̃ can enforce it.

use std::fmt;

/// A named attribute with its ID flag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute {
    name: String,
    is_id: bool,
}

impl Attribute {
    /// An ID attribute (member of `a_ID`).
    pub fn id(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            is_id: true,
        }
    }

    /// A non-ID attribute (member of `a_nID`).
    pub fn non_id(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            is_id: false,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn is_id(&self) -> bool {
        self.is_id
    }
}

/// Errors raised by schema construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SchemaError {
    #[error("duplicate attribute name: {0}")]
    DuplicateAttribute(String),
    #[error("unknown attribute: {0}")]
    UnknownAttribute(String),
}

/// An ordered list of uniquely-named attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, SchemaError> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(SchemaError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Self { attributes })
    }

    /// Convenience: builds from `(id_names, non_id_names)` the way the paper
    /// writes `w({VoDmonitorId}, {lagRatio})`.
    pub fn from_parts<S: AsRef<str>>(ids: &[S], non_ids: &[S]) -> Result<Self, SchemaError> {
        let mut attrs = Vec::with_capacity(ids.len() + non_ids.len());
        attrs.extend(ids.iter().map(|s| Attribute::id(s.as_ref())));
        attrs.extend(non_ids.iter().map(|s| Attribute::non_id(s.as_ref())));
        Self::new(attrs)
    }

    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Position of an attribute, as an error-raising lookup.
    pub fn require(&self, name: &str) -> Result<usize, SchemaError> {
        self.index_of(name)
            .ok_or_else(|| SchemaError::UnknownAttribute(name.to_owned()))
    }

    /// The attribute struct by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Names of all ID attributes (the paper's `a_ID`).
    pub fn id_names(&self) -> Vec<&str> {
        self.attributes
            .iter()
            .filter(|a| a.is_id)
            .map(|a| a.name.as_str())
            .collect()
    }

    /// Names of all non-ID attributes (the paper's `a_nID`).
    pub fn non_id_names(&self) -> Vec<&str> {
        self.attributes
            .iter()
            .filter(|a| !a.is_id)
            .map(|a| a.name.as_str())
            .collect()
    }

    /// All attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// True when both schemas have the same attribute names (order-sensitive)
    /// and ID flags — the compatibility required by `union`.
    pub fn same_shape(&self, other: &Schema) -> bool {
        self.attributes == other.attributes
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if a.is_id {
                write!(f, "{}*", a.name)?;
            } else {
                f.write_str(&a.name)?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_partitions_ids() {
        let s = Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap();
        assert_eq!(s.id_names(), vec!["VoDmonitorId"]);
        assert_eq!(s.non_id_names(), vec!["lagRatio"]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_parts(&["a"], &["a"]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::from_parts(&["id"], &["x", "y"]).unwrap();
        assert_eq!(s.index_of("x"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert!(s.require("zz").is_err());
        assert!(s.attribute("id").unwrap().is_id());
    }

    #[test]
    fn display_marks_ids() {
        let s = Schema::from_parts(&["id"], &["x"]).unwrap();
        assert_eq!(s.to_string(), "(id*, x)");
    }

    #[test]
    fn same_shape_is_order_sensitive() {
        let a = Schema::from_parts(&["id"], &["x"]).unwrap();
        let b = Schema::from_parts(&["id"], &["x"]).unwrap();
        let c = Schema::new(vec![Attribute::non_id("x"), Attribute::id("id")]).unwrap();
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }
}
