//! Per-column statistics sketches for cost-based planning.
//!
//! Wrappers maintain these sketches incrementally at write time (one
//! [`StatsBuilder`] per table, observing every appended row) and publish
//! immutable [`TableStats`] snapshots keyed by the wrapper's
//! `data_version`, so a stale sketch is impossible by construction: a
//! snapshot taken under version *v* describes exactly the rows visible at
//! version *v*.
//!
//! The planner consumes the snapshots through
//! [`PlanSource::stats`](crate::plan::PlanSource::stats) in three places:
//!
//! * **selectivity estimation** — [`TableStats::estimate_rows`] turns a
//!   filtered scan's raw row count into a post-filter cardinality, which
//!   makes `scan_hint` predicate-aware and drives join ordering;
//! * **bloom semi-joins** — [`BloomFilter`] is the payload of
//!   [`Predicate::Bloom`], the compact
//!   membership filter shipped to a probe-side source when the build
//!   side's key set is too large for an `IN`-set;
//! * **adaptive scan modes** — [`TableStats::avg_row_bytes`] sizes scan
//!   batches by estimated row width instead of a flat row count.
//!
//! Estimates steer *plans only* — which side builds, which join runs
//! first, how scans batch. No estimate ever decides whether a row appears
//! in an answer, so adversarially wrong sketches can slow a query down
//! but can never corrupt it. The one sketch that does touch row flow, the
//! bloom filter inside a semi-join, is one-sided by construction: it is
//! built from the *live* build-side keys (never from a sketch) and false
//! positives only admit extra probe rows that the join discards.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use crate::plan::{Bound, ColumnFilter, Predicate};
use crate::value::Value;

/// Deterministic 64-bit hash of a [`Value`].
///
/// Uses the standard library's `DefaultHasher` (SipHash with fixed keys),
/// which is stable within a build, over the `Value` `Hash` impl — which
/// normalizes `-0.0`/`NaN` and hashes `Int` as its `f64` bits, so any two
/// `Eq`-equal values hash identically. That property is what makes a
/// bloom filter over value hashes free of false *negatives*.
fn value_hash(value: &Value) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Bits per expected key; with four probes this yields roughly a 1–2%
/// false-positive rate.
const BLOOM_BITS_PER_KEY: usize = 10;
/// Number of probe positions per key (Kirsch–Mitzenmacher double
/// hashing).
const BLOOM_PROBES: u32 = 4;
/// Smallest and largest allowed filter sizes, in bits (both powers of
/// two). The upper clamp bounds a filter at 2 MiB no matter how large the
/// build side is.
const BLOOM_MIN_BITS: usize = 64;
const BLOOM_MAX_BITS: usize = 1 << 24;

/// A compact, one-sided membership filter over [`Value`]s.
///
/// `may_contain` never returns `false` for an inserted value (no false
/// negatives); it may return `true` for a value that was never inserted
/// (false positives, tuned to ~1–2% at the default load). This is the
/// payload of [`Predicate::Bloom`]: a
/// semi-join ships one of these to the probe-side source when the build
/// side's distinct keys exceed `semijoin_max_keys`, and the join's own
/// equality check discards the false positives.
///
/// Hashing is deterministic within a build (fixed-key SipHash over the
/// `Eq`-consistent `Value` hash), and the derived `PartialEq`/`Hash` make
/// two filters over the same insertions compare equal — required because
/// predicates participate in scan-cache keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    items: u64,
}

impl BloomFilter {
    /// Creates an empty filter sized for `expected` keys (power-of-two
    /// bit count, clamped to `[64, 2^24]` bits).
    pub fn with_capacity(expected: usize) -> Self {
        let bits = expected
            .max(1)
            .saturating_mul(BLOOM_BITS_PER_KEY)
            .next_power_of_two()
            .clamp(BLOOM_MIN_BITS, BLOOM_MAX_BITS);
        BloomFilter {
            bits: vec![0; bits / 64],
            mask: bits as u64 - 1,
            items: 0,
        }
    }

    /// Builds a filter over `values`, sized for their count.
    pub fn from_values(values: &[Value]) -> Self {
        let mut filter = Self::with_capacity(values.len());
        for value in values {
            filter.insert(value);
        }
        filter
    }

    /// The canonical probe filter used when fingerprinting a source's
    /// claim surface (see `probe_claims_fingerprint` in the wrappers
    /// crate): a fixed single-key filter, so the probe — and therefore
    /// the fingerprint — is deterministic.
    pub fn claims_probe() -> Self {
        Self::from_values(&[Value::Int(0)])
    }

    /// Inserts a value.
    pub fn insert(&mut self, value: &Value) {
        self.insert_hash(value_hash(value));
    }

    /// Inserts a pre-computed [`value_hash`] (used by [`DistinctSketch`]
    /// to snapshot its stored hashes without re-hashing values).
    fn insert_hash(&mut self, hash: u64) {
        for bit in self.probe_bits(hash) {
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// `false` means definitely absent; `true` means present or a false
    /// positive.
    pub fn may_contain(&self, value: &Value) -> bool {
        let hash = value_hash(value);
        self.probe_bits(hash)
            .into_iter()
            .all(|bit| self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    /// Number of insertions (not distinct keys; duplicates count).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Kirsch–Mitzenmacher: two halves of one 64-bit hash generate all
    /// probe positions as `h1 + i·h2` (with `h2` forced odd so it cycles
    /// the power-of-two table).
    fn probe_bits(&self, hash: u64) -> [u64; BLOOM_PROBES as usize] {
        let h1 = hash;
        let h2 = hash.rotate_left(32) | 1;
        let mut bits = [0u64; BLOOM_PROBES as usize];
        for (i, bit) in bits.iter_mut().enumerate() {
            *bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) & self.mask;
        }
        bits
    }
}

/// Row-hash budget below which a [`DistinctSketch`] stays exact. Past it
/// the sketch degrades to a fixed-size probabilistic counter and stops
/// offering a membership snapshot.
const SMALL_SET_CAP: usize = 1024;

/// HyperLogLog register count (and its bias constant for `m = 64`).
const HLL_REGISTERS: usize = 64;
const HLL_ALPHA: f64 = 0.709;

/// Distinct-count estimator with an exact small-set mode.
///
/// Up to `SMALL_SET_CAP` distinct values the sketch stores the exact
/// set of value hashes — the count is exact and [`DistinctSketch::bloom`]
/// can snapshot the set as a membership filter. Past the cap it degrades
/// to a 64-register HyperLogLog (a few percent relative error) and the
/// membership snapshot becomes unavailable. Either way the estimate only
/// steers plan choices, never row membership.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    /// Exact value hashes while small; `None` once degraded to HLL.
    small: Option<BTreeSet<u64>>,
    registers: [u8; HLL_REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch {
            small: Some(BTreeSet::new()),
            registers: [0; HLL_REGISTERS],
        }
    }
}

impl DistinctSketch {
    /// Creates an empty sketch in exact mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one value occurrence.
    pub fn observe(&mut self, value: &Value) {
        self.observe_hash(value_hash(value));
    }

    fn observe_hash(&mut self, hash: u64) {
        // HLL registers are maintained unconditionally so degrading is
        // just dropping the exact set — no replay needed.
        let register = (hash >> (64 - 6)) as usize;
        let rank = ((hash << 6) | 1).leading_zeros() as u8 + 1;
        if rank > self.registers[register] {
            self.registers[register] = rank;
        }
        if let Some(small) = &mut self.small {
            small.insert(hash);
            if small.len() > SMALL_SET_CAP {
                self.small = None;
            }
        }
    }

    /// Estimated number of distinct observed values (exact while in
    /// small-set mode).
    pub fn estimate(&self) -> u64 {
        if let Some(small) = &self.small {
            return small.len() as u64;
        }
        let m = HLL_REGISTERS as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = HLL_ALPHA * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        // Linear-counting correction for the small range.
        if raw <= 2.5 * m && zeros > 0 {
            (m * (m / zeros as f64).ln()).round() as u64
        } else {
            raw.round() as u64
        }
    }

    /// A membership filter over everything observed so far — available
    /// only while the sketch is still exact.
    pub fn bloom(&self) -> Option<BloomFilter> {
        let small = self.small.as_ref()?;
        let mut filter = BloomFilter::with_capacity(small.len());
        for &hash in small {
            filter.insert_hash(hash);
        }
        Some(filter)
    }
}

/// The neutral selectivity assumed for a predicate the sketches cannot
/// price (non-numeric range, unknown column).
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// One column's sketch snapshot: distinct count, null count, value
/// bounds, average encoded width, and (for small domains) an exact
/// membership filter.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Estimated distinct non-null values (exact below the small-set
    /// cap).
    pub distinct: u64,
    /// Number of null cells observed.
    pub nulls: u64,
    /// Smallest non-null value, by the total `Value` order.
    pub min: Option<Value>,
    /// Largest non-null value, by the total `Value` order.
    pub max: Option<Value>,
    /// Exact membership filter over the column's values, available only
    /// while the domain stayed below the small-set cap.
    pub bloom: Option<BloomFilter>,
    /// Average encoded width of a cell, in bytes (used to size scan
    /// batches).
    pub avg_width: u64,
}

impl ColumnStats {
    /// Estimated fraction of the table's `rows` a predicate on this
    /// column retains, in `[0, 1]`.
    ///
    /// Equality and `IN` divide by the distinct count (pruning keys the
    /// membership filter rules out entirely), ranges intersect numeric
    /// bounds, and a shipped bloom filter retains roughly its key count
    /// over this column's domain. Anything unpriceable falls back to the
    /// neutral 1/3.
    pub fn selectivity(&self, predicate: &Predicate, _rows: u64) -> f64 {
        let distinct = self.distinct.max(1) as f64;
        match predicate {
            Predicate::Eq(value) => {
                if self.excludes(value) {
                    0.0
                } else {
                    1.0 / distinct
                }
            }
            Predicate::In(values) => {
                let surviving = values.iter().filter(|v| !self.excludes(v)).count() as f64;
                (surviving / distinct).min(1.0)
            }
            Predicate::Range { min, max } => self
                .range_fraction(min.as_ref(), max.as_ref())
                .unwrap_or(DEFAULT_SELECTIVITY),
            Predicate::Bloom(filter) => {
                // A semi-join filter retains about one build key's worth
                // of rows per distinct probe value, plus the filter's
                // false-positive floor.
                (filter.items() as f64 / distinct + 0.02).min(1.0)
            }
        }
        .clamp(0.0, 1.0)
    }

    /// `true` when the column's sketches *prove* the value cannot occur:
    /// the exact membership filter excludes it, or it falls outside the
    /// observed bounds.
    fn excludes(&self, value: &Value) -> bool {
        if let Some(bloom) = &self.bloom {
            if !bloom.may_contain(value) {
                return true;
            }
        }
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => value < min || value > max,
            _ => false,
        }
    }

    /// Overlap fraction of a numeric range predicate against the
    /// column's observed `[min, max]`; `None` when either side is
    /// non-numeric or unbounded in a way the sketch cannot price.
    fn range_fraction(&self, min: Option<&Bound>, max: Option<&Bound>) -> Option<f64> {
        let lo = numeric(self.min.as_ref()?)?;
        let hi = numeric(self.max.as_ref()?)?;
        let pred_lo = match min {
            Some(bound) => numeric(&bound.value)?,
            None => lo,
        };
        let pred_hi = match max {
            Some(bound) => numeric(&bound.value)?,
            None => hi,
        };
        if pred_hi < lo || pred_lo > hi {
            return Some(0.0);
        }
        let span = hi - lo;
        if span <= 0.0 {
            // Single-point column inside the range.
            return Some(1.0);
        }
        let overlap = pred_hi.min(hi) - pred_lo.max(lo);
        Some((overlap / span).clamp(0.0, 1.0))
    }
}

fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// An immutable statistics snapshot of one wrapper table, keyed by the
/// `data_version` it was taken under.
///
/// Produced by [`StatsBuilder::snapshot`] at wrapper write time and
/// served to the planner through
/// [`PlanSource::stats`](crate::plan::PlanSource::stats). Because every
/// snapshot carries the version that produced it and wrappers rebuild on
/// version bumps, the planner can never see a sketch describing rows
/// that no longer exist.
#[derive(Debug, Clone)]
pub struct TableStats {
    rows: u64,
    data_version: u64,
    columns: Vec<(String, ColumnStats)>,
}

impl TableStats {
    /// Assembles a snapshot from per-column stats.
    pub fn new(rows: u64, data_version: u64, columns: Vec<(String, ColumnStats)>) -> Self {
        TableStats {
            rows,
            data_version,
            columns,
        }
    }

    /// Total rows in the table at snapshot time.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The wrapper `data_version` the snapshot was taken under.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Per-column stats, in schema order.
    pub fn columns(&self) -> &[(String, ColumnStats)] {
        &self.columns
    }

    /// Stats for one column by source-side name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|(column, _)| column == name)
            .map(|(_, stats)| stats)
    }

    /// Estimated row count after applying `filters`: the raw count times
    /// the product of per-filter selectivities (neutral 1/3 for columns
    /// the snapshot does not know).
    pub fn estimate_rows(&self, filters: &[ColumnFilter]) -> u64 {
        let mut estimate = self.rows as f64;
        for filter in filters {
            let selectivity = self
                .column(&filter.column)
                .map(|column| column.selectivity(&filter.predicate, self.rows))
                .unwrap_or(DEFAULT_SELECTIVITY);
            estimate *= selectivity;
        }
        estimate.round() as u64
    }

    /// Estimated encoded width of one row restricted to `columns`, in
    /// bytes (8 per unknown column). Never returns 0.
    pub fn avg_row_bytes(&self, columns: &[String]) -> u64 {
        columns
            .iter()
            .map(|name| self.column(name).map(|c| c.avg_width).unwrap_or(8))
            .sum::<u64>()
            .max(1)
    }

    /// A copy with row and distinct counts multiplied by `factor` —
    /// deliberately wrong stats for misestimation testing. Bounds and
    /// membership filters are dropped (a stale snapshot would not have
    /// them for new data either). Only estimates change; the wrapper's
    /// exact unfiltered `scan_hint` is never distorted, so row order and
    /// answers are unaffected.
    pub fn scaled(&self, factor: f64) -> TableStats {
        let scale = |count: u64| ((count as f64 * factor).round() as u64).max(1);
        TableStats {
            rows: scale(self.rows),
            data_version: self.data_version,
            columns: self
                .columns
                .iter()
                .map(|(name, stats)| {
                    (
                        name.clone(),
                        ColumnStats {
                            distinct: scale(stats.distinct),
                            nulls: stats.nulls,
                            min: None,
                            max: None,
                            bloom: None,
                            avg_width: stats.avg_width,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Incremental sketch accumulator a wrapper feeds at write time.
///
/// One builder lives behind the wrapper's write lock; every appended row
/// passes through [`StatsBuilder::observe_row`], and
/// [`StatsBuilder::snapshot`] freezes the current state into a
/// [`TableStats`] tagged with the wrapper's current `data_version`.
#[derive(Debug, Clone)]
pub struct StatsBuilder {
    rows: u64,
    columns: Vec<(String, ColumnBuilder)>,
}

#[derive(Debug, Clone, Default)]
struct ColumnBuilder {
    sketch: DistinctSketch,
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    width_sum: u64,
}

impl StatsBuilder {
    /// Creates a builder for the given source-side column names.
    pub fn new<I>(columns: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        StatsBuilder {
            rows: 0,
            columns: columns
                .into_iter()
                .map(|name| (name.into(), ColumnBuilder::default()))
                .collect(),
        }
    }

    /// Observes one row (cells in column order; extra cells are
    /// ignored).
    pub fn observe_row(&mut self, row: &[Value]) {
        self.rows += 1;
        for ((_, column), value) in self.columns.iter_mut().zip(row) {
            column.width_sum += value_width(value);
            if matches!(value, Value::Null) {
                column.nulls += 1;
                continue;
            }
            column.sketch.observe(value);
            if column.min.as_ref().is_none_or(|min| value < min) {
                column.min = Some(value.clone());
            }
            if column.max.as_ref().is_none_or(|max| value > max) {
                column.max = Some(value.clone());
            }
        }
    }

    /// Number of rows observed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Freezes the current state into an immutable snapshot tagged with
    /// `data_version`.
    pub fn snapshot(&self, data_version: u64) -> TableStats {
        let columns = self
            .columns
            .iter()
            .map(|(name, column)| {
                (
                    name.clone(),
                    ColumnStats {
                        distinct: column.sketch.estimate(),
                        nulls: column.nulls,
                        min: column.min.clone(),
                        max: column.max.clone(),
                        bloom: column.sketch.bloom(),
                        avg_width: column.width_sum / self.rows.max(1),
                    },
                )
            })
            .collect();
        TableStats::new(self.rows, data_version, columns)
    }
}

/// Approximate encoded width of one cell, in bytes.
fn value_width(value: &Value) -> u64 {
    match value {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => s.len() as u64 + 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Predicate;

    fn values(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let keys = values(0..5_000);
        let filter = BloomFilter::from_values(&keys);
        for key in &keys {
            assert!(filter.may_contain(key), "inserted key reported absent");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_small() {
        let filter = BloomFilter::from_values(&values(0..10_000));
        let misses = (10_000..110_000)
            .filter(|&i| filter.may_contain(&Value::Int(i)))
            .count();
        // ~1-2% expected at 10 bits/key, 4 probes; allow generous slack.
        assert!(misses < 6_000, "false positive rate too high: {misses}");
    }

    #[test]
    fn bloom_treats_eq_equal_values_identically() {
        let filter = BloomFilter::from_values(&[Value::Int(3)]);
        // Int(3) and Float(3.0) are Eq-equal, so they must hash alike.
        assert!(filter.may_contain(&Value::Float(3.0)));
    }

    #[test]
    fn distinct_sketch_is_exact_while_small() {
        let mut sketch = DistinctSketch::new();
        for i in 0..500 {
            sketch.observe(&Value::Int(i % 100));
        }
        assert_eq!(sketch.estimate(), 100);
        let bloom = sketch.bloom().expect("small sketch offers a bloom");
        assert!(bloom.may_contain(&Value::Int(42)));
        assert!(!bloom.may_contain(&Value::Str("absent".into())));
    }

    #[test]
    fn distinct_sketch_degrades_within_tolerance() {
        let mut sketch = DistinctSketch::new();
        for i in 0..50_000 {
            sketch.observe(&Value::Int(i));
        }
        assert!(sketch.bloom().is_none(), "degraded sketch has no bloom");
        let estimate = sketch.estimate() as f64;
        let error = (estimate - 50_000.0).abs() / 50_000.0;
        assert!(error < 0.35, "HLL estimate off by {error:.2}: {estimate}");
    }

    fn snapshot(rows: i64) -> TableStats {
        let mut builder = StatsBuilder::new(["k", "v"]);
        for i in 0..rows {
            builder.observe_row(&[Value::Int(i % 100), Value::Int(i)]);
        }
        builder.snapshot(7)
    }

    #[test]
    fn estimate_rows_prices_equality_by_distinct_count() {
        let stats = snapshot(1_000);
        assert_eq!(stats.rows(), 1_000);
        assert_eq!(stats.data_version(), 7);
        let filter = ColumnFilter::new("k", Predicate::eq(5));
        assert_eq!(stats.estimate_rows(&[filter]), 10);
    }

    #[test]
    fn estimate_rows_proves_absent_keys_empty() {
        let stats = snapshot(1_000);
        let filter = ColumnFilter::new("k", Predicate::eq(5_000));
        assert_eq!(stats.estimate_rows(&[filter]), 0);
    }

    #[test]
    fn estimate_rows_prices_ranges_by_overlap() {
        let stats = snapshot(1_000);
        let filter = ColumnFilter::new("v", Predicate::between(0, 99));
        let estimate = stats.estimate_rows(&[filter]);
        assert!(
            (80..=120).contains(&estimate),
            "10% range estimated {estimate}"
        );
    }

    #[test]
    fn scaled_stats_distort_counts_only() {
        let stats = snapshot(1_000).scaled(0.01);
        assert_eq!(stats.rows(), 10);
        assert_eq!(stats.data_version(), 7);
        assert!(stats.column("k").unwrap().bloom.is_none());
    }
}
