//! The restricted relational operators of §2.2.
//!
//! * [`project`] — Π̃: projects the requested non-ID attributes **plus every
//!   ID attribute**. The paper forbids projecting IDs out because they are
//!   needed by ⋈̃; asking to drop one is an error.
//! * [`join`] — ⋈̃: an equi-join valid **only between ID attributes**.
//! * [`union`] — set union of shape-compatible relations.
//! * [`rename`] — attribute renaming, used when mapping source attribute
//!   names to the conceptual features they populate (function `F`).

use crate::relation::{Relation, RelationError, Tuple};
use crate::schema::{Attribute, Schema};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Π̃: keeps `keep_non_ids` (each must exist) and all ID attributes, in
/// schema order. Requesting an ID attribute explicitly is allowed (it is kept
/// either way); requesting an unknown attribute is an error.
pub fn project(input: &Relation, keep_non_ids: &[&str]) -> Result<Relation, RelationError> {
    let schema = input.schema();
    for name in keep_non_ids {
        schema.require(name)?;
    }
    let mut kept_indices = Vec::new();
    let mut kept_attrs = Vec::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if attr.is_id() || keep_non_ids.contains(&attr.name()) {
            kept_indices.push(i);
            kept_attrs.push(attr.clone());
        }
    }
    let out_schema = Schema::new(kept_attrs)?;
    // Full-width projection: clone rows wholesale instead of rebuilding them
    // cell by cell.
    if kept_indices.len() == schema.len() {
        return Relation::new(out_schema, input.rows().to_vec());
    }
    let rows: Vec<Tuple> = input
        .rows()
        .iter()
        .map(|row| kept_indices.iter().map(|&i| row[i].clone()).collect())
        .collect();
    Relation::new(out_schema, rows)
}

/// ⋈̃: equi-join on `left_attr = right_attr`, both of which must be ID
/// attributes. Output schema is left's attributes followed by right's
/// (the join attribute of the right side is kept — walks may project either
/// side's ID, as the paper's phase-3 example output shows).
pub fn join(
    left: &Relation,
    right: &Relation,
    left_attr: &str,
    right_attr: &str,
) -> Result<Relation, RelationError> {
    let li = left.schema().require(left_attr)?;
    let ri = right.schema().require(right_attr)?;
    if !left.schema().attributes()[li].is_id() {
        return Err(RelationError::JoinOnNonId(left_attr.to_owned()));
    }
    if !right.schema().attributes()[ri].is_id() {
        return Err(RelationError::JoinOnNonId(right_attr.to_owned()));
    }

    let mut attrs: Vec<Attribute> = left.schema().attributes().to_vec();
    for attr in right.schema().attributes() {
        if attrs.iter().any(|a| a.name() == attr.name()) {
            return Err(RelationError::JoinNameCollision(attr.name().to_owned()));
        }
        attrs.push(attr.clone());
    }
    let out_schema = Schema::new(attrs)?;

    // Hash join: build on the smaller side.
    let (build, probe, build_key, probe_key, build_is_left) = if left.len() <= right.len() {
        (left, right, li, ri, true)
    } else {
        (right, left, ri, li, false)
    };
    let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
    for row in build.rows() {
        if row[build_key].is_null() {
            continue; // null keys never join
        }
        table.entry(&row[build_key]).or_default().push(row);
    }
    let mut rows = Vec::new();
    for probe_row in probe.rows() {
        if probe_row[probe_key].is_null() {
            continue;
        }
        if let Some(matches) = table.get(&probe_row[probe_key]) {
            for build_row in matches {
                let (l, r): (&Tuple, &Tuple) = if build_is_left {
                    (build_row, probe_row)
                } else {
                    (probe_row, build_row)
                };
                let mut out = Vec::with_capacity(l.len() + r.len());
                out.extend(l.iter().cloned());
                out.extend(r.iter().cloned());
                rows.push(out);
            }
        }
    }
    Relation::new(out_schema, rows)
}

/// Set union: operands must have identical schemas; the result is
/// deduplicated and sorted (the canonical set form).
///
/// Duplicates are detected with a `HashSet` over row *references* so only
/// surviving rows are ever cloned — the old implementation cloned every
/// input row and then sorted the duplicates away.
pub fn union(left: &Relation, right: &Relation) -> Result<Relation, RelationError> {
    union_all(left.schema(), [left, right])
}

/// N-ary set union in a single pass: one dedup, one sort, survivors cloned
/// once. This is what keeps the eager reference engine linear in the number
/// of walks — folding the binary [`union`] re-sorts (and used to re-clone)
/// the whole accumulator at every step.
pub fn union_all<'a>(
    schema: &Schema,
    inputs: impl IntoIterator<Item = &'a Relation>,
) -> Result<Relation, RelationError> {
    let mut seen: HashSet<&Tuple> = HashSet::new();
    let mut rows: Vec<Tuple> = Vec::new();
    for input in inputs {
        if !input.schema().same_shape(schema) {
            return Err(RelationError::UnionShape {
                left: schema.to_string(),
                right: input.schema().to_string(),
            });
        }
        for row in input.rows() {
            if seen.insert(row) {
                rows.push(row.clone());
            }
        }
    }
    rows.sort();
    Relation::new(schema.clone(), rows)
}

/// Renames attributes according to `(from, to)` pairs, preserving ID flags.
pub fn rename(input: &Relation, renames: &[(&str, &str)]) -> Result<Relation, RelationError> {
    let mut attrs = Vec::with_capacity(input.schema().len());
    for attr in input.schema().attributes() {
        let new_name = renames
            .iter()
            .find(|(from, _)| *from == attr.name())
            .map(|(_, to)| *to)
            .unwrap_or(attr.name());
        attrs.push(if attr.is_id() {
            Attribute::id(new_name)
        } else {
            Attribute::non_id(new_name)
        });
    }
    for (from, _) in renames {
        input.schema().require(from)?;
    }
    Relation::new(Schema::new(attrs)?, input.rows().to_vec())
}

/// Reorders and relabels columns to `target` (matching by position after the
/// caller supplies the positional mapping as attribute names of `input`).
///
/// Used when unioning walks whose physical attribute names differ (e.g.
/// `w1.lagRatio` vs `w4.bufferingRatio` both populating feature `lagRatio`).
pub fn align_to(
    input: &Relation,
    source_order: &[&str],
    target: &Schema,
) -> Result<Relation, RelationError> {
    if source_order.len() != target.len() {
        return Err(RelationError::Arity {
            expected: target.len(),
            found: source_order.len(),
        });
    }
    let mut indices = Vec::with_capacity(source_order.len());
    for name in source_order {
        indices.push(input.schema().require(name)?);
    }
    let rows: Vec<Tuple> = input
        .rows()
        .iter()
        .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
        .collect();
    Relation::new(target.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// w1(VoDmonitorId*, lagRatio) — Table 1 of the paper.
    fn w1() -> Relation {
        Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![
                vec![Value::Int(12), Value::Float(0.75)],
                vec![Value::Int(12), Value::Float(0.90)],
                vec![Value::Int(18), Value::Float(0.1)],
            ],
        )
        .unwrap()
    }

    /// w3(TargetApp*, MonitorId*, FeedbackId*) — Table 1 of the paper.
    fn w3() -> Relation {
        Relation::new(
            Schema::from_parts::<&str>(&["TargetApp", "MonitorId", "FeedbackId"], &[]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(12), Value::Int(77)],
                vec![Value::Int(2), Value::Int(18), Value::Int(45)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn project_keeps_all_ids() {
        let r = project(&w1(), &["lagRatio"]).unwrap();
        assert_eq!(r.schema().names(), vec!["VoDmonitorId", "lagRatio"]);
        let r2 = project(&w1(), &[]).unwrap();
        assert_eq!(r2.schema().names(), vec!["VoDmonitorId"]);
    }

    #[test]
    fn project_unknown_attribute_errors() {
        assert!(project(&w1(), &["zz"]).is_err());
    }

    #[test]
    fn join_reproduces_table2_rows() {
        // Π(w1 ⋈ VoDmonitorId=MonitorId w3) — the running example.
        let joined = join(&w1(), &w3(), "VoDmonitorId", "MonitorId").unwrap();
        assert_eq!(joined.len(), 3);
        let projected = project(&joined, &["lagRatio"]).unwrap();
        // TargetApp/lagRatio pairs: (1,0.75),(1,0.90),(2,0.1).
        let apps = projected.column("TargetApp").unwrap();
        assert_eq!(apps, vec![Value::Int(1), Value::Int(1), Value::Int(2)]);
        let ratios = projected.column("lagRatio").unwrap();
        assert_eq!(
            ratios,
            vec![Value::Float(0.75), Value::Float(0.90), Value::Float(0.1)]
        );
    }

    #[test]
    fn join_on_non_id_is_rejected() {
        let err = join(&w3(), &w1(), "TargetApp", "lagRatio").unwrap_err();
        assert!(matches!(err, RelationError::JoinOnNonId(a) if a == "lagRatio"));
    }

    #[test]
    fn join_name_collision_detected() {
        let err = join(&w1(), &w1(), "VoDmonitorId", "VoDmonitorId").unwrap_err();
        assert!(matches!(err, RelationError::JoinNameCollision(_)));
    }

    #[test]
    fn join_skips_null_keys() {
        let left = Relation::new(
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(5), Value::Int(2)],
            ],
        )
        .unwrap();
        let right = Relation::new(
            Schema::from_parts::<&str>(&["rid"], &[]).unwrap(),
            vec![vec![Value::Null], vec![Value::Int(5)]],
        )
        .unwrap();
        let out = join(&left, &right, "id", "rid").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn union_requires_same_shape_and_dedups() {
        let a = project(&w1(), &["lagRatio"]).unwrap();
        let b = project(&w1(), &["lagRatio"]).unwrap();
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3); // duplicates collapse

        let err = union(&a, &w3()).unwrap_err();
        assert!(matches!(err, RelationError::UnionShape { .. }));
    }

    #[test]
    fn union_all_equals_folded_binary_union() {
        let a = project(&w1(), &["lagRatio"]).unwrap();
        let b = project(&w1(), &[]).unwrap();
        let folded = union(&union(&a, &a).unwrap(), &a).unwrap();
        let n_ary = union_all(a.schema(), [&a, &a, &a]).unwrap();
        assert_eq!(folded, n_ary);
        assert_eq!(folded.rows(), n_ary.rows());
        assert!(union_all(a.schema(), [&a, &b]).is_err());
    }

    #[test]
    fn rename_preserves_id_flags() {
        let r = rename(&w1(), &[("VoDmonitorId", "monitorId")]).unwrap();
        assert!(r.schema().attribute("monitorId").unwrap().is_id());
        assert!(rename(&w1(), &[("zz", "x")]).is_err());
    }

    #[test]
    fn align_to_reorders_and_relabels() {
        let joined = join(&w1(), &w3(), "VoDmonitorId", "MonitorId").unwrap();
        let target = Schema::from_parts(&["applicationId"], &["lagRatio"]).unwrap();
        let aligned = align_to(&joined, &["TargetApp", "lagRatio"], &target).unwrap();
        assert_eq!(aligned.schema().names(), vec!["applicationId", "lagRatio"]);
        assert_eq!(aligned.len(), 3);
    }
}
