//! Scalar expressions over named attributes.
//!
//! Wrappers compute derived attributes from raw source fields — the paper's
//! running example derives `lagRatio = waitTime / watchTime` inside the
//! MongoDB aggregation pipeline (Code 2). This module is the generic scalar
//! evaluator those computations compile to.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Errors raised during expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ExprError {
    #[error("unknown column: {0}")]
    UnknownColumn(String),
    #[error("type error: {op} not defined for {left} and {right}")]
    TypeError {
        op: &'static str,
        left: &'static str,
        right: &'static str,
    },
    #[error("division by zero")]
    DivisionByZero,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// A constant.
    Lit(Value),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Numeric division; integer operands produce a float (as MongoDB's
    /// `$divide` does).
    Div(Box<Expr>, Box<Expr>),
    /// String concatenation.
    Concat(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder-style combinators, not operator overloads
impl Expr {
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Col(name.into())
    }

    pub fn lit(value: impl Into<Value>) -> Self {
        Expr::Lit(value.into())
    }

    pub fn div(self, rhs: Expr) -> Self {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    pub fn add(self, rhs: Expr) -> Self {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Self {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Self {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    pub fn concat(self, rhs: Expr) -> Self {
        Expr::Concat(Box::new(self), Box::new(rhs))
    }

    /// Evaluates against a row given as a name → value mapping.
    ///
    /// Null propagates: any arithmetic with a null operand yields null
    /// (SQL-style), so evolved schemas with missing fields degrade gracefully
    /// instead of erroring.
    pub fn eval(&self, row: &HashMap<&str, Value>) -> Result<Value, ExprError> {
        match self {
            Expr::Col(name) => row
                .get(name.as_str())
                .cloned()
                .ok_or_else(|| ExprError::UnknownColumn(name.clone())),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Add(a, b) => numeric(a.eval(row)?, b.eval(row)?, "+", |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(row)?, b.eval(row)?, "-", |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(row)?, b.eval(row)?, "*", |x, y| x * y),
            Expr::Div(a, b) => {
                let (l, r) = (a.eval(row)?, b.eval(row)?);
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                let (x, y) = both_f64(&l, &r, "/")?;
                if y == 0.0 {
                    return Err(ExprError::DivisionByZero);
                }
                Ok(Value::Float(x / y))
            }
            Expr::Concat(a, b) => {
                let (l, r) = (a.eval(row)?, b.eval(row)?);
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Str(format!("{l}{r}")))
            }
        }
    }

    /// All column names referenced by the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Lit(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Concat(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }
}

fn both_f64(l: &Value, r: &Value, op: &'static str) -> Result<(f64, f64), ExprError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(ExprError::TypeError {
            op,
            left: l.kind(),
            right: r.kind(),
        }),
    }
}

fn numeric(
    l: Value,
    r: Value,
    op: &'static str,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value, ExprError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer-preserving fast path.
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let exact = f(*a as f64, *b as f64);
        if exact.fract() == 0.0 && exact.abs() < i64::MAX as f64 {
            return Ok(Value::Int(exact as i64));
        }
        return Ok(Value::Float(exact));
    }
    let (x, y) = both_f64(&l, &r, op)?;
    Ok(Value::Float(f(x, y)))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "${name}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Concat(a, b) => write!(f, "concat({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> HashMap<&'static str, Value> {
        HashMap::from([
            ("waitTime", Value::Int(3)),
            ("watchTime", Value::Int(4)),
            ("name", Value::Str("vod".into())),
            ("missing", Value::Null),
        ])
    }

    #[test]
    fn lag_ratio_divides_like_code2() {
        let e = Expr::col("waitTime").div(Expr::col("watchTime"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(0.75));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let e = Expr::col("waitTime").add(Expr::col("watchTime"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(7));
        let e = Expr::col("waitTime").mul(Expr::lit(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(6));
    }

    #[test]
    fn null_propagates() {
        let e = Expr::col("missing").add(Expr::lit(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::col("missing").div(Expr::lit(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::lit(1).div(Expr::lit(0));
        assert_eq!(e.eval(&row()).unwrap_err(), ExprError::DivisionByZero);
    }

    #[test]
    fn type_errors_are_reported() {
        let e = Expr::col("name").add(Expr::lit(1));
        assert!(matches!(
            e.eval(&row()).unwrap_err(),
            ExprError::TypeError { .. }
        ));
    }

    #[test]
    fn concat_builds_strings() {
        let e = Expr::col("name").concat(Expr::lit("-v2"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("vod-v2".into()));
    }

    #[test]
    fn unknown_column_is_an_error() {
        let e = Expr::col("zz");
        assert_eq!(
            e.eval(&row()).unwrap_err(),
            ExprError::UnknownColumn("zz".into())
        );
    }

    #[test]
    fn columns_are_collected_once() {
        let e = Expr::col("a").add(Expr::col("b").mul(Expr::col("a")));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col("waitTime").div(Expr::col("watchTime"));
        assert_eq!(e.to_string(), "($waitTime / $watchTime)");
    }
}
