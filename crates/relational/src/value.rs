//! Scalar values flowing through the relational layer.
//!
//! Wrappers expose flat first-normal-form relations (§2), so a small scalar
//! algebra suffices: nulls, booleans, 64-bit integers, doubles and strings.
//! `Value` implements a *total* order (`Null < Bool < Int/Float < Str`,
//! numerics compared cross-type) so relations can be sorted and deduplicated
//! deterministically.

use std::cmp::Ordering;
use std::fmt;

/// A scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints widen to doubles.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no float truncation).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Cross-type numerics compare as doubles; NaN sorts greatest.
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                let (x, y) = (a.as_f64().expect("rank 2"), b.as_f64().expect("rank 2"));
                x.partial_cmp(&y)
                    .unwrap_or_else(|| match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("non-NaN incomparable floats"),
                    })
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Numerics hash through a normalized f64 bit pattern so every
            // Eq class hashes equally: Int(2) with Float(2.0), -0.0 with
            // 0.0, and all NaN payloads with each other (Eq goes through the
            // total order, which unifies those pairs while raw to_bits does
            // not). Hash-based dedup must agree with Eq.
            Value::Int(i) => normalized_bits(*i as f64).hash(state),
            Value::Float(f) => normalized_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

/// The f64 bit pattern with Eq-equal values collapsed: `-0.0` → `0.0`, any
/// NaN → the canonical NaN.
fn normalized_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits()
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_ne!(Value::Int(2), Value::Str("2".into()));
    }

    #[test]
    fn hash_is_consistent_with_eq_on_zero_and_nan() {
        // -0.0 == 0.0 and NaN == NaN under the total order; hash-based
        // dedup (ops::union, the plan executor's value pool) relies on the
        // hashes agreeing too.
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
        let quiet = f64::NAN;
        let payload = f64::from_bits(quiet.to_bits() ^ 1);
        assert!(payload.is_nan());
        assert_eq!(Value::Float(quiet), Value::Float(payload));
        assert_eq!(
            hash_of(&Value::Float(quiet)),
            hash_of(&Value::Float(payload))
        );
    }

    #[test]
    fn total_order_across_kinds() {
        let mut values = [
            Value::Str("a".into()),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        values.sort();
        assert_eq!(
            values.iter().map(Value::kind).collect::<Vec<_>>(),
            vec!["null", "bool", "float", "int", "string"]
        );
    }

    #[test]
    fn nan_is_orderable_and_self_equal() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).cmp(&nan), Ordering::Less);
        assert_eq!(nan.cmp(&Value::Int(5)), Ordering::Greater);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(0.75).to_string(), "0.75");
        assert_eq!(Value::Str("tweet".into()).to_string(), "tweet");
    }
}
