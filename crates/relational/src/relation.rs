//! Relations: a schema plus rows.

use crate::schema::{Schema, SchemaError};
use crate::value::Value;
use std::fmt;

/// A tuple of scalar values, positionally aligned with a [`Schema`].
pub type Tuple = Vec<Value>;

/// Errors raised by relation construction and operators.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum RelationError {
    #[error(transparent)]
    Schema(#[from] SchemaError),
    #[error("tuple has {found} values but the schema has {expected} attributes")]
    Arity { expected: usize, found: usize },
    #[error("projection would drop ID attribute {0}; Π̃ keeps all IDs (§2.2)")]
    ProjectsOutId(String),
    #[error("join attribute {0} is not an ID attribute; ⋈̃ joins only on IDs (§2.2)")]
    JoinOnNonId(String),
    #[error("union operands have incompatible schemas: {left} vs {right}")]
    UnionShape { left: String, right: String },
    #[error("attribute name collision in join output: {0}")]
    JoinNameCollision(String),
    #[error("source error: {0}")]
    Source(String),
    /// A structured source failure: a named wrapper's scan failed, with the
    /// transient/permanent classification preserved so the mediator can tell
    /// "retry this scan" (or degrade around it) from a plan-shape bug. The
    /// `Display` form is byte-identical to the stringly [`Self::Source`]
    /// message this variant replaced on the wrapper path.
    #[error("source error: wrapper {source} failed: {cause}")]
    SourceFailure {
        /// The failing wrapper's name.
        source: String,
        /// Whether the failure is worth retrying (see
        /// `bdi_wrappers::FailureKind`).
        transient: bool,
        /// Human-readable cause, as the wrapper reported it.
        cause: String,
    },
}

/// An in-memory relation (bag semantics; [`Relation::distinct`] dedups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation over a schema.
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Builds a relation, checking every tuple's arity.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self, RelationError> {
        for row in &rows {
            if row.len() != schema.len() {
                return Err(RelationError::Arity {
                    expected: schema.len(),
                    found: row.len(),
                });
            }
        }
        Ok(Self { schema, rows })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consumes the relation, yielding its rows (used by the batch-scan
    /// adapters, which re-chunk an eagerly scanned relation without cloning).
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Keeps only the first `len` rows (no-op when the relation is already
    /// that short). Row-limit enforcement for per-query `max_rows` caps.
    pub fn truncate_rows(&mut self, len: usize) {
        self.rows.truncate(len);
    }

    /// Appends a tuple, checking arity.
    pub fn push(&mut self, row: Tuple) -> Result<(), RelationError> {
        if row.len() != self.schema.len() {
            return Err(RelationError::Arity {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The value at `(row, attribute)`.
    pub fn value(&self, row: usize, attribute: &str) -> Option<&Value> {
        let idx = self.schema.index_of(attribute)?;
        self.rows.get(row).map(|r| &r[idx])
    }

    /// One whole column by attribute name.
    pub fn column(&self, attribute: &str) -> Result<Vec<Value>, RelationError> {
        let idx = self.schema.require(attribute)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Set-semantics view: sorts and deduplicates rows in place.
    pub fn distinct(&mut self) {
        self.rows.sort();
        self.rows.dedup();
    }

    /// Sorts rows into the canonical total order **without** deduplicating
    /// (bag semantics preserved).
    pub fn sort_rows(&mut self) {
        self.rows.sort();
    }

    /// Returns a sorted/deduplicated copy.
    pub fn to_distinct(&self) -> Relation {
        let mut copy = self.clone();
        copy.distinct();
        copy
    }
}

impl fmt::Display for Relation {
    /// Renders the relation as an aligned ASCII table — the format used when
    /// regenerating the paper's Tables 1 and 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.name().to_owned())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            f.write_str("|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<width$} |", width = widths[i])?;
            }
            f.write_str("\n")
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        writeln!(f, "{sep}")?;
        write_row(f, &headers)?;
        writeln!(f, "{sep}")?;
        for row in &rendered {
            write_row(f, row)?;
        }
        writeln!(f, "{sep}")?;
        write!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::from_parts(&["id"], &["x"]).unwrap();
        Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(1), Value::Str("a".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_checked() {
        let schema = Schema::from_parts(&["id"], &["x"]).unwrap();
        let err = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::Arity {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn distinct_dedups() {
        let mut r = sample();
        r.distinct();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn value_and_column_access() {
        let r = sample();
        assert_eq!(r.value(1, "x"), Some(&Value::Str("b".into())));
        assert_eq!(r.column("id").unwrap().len(), 3);
        assert!(r.column("zz").is_err());
    }

    #[test]
    fn display_renders_table() {
        let r = sample().to_distinct();
        let text = r.to_string();
        assert!(text.contains("| id | x |"));
        assert!(text.contains("(2 rows)"));
    }
}
