//! Physical plans and the streaming batch executor.
//!
//! The logical layer ([`crate::algebra::RelExpr`] evaluated through
//! [`crate::ops`]) stays the executable specification of §2.2: eager,
//! tuple-at-a-time, cloning every surviving row at every operator. This
//! module is the engine production queries actually run on:
//!
//! * a [`PhysicalPlan`] of **scan / rename / project / hash-join / union**
//!   nodes, with attribute renames fused into the scans' [`ScanRequest`]s so
//!   they cost nothing at run time;
//! * a [`ValuePool`] interning every scalar once, so operators move rows of
//!   `u32` ids instead of cloning [`Value`]s — interning respects `Value`
//!   equality (`Int(2)` and `Float(2.0)` share an id), which makes id
//!   comparison exactly value comparison for joins and dedup;
//! * pull-based [`Operator`]s yielding bounded [`Batch`]es of interned rows;
//! * an [`ExecContext`] that caches interned scans and hash-join build sides
//!   keyed by `(scan, key attribute)`, so plans sharing a wrapper — walks in
//!   one rewriting almost always do — pay for each scan and build once. The
//!   context is `Sync`; per-walk plans can execute on scoped threads against
//!   a shared context.
//!
//! ## The pushdown contract
//!
//! A [`PlanSource`] receives a [`ScanRequest`] and must return a relation
//! with **exactly** the request's output schema, rows in the source's stable
//! scan order, surfacing only the requested columns and — when the request
//! carries an ID-equality [`ColumnFilter`] — only the matching rows.
//! [`ScanRequest::apply`] is the reference implementation that sources
//! without native pushdown fall back to (scan everything, then project,
//! rename and filter in the mediator).

use crate::relation::{Relation, RelationError, Tuple};
use crate::schema::{Attribute, Schema};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// FNV-1a. The executor hashes interned `u32` ids and small scalars by the
/// hundreds of thousands per query and never faces adversarial keys, so a
/// two-instruction multiplicative hash beats SipHash's DoS resistance.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    /// FNV's raw state has weak low-bit avalanche (integral-float bit
    /// patterns differ only in their high bits), and both the hash maps and
    /// the pool's shard selector key on low bits — finish with a
    /// murmur3-style mixer to spread the entropy.
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FnvBuild = BuildHasherDefault<Fnv>;

/// Upper bound on rows per [`Batch`] yielded by the streaming operators.
pub const BATCH_ROWS: usize = 1024;

/// Errors raised while building or executing physical plans.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum PlanError {
    #[error(transparent)]
    Relation(#[from] RelationError),
    #[error("scan of {source} returned schema {found}, expected {expected}")]
    ScanShape {
        source: String,
        expected: String,
        found: String,
    },
    #[error("projection index {index} out of range for schema {schema}")]
    ProjectionRange { index: usize, schema: String },
    #[error("union of zero plans")]
    EmptyUnion,
    #[error("union inputs have incompatible schemas: {left} vs {right}")]
    UnionShape { left: String, right: String },
}

/// An ID-equality selection pushed into a scan: `column = value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnFilter {
    /// Source-local column name.
    pub column: String,
    /// The value rows must equal ([`Value`] equality, so `Int(2)` matches
    /// `Float(2.0)`).
    pub value: Value,
}

impl fmt::Display for ColumnFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[{}={}]", self.column, self.value)
    }
}

/// What a [`PlanSource`] is asked to surface: a projection over its
/// source-local columns (already renamed to the mediator's output
/// attributes) and an optional ID-equality filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    /// Source-local column names, in output order.
    columns: Vec<String>,
    /// Output attributes, positionally aligned with `columns` — the fused
    /// rename.
    output: Schema,
    /// Optional pushed-down selection (on a source-local column, which need
    /// not be in `columns`).
    filter: Option<ColumnFilter>,
}

impl ScanRequest {
    /// Builds a request; `columns` and `output` must have equal arity.
    pub fn new(columns: Vec<String>, output: Schema) -> Result<Self, PlanError> {
        if columns.len() != output.len() {
            return Err(PlanError::Relation(RelationError::Arity {
                expected: output.len(),
                found: columns.len(),
            }));
        }
        Ok(Self {
            columns,
            output,
            filter: None,
        })
    }

    /// The identity request over a source schema: every column, unrenamed,
    /// unfiltered — what a pushdown-disabled plan asks for.
    pub fn full(schema: &Schema) -> Self {
        Self {
            columns: schema.names().into_iter().map(str::to_owned).collect(),
            output: schema.clone(),
            filter: None,
        }
    }

    /// Attaches an ID-equality filter.
    pub fn with_filter(mut self, column: impl Into<String>, value: Value) -> Self {
        self.filter = Some(ColumnFilter {
            column: column.into(),
            value,
        });
        self
    }

    /// Source-local column names, in output order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The schema the scan must produce.
    pub fn output(&self) -> &Schema {
        &self.output
    }

    /// The pushed-down selection, if any.
    pub fn filter(&self) -> Option<&ColumnFilter> {
        self.filter.as_ref()
    }

    /// Reference semantics of a request: project / rename / filter an
    /// eagerly scanned relation. Sources without native pushdown call this
    /// on their full scan; the differential tests pin native
    /// implementations against it.
    pub fn apply(&self, input: &Relation) -> Result<Relation, RelationError> {
        let mut indices = Vec::with_capacity(self.columns.len());
        for column in &self.columns {
            indices.push(input.schema().require(column)?);
        }
        let filter = match &self.filter {
            Some(f) => Some((input.schema().require(&f.column)?, &f.value)),
            None => None,
        };
        let mut rows = Vec::new();
        for row in input.rows() {
            if let Some((idx, value)) = filter {
                if &row[idx] != value {
                    continue;
                }
            }
            rows.push(indices.iter().map(|&i| row[i].clone()).collect());
        }
        Relation::new(self.output.clone(), rows)
    }
}

impl fmt::Display for ScanRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(filter) = &self.filter {
            write!(f, "{filter} ")?;
        }
        f.write_str("[")?;
        for (i, (col, attr)) in self
            .columns
            .iter()
            .zip(self.output.attributes())
            .enumerate()
        {
            if i > 0 {
                f.write_str(", ")?;
            }
            if col == attr.name() {
                f.write_str(col)?;
            } else {
                write!(f, "{col}→{}", attr.name())?;
            }
        }
        f.write_str("]")
    }
}

/// Resolves a source name and a pushed-down [`ScanRequest`] to a relation.
///
/// `Sync` is a supertrait so a shared [`ExecContext`] can fan walk plans out
/// across scoped threads.
pub trait PlanSource: Sync {
    /// Scans `source`, honouring the request (see the module docs for the
    /// contract).
    fn scan(&self, source: &str, request: &ScanRequest) -> Result<Relation, RelationError>;
}

/// Blanket impl so closures can act as plan sources in tests.
impl<F> PlanSource for F
where
    F: Fn(&str, &ScanRequest) -> Result<Relation, RelationError> + Sync,
{
    fn scan(&self, source: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
        self(source, request)
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// A compiled physical query plan.
///
/// Built through the checked constructors ([`PhysicalPlan::scan`],
/// [`PhysicalPlan::project`], [`PhysicalPlan::hash_join`], …), which compute
/// and validate every node's output schema once, at compile time. The
/// physical layer is deliberately more permissive than the §2.2 logical
/// operators: Π̃/⋈̃ restrictions are enforced when walks are *built*, not
/// re-checked per batch here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// Pushdown-aware source scan; renames are fused into the request.
    Scan {
        source: String,
        request: ScanRequest,
    },
    /// Pure relabeling — free at run time (batches pass through untouched).
    Rename {
        input: Box<PhysicalPlan>,
        schema: Schema,
    },
    /// Positional projection.
    Project {
        input: Box<PhysicalPlan>,
        indices: Vec<usize>,
        schema: Schema,
    },
    /// Equi-join; the executor builds a hash table over the smaller input
    /// (matching the eager [`crate::ops::join`] ordering contract) and
    /// streams the other side.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: usize,
        right_key: usize,
        schema: Schema,
    },
    /// Set union of schema-identical inputs; the executor deduplicates,
    /// emitting rows in first-occurrence order.
    Union { inputs: Vec<PhysicalPlan> },
}

impl PhysicalPlan {
    /// A scan leaf.
    pub fn scan(source: impl Into<String>, request: ScanRequest) -> Self {
        PhysicalPlan::Scan {
            source: source.into(),
            request,
        }
    }

    /// Relabels attributes (`(from, to)` pairs), preserving ID flags.
    pub fn rename(self, renames: &[(&str, &str)]) -> Result<Self, PlanError> {
        for (from, _) in renames {
            self.schema().require(from).map_err(RelationError::Schema)?;
        }
        let attrs = self
            .schema()
            .attributes()
            .iter()
            .map(|attr| {
                let name = renames
                    .iter()
                    .find(|(from, _)| from == &attr.name())
                    .map(|(_, to)| *to)
                    .unwrap_or(attr.name());
                if attr.is_id() {
                    Attribute::id(name)
                } else {
                    Attribute::non_id(name)
                }
            })
            .collect();
        let schema = Schema::new(attrs).map_err(RelationError::Schema)?;
        Ok(PhysicalPlan::Rename {
            input: Box::new(self),
            schema,
        })
    }

    /// Projects `indices` of the input, labelling them with `schema`.
    pub fn project(self, indices: Vec<usize>, schema: Schema) -> Result<Self, PlanError> {
        if indices.len() != schema.len() {
            return Err(PlanError::Relation(RelationError::Arity {
                expected: schema.len(),
                found: indices.len(),
            }));
        }
        for &index in &indices {
            if index >= self.schema().len() {
                return Err(PlanError::ProjectionRange {
                    index,
                    schema: self.schema().to_string(),
                });
            }
        }
        Ok(PhysicalPlan::Project {
            input: Box::new(self),
            indices,
            schema,
        })
    }

    /// Projects columns by name, labelling them with `schema` (positional).
    pub fn project_columns(self, columns: &[&str], schema: Schema) -> Result<Self, PlanError> {
        let mut indices = Vec::with_capacity(columns.len());
        for column in columns {
            indices.push(
                self.schema()
                    .require(column)
                    .map_err(RelationError::Schema)?,
            );
        }
        self.project(indices, schema)
    }

    /// Equi-joins with `right` on `left_attr = right_attr`. The output
    /// schema is left's attributes followed by right's; name collisions are
    /// rejected (walk compilation source-prefixes every attribute, so they
    /// cannot occur there).
    pub fn hash_join(
        self,
        right: PhysicalPlan,
        left_attr: &str,
        right_attr: &str,
    ) -> Result<Self, PlanError> {
        let left_key = self
            .schema()
            .require(left_attr)
            .map_err(RelationError::Schema)?;
        let right_key = right
            .schema()
            .require(right_attr)
            .map_err(RelationError::Schema)?;
        let mut attrs: Vec<Attribute> = self.schema().attributes().to_vec();
        attrs.extend(right.schema().attributes().iter().cloned());
        let schema = Schema::new(attrs).map_err(RelationError::Schema)?;
        Ok(PhysicalPlan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_key,
            right_key,
            schema,
        })
    }

    /// Set union of schema-identical plans.
    pub fn union(inputs: Vec<PhysicalPlan>) -> Result<Self, PlanError> {
        let first = inputs.first().ok_or(PlanError::EmptyUnion)?;
        for input in &inputs[1..] {
            if !input.schema().same_shape(first.schema()) {
                return Err(PlanError::UnionShape {
                    left: first.schema().to_string(),
                    right: input.schema().to_string(),
                });
            }
        }
        Ok(PhysicalPlan::Union { inputs })
    }

    /// The node's output schema (computed at construction).
    pub fn schema(&self) -> &Schema {
        match self {
            PhysicalPlan::Scan { request, .. } => request.output(),
            PhysicalPlan::Rename { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. } => schema,
            PhysicalPlan::Union { inputs } => inputs[0].schema(),
        }
    }

    /// The cache key of a scan leaf (`None` for interior nodes).
    fn scan_key(&self) -> Option<ScanKey> {
        match self {
            PhysicalPlan::Scan { source, request } => Some(ScanKey {
                source: source.clone(),
                columns: request.columns.clone(),
                filter: request.filter.clone(),
            }),
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalPlan {
    /// Renders the plan in a compact physical notation, e.g.
    /// `(scan w1 [monitorId→D1/VoDmonitorId] ⋈H[0=1] scan w3 [...])`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalPlan::Scan { source, request } => write!(f, "scan {source} {request}"),
            PhysicalPlan::Rename { input, schema } => write!(f, "ρ{schema}({input})"),
            PhysicalPlan::Project {
                input,
                indices,
                schema,
            } => {
                write!(f, "Π{schema}#{indices:?}({input})")
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => write!(f, "({left} ⋈H[{left_key}={right_key}] {right})"),
            PhysicalPlan::Union { inputs } => {
                let rendered: Vec<String> = inputs.iter().map(|p| p.to_string()).collect();
                write!(f, "∪({})", rendered.join(", "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interning
// ---------------------------------------------------------------------------

const POOL_SHARD_BITS: u32 = 4;
const POOL_SHARDS: usize = 1 << POOL_SHARD_BITS;

/// Interns [`Value`]s to `u32` ids. Interning respects `Value` equality and
/// hashing (which are cross-type for numerics), so id equality is exactly
/// value equality — joins and dedup never touch the values themselves.
///
/// The pool is sharded by value hash (an id is `local_index << 4 | shard`):
/// interning takes `&self` and only locks one shard briefly, so parallel
/// walk executors intern concurrently instead of serializing on one mutex.
pub struct ValuePool {
    hasher: FnvBuild,
    shards: Vec<Mutex<PoolShard>>,
}

#[derive(Default)]
struct PoolShard {
    values: Vec<Value>,
    index: HashMap<Value, u32, FnvBuild>,
}

impl Default for ValuePool {
    fn default() -> Self {
        Self {
            hasher: FnvBuild::default(),
            shards: (0..POOL_SHARDS)
                .map(|_| Mutex::new(PoolShard::default()))
                .collect(),
        }
    }
}

impl ValuePool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value (one clone on first occurrence only).
    pub fn intern(&self, value: &Value) -> u32 {
        let shard_index = (self.hasher.hash_one(value) as usize) & (POOL_SHARDS - 1);
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("value pool poisoned");
        if let Some(&local) = shard.index.get(value) {
            return (local << POOL_SHARD_BITS) | shard_index as u32;
        }
        let local = shard.values.len() as u32;
        // Ids pack as `local << 4 | shard`; overflowing the 28 local bits
        // would silently alias two distinct values — fail loudly instead.
        assert!(
            local < 1 << (32 - POOL_SHARD_BITS),
            "value pool shard overflow: more than 2^28 distinct values in one shard"
        );
        shard.values.push(value.clone());
        shard.index.insert(value.clone(), local);
        (local << POOL_SHARD_BITS) | shard_index as u32
    }

    /// A read handle decoding ids without re-locking per value. Shards are
    /// locked in index order (the only multi-shard acquisition, so lock
    /// ordering is consistent); drop the reader before interning again on
    /// the same thread.
    pub fn reader(&self) -> PoolReader<'_> {
        PoolReader {
            guards: self
                .shards
                .iter()
                .map(|s| s.lock().expect("value pool poisoned"))
                .collect(),
        }
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("value pool poisoned").values.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A locked view of a [`ValuePool`] for bulk decoding.
pub struct PoolReader<'a> {
    guards: Vec<MutexGuard<'a, PoolShard>>,
}

impl PoolReader<'_> {
    /// The value behind an id.
    pub fn decode(&self, id: u32) -> &Value {
        let shard = (id as usize) & (POOL_SHARDS - 1);
        &self.guards[shard].values[(id >> POOL_SHARD_BITS) as usize]
    }
}

/// A block of rows in interned id space. `arity` may be zero, so the row
/// count is tracked explicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    arity: usize,
    len: usize,
    data: Vec<u32>,
}

impl Batch {
    /// An empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            data: Vec::new(),
        }
    }

    /// Appends one row; the iterator must yield exactly `arity` ids.
    pub fn push(&mut self, row: impl IntoIterator<Item = u32>) {
        let before = self.data.len();
        self.data.extend(row);
        debug_assert_eq!(self.data.len() - before, self.arity);
        self.len += 1;
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` as an id slice.
    pub fn row(&self, i: usize) -> &[u32] {
        debug_assert!(i < self.len);
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// All rows, in order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Appends every row of `other` (equal arity).
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.arity, other.arity);
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    /// A copy of rows `[start, start + len)`.
    fn slice(&self, start: usize, len: usize) -> Batch {
        Batch {
            arity: self.arity,
            len,
            data: self.data[start * self.arity..(start + len) * self.arity].to_vec(),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution context: shared pool + scan/build caches
// ---------------------------------------------------------------------------

/// Identity of a scan's *data* (output attribute labels excluded — two
/// requests differing only in labels read the same rows).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScanKey {
    source: String,
    columns: Vec<String>,
    filter: Option<ColumnFilter>,
}

type ScanCell = Arc<OnceLock<Result<Arc<Batch>, PlanError>>>;

/// A hash-join build side: interned key id → build-row indices, in row
/// order (so probe output preserves build insertion order, matching the
/// eager join).
#[derive(Debug, Default)]
pub struct JoinIndex {
    groups: HashMap<u32, Vec<u32>, FnvBuild>,
}

impl JoinIndex {
    fn matches(&self, key: u32) -> Option<&[u32]> {
        self.groups.get(&key).map(Vec::as_slice)
    }
}

/// Shared state for executing one query's worth of plans: the value pool,
/// the interned-scan cache and the hash-join build cache. `Sync` — walk
/// plans for one rewriting run against a single shared context, possibly
/// from scoped threads.
pub struct ExecContext<'a> {
    source: &'a dyn PlanSource,
    pool: ValuePool,
    null_id: u32,
    scans: Mutex<HashMap<ScanKey, ScanCell>>,
    builds: Mutex<HashMap<(ScanKey, usize), Arc<JoinIndex>>>,
}

impl<'a> ExecContext<'a> {
    pub fn new(source: &'a dyn PlanSource) -> Self {
        let pool = ValuePool::new();
        let null_id = pool.intern(&Value::Null);
        Self {
            source,
            pool,
            null_id,
            scans: Mutex::new(HashMap::new()),
            builds: Mutex::new(HashMap::new()),
        }
    }

    /// The id `Value::Null` interns to (join keys equal to it never match).
    pub fn null_id(&self) -> u32 {
        self.null_id
    }

    /// Interns an entire relation.
    pub fn intern_relation(&self, relation: &Relation) -> Batch {
        let mut batch = Batch::new(relation.schema().len());
        for row in relation.rows() {
            batch.push(row.iter().map(|v| self.pool.intern(v)));
        }
        batch
    }

    /// Decodes a batch back to owned tuples under one pool read handle.
    pub fn decode_batch(&self, batch: &Batch) -> Vec<Tuple> {
        let reader = self.pool.reader();
        batch
            .rows()
            .map(|row| row.iter().map(|&id| reader.decode(id).clone()).collect())
            .collect()
    }

    /// Decodes arbitrary id rows back to owned tuples under one pool read
    /// handle.
    pub fn decode_rows<'b>(&self, rows: impl IntoIterator<Item = &'b [u32]>) -> Vec<Tuple> {
        let reader = self.pool.reader();
        rows.into_iter()
            .map(|row| row.iter().map(|&id| reader.decode(id).clone()).collect())
            .collect()
    }

    /// The interned rows of a scan, computed once per distinct
    /// `(source, columns, filter)` and shared by every plan in the context.
    fn scan(&self, source: &str, request: &ScanRequest) -> Result<Arc<Batch>, PlanError> {
        let key = ScanKey {
            source: source.to_owned(),
            columns: request.columns.clone(),
            filter: request.filter.clone(),
        };
        let cell = self
            .scans
            .lock()
            .expect("scan cache poisoned")
            .entry(key)
            .or_default()
            .clone();
        cell.get_or_init(|| -> Result<Arc<Batch>, PlanError> {
            let relation = self.source.scan(source, request)?;
            if relation.schema().len() != request.output().len() {
                return Err(PlanError::ScanShape {
                    source: source.to_owned(),
                    expected: request.output().to_string(),
                    found: relation.schema().to_string(),
                });
            }
            Ok(Arc::new(self.intern_relation(&relation)))
        })
        .clone()
    }

    /// A hash-join build index over `table[key]`, cached when the build side
    /// is a scan (`cache_key`), so walks joining the same wrapper on the
    /// same ID attribute build it once.
    fn build_index(
        &self,
        cache_key: Option<(ScanKey, usize)>,
        table: &Batch,
        key: usize,
    ) -> Arc<JoinIndex> {
        if let Some(k) = &cache_key {
            if let Some(index) = self.builds.lock().expect("build cache poisoned").get(k) {
                return index.clone();
            }
        }
        let mut groups: HashMap<u32, Vec<u32>, FnvBuild> = HashMap::default();
        for (i, row) in table.rows().enumerate() {
            let key_id = row[key];
            if key_id == self.null_id {
                continue; // null keys never join
            }
            groups.entry(key_id).or_default().push(i as u32);
        }
        let index = Arc::new(JoinIndex { groups });
        if let Some(k) = cache_key {
            self.builds
                .lock()
                .expect("build cache poisoned")
                .insert(k, index.clone());
        }
        index
    }
}

/// An arena-backed set of interned rows: unique rows live concatenated in
/// one `Vec<u32>`, membership goes through a row-hash index — no per-row
/// allocation, unlike a `HashSet<Box<[u32]>>`. Used by the streamed union's
/// dedup.
pub struct RowSet {
    arity: usize,
    len: usize,
    data: Vec<u32>,
    hasher: FnvBuild,
    /// Row hash → ordinal of the first row with that hash.
    index: HashMap<u64, u32, FnvBuild>,
    /// Rare same-hash-different-row entries, scanned linearly.
    overflow: Vec<(u64, u32)>,
}

impl RowSet {
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            data: Vec::new(),
            hasher: FnvBuild::default(),
            index: HashMap::default(),
            overflow: Vec::new(),
        }
    }

    fn row(&self, ordinal: usize) -> &[u32] {
        &self.data[ordinal * self.arity..(ordinal + 1) * self.arity]
    }

    fn push_row(&mut self, row: &[u32]) -> u32 {
        let ordinal = self.len as u32;
        self.data.extend_from_slice(row);
        self.len += 1;
        ordinal
    }

    /// Inserts a row; returns whether it was new.
    pub fn insert(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let hash = self.hasher.hash_one(row);
        match self.index.get(&hash) {
            None => {
                let ordinal = self.push_row(row);
                self.index.insert(hash, ordinal);
                true
            }
            Some(&ordinal) => {
                if self.row(ordinal as usize) == row {
                    return false;
                }
                if self
                    .overflow
                    .iter()
                    .any(|&(h, o)| h == hash && self.row(o as usize) == row)
                {
                    return false;
                }
                let ordinal = self.push_row(row);
                self.overflow.push((hash, ordinal));
                true
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The unique rows, in first-insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// A pull-based streaming operator tree compiled from a [`PhysicalPlan`].
/// Each [`Operator::next_batch`] call yields at most [`BATCH_ROWS`] rows.
pub struct Operator {
    node: OpNode,
}

enum OpNode {
    Scan {
        source: String,
        request: ScanRequest,
        table: Option<Arc<Batch>>,
        cursor: usize,
    },
    Rename {
        input: Box<OpNode>,
    },
    Project {
        input: Box<OpNode>,
        indices: Vec<usize>,
    },
    HashJoin {
        left: Box<OpNode>,
        right: Box<OpNode>,
        left_key: usize,
        right_key: usize,
        left_scan: Option<ScanKey>,
        right_scan: Option<ScanKey>,
        arity: usize,
        state: Option<JoinState>,
    },
    Union {
        inputs: Vec<OpNode>,
        current: usize,
        seen: RowSet,
        arity: usize,
    },
}

struct JoinState {
    build: Arc<Batch>,
    probe: Arc<Batch>,
    index: Arc<JoinIndex>,
    build_is_left: bool,
    probe_key: usize,
    probe_cursor: usize,
}

impl Operator {
    /// Compiles a plan into its operator tree.
    pub fn new(plan: &PhysicalPlan) -> Self {
        Self {
            node: OpNode::compile(plan),
        }
    }

    /// Pulls the next batch, or `None` when exhausted.
    pub fn next_batch(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Batch>, PlanError> {
        self.node.next_batch(ctx)
    }
}

impl OpNode {
    fn compile(plan: &PhysicalPlan) -> OpNode {
        match plan {
            PhysicalPlan::Scan { source, request } => OpNode::Scan {
                source: source.clone(),
                request: request.clone(),
                table: None,
                cursor: 0,
            },
            PhysicalPlan::Rename { input, .. } => OpNode::Rename {
                input: Box::new(OpNode::compile(input)),
            },
            PhysicalPlan::Project { input, indices, .. } => OpNode::Project {
                input: Box::new(OpNode::compile(input)),
                indices: indices.clone(),
            },
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                schema,
            } => OpNode::HashJoin {
                left_scan: left.scan_key(),
                right_scan: right.scan_key(),
                left: Box::new(OpNode::compile(left)),
                right: Box::new(OpNode::compile(right)),
                left_key: *left_key,
                right_key: *right_key,
                arity: schema.len(),
                state: None,
            },
            PhysicalPlan::Union { inputs } => OpNode::Union {
                arity: inputs[0].schema().len(),
                inputs: inputs.iter().map(OpNode::compile).collect(),
                current: 0,
                seen: RowSet::new(inputs[0].schema().len()),
            },
        }
    }

    fn arity(&self) -> usize {
        match self {
            OpNode::Scan { request, .. } => request.output().len(),
            OpNode::Rename { input } => input.arity(),
            OpNode::Project { indices, .. } => indices.len(),
            OpNode::HashJoin { arity, .. } | OpNode::Union { arity, .. } => *arity,
        }
    }

    /// Drains the subtree into one table. Scan leaves hand back the shared
    /// interned table without copying.
    fn materialize(&mut self, ctx: &ExecContext<'_>) -> Result<Arc<Batch>, PlanError> {
        if let OpNode::Scan {
            source, request, ..
        } = self
        {
            return ctx.scan(source, request);
        }
        let mut out = Batch::new(self.arity());
        while let Some(batch) = self.next_batch(ctx)? {
            out.append(&batch);
        }
        Ok(Arc::new(out))
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Batch>, PlanError> {
        match self {
            OpNode::Scan {
                source,
                request,
                table,
                cursor,
            } => {
                if table.is_none() {
                    *table = Some(ctx.scan(source, request)?);
                }
                let t = table.as_ref().expect("scan table just initialized");
                if *cursor >= t.len() {
                    return Ok(None);
                }
                let take = BATCH_ROWS.min(t.len() - *cursor);
                let out = t.slice(*cursor, take);
                *cursor += take;
                Ok(Some(out))
            }
            OpNode::Rename { input } => input.next_batch(ctx),
            OpNode::Project { input, indices } => {
                let Some(batch) = input.next_batch(ctx)? else {
                    return Ok(None);
                };
                let mut out = Batch::new(indices.len());
                for row in batch.rows() {
                    out.push(indices.iter().map(|&i| row[i]));
                }
                Ok(Some(out))
            }
            OpNode::HashJoin {
                left,
                right,
                left_key,
                right_key,
                left_scan,
                right_scan,
                arity,
                state,
            } => {
                if state.is_none() {
                    let left_table = left.materialize(ctx)?;
                    let right_table = right.materialize(ctx)?;
                    // Build on the smaller side — the same rule (and thus the
                    // same output row order) as the eager `ops::join`.
                    let build_is_left = left_table.len() <= right_table.len();
                    let (build, probe, build_key, probe_key, build_cache) = if build_is_left {
                        (left_table, right_table, *left_key, *right_key, left_scan)
                    } else {
                        (right_table, left_table, *right_key, *left_key, right_scan)
                    };
                    let cache_key = build_cache.clone().map(|k| (k, build_key));
                    let index = ctx.build_index(cache_key, &build, build_key);
                    *state = Some(JoinState {
                        build,
                        probe,
                        index,
                        build_is_left,
                        probe_key,
                        probe_cursor: 0,
                    });
                }
                let st = state.as_mut().expect("join state just initialized");
                let mut out = Batch::new(*arity);
                while st.probe_cursor < st.probe.len() && out.len() < BATCH_ROWS {
                    let probe_row = st.probe.row(st.probe_cursor);
                    st.probe_cursor += 1;
                    let key = probe_row[st.probe_key];
                    if key == ctx.null_id() {
                        continue;
                    }
                    if let Some(matches) = st.index.matches(key) {
                        for &bi in matches {
                            let build_row = st.build.row(bi as usize);
                            let (l, r) = if st.build_is_left {
                                (build_row, probe_row)
                            } else {
                                (probe_row, build_row)
                            };
                            out.push(l.iter().chain(r.iter()).copied());
                        }
                    }
                }
                if out.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(out))
                }
            }
            OpNode::Union {
                inputs,
                current,
                seen,
                arity,
            } => loop {
                let Some(input) = inputs.get_mut(*current) else {
                    return Ok(None);
                };
                match input.next_batch(ctx)? {
                    None => *current += 1,
                    Some(batch) => {
                        let mut out = Batch::new(*arity);
                        for row in batch.rows() {
                            if seen.insert(row) {
                                out.push(row.iter().copied());
                            }
                        }
                        if !out.is_empty() {
                            return Ok(Some(out));
                        }
                    }
                }
            },
        }
    }
}

/// Runs a plan to completion against a fresh context, decoding the result.
///
/// Union nodes deduplicate (set semantics) and emit rows in first-occurrence
/// order; every other operator preserves its input order. Callers wanting
/// the canonical sorted form apply [`Relation::distinct`] themselves.
pub fn execute_plan(plan: &PhysicalPlan, source: &dyn PlanSource) -> Result<Relation, PlanError> {
    let ctx = ExecContext::new(source);
    execute_plan_in(plan, &ctx)
}

/// Runs a plan to completion against an existing (possibly shared) context.
pub fn execute_plan_in(plan: &PhysicalPlan, ctx: &ExecContext<'_>) -> Result<Relation, PlanError> {
    let mut op = Operator::new(plan);
    let mut rows: Vec<Tuple> = Vec::new();
    while let Some(batch) = op.next_batch(ctx)? {
        rows.extend(ctx.decode_batch(&batch));
    }
    Ok(Relation::new(plan.schema().clone(), rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn w1() -> Relation {
        Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![
                vec![Value::Int(12), Value::Float(0.75)],
                vec![Value::Int(12), Value::Float(0.90)],
                vec![Value::Int(18), Value::Float(0.1)],
            ],
        )
        .unwrap()
    }

    fn w3() -> Relation {
        Relation::new(
            Schema::from_parts::<&str>(&["TargetApp", "MonitorId", "FeedbackId"], &[]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(12), Value::Int(77)],
                vec![Value::Int(2), Value::Int(18), Value::Int(45)],
            ],
        )
        .unwrap()
    }

    fn source(name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
        match name {
            "w1" => request.apply(&w1()),
            "w3" => request.apply(&w3()),
            other => Err(RelationError::Source(format!("unknown source {other}"))),
        }
    }

    fn scan_all(name: &str, rel: &Relation) -> PhysicalPlan {
        PhysicalPlan::scan(name, ScanRequest::full(rel.schema()))
    }

    #[test]
    fn scan_request_apply_projects_renames_filters() {
        let request = ScanRequest::new(
            vec!["lagRatio".into(), "VoDmonitorId".into()],
            Schema::new(vec![
                Attribute::non_id("D1/lagRatio"),
                Attribute::id("D1/VoDmonitorId"),
            ])
            .unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let out = request.apply(&w1()).unwrap();
        assert_eq!(out.schema().names(), vec!["D1/lagRatio", "D1/VoDmonitorId"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, "D1/lagRatio"), Some(&Value::Float(0.75)));
    }

    #[test]
    fn streamed_join_matches_eager_join_byte_for_byte() {
        let plan = scan_all("w1", &w1())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        let streamed = execute_plan(&plan, &source).unwrap();
        let eager = ops::join(&w1(), &w3(), "VoDmonitorId", "MonitorId").unwrap();
        assert_eq!(streamed, eager);
        assert_eq!(streamed.rows(), eager.rows()); // identical order too
    }

    #[test]
    fn join_build_side_follows_the_eager_size_rule() {
        // w3 (2 rows) < w1 (3 rows): eager builds on w3 when it is the left
        // operand; the plan executor must emit the same probe-major order.
        let plan = scan_all("w3", &w3())
            .hash_join(scan_all("w1", &w1()), "MonitorId", "VoDmonitorId")
            .unwrap();
        let streamed = execute_plan(&plan, &source).unwrap();
        let eager = ops::join(&w3(), &w1(), "MonitorId", "VoDmonitorId").unwrap();
        assert_eq!(streamed.rows(), eager.rows());
    }

    #[test]
    fn join_skips_null_keys() {
        let left = Relation::new(
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(5), Value::Int(2)],
            ],
        )
        .unwrap();
        let right = Relation::new(
            Schema::from_parts::<&str>(&["rid"], &[]).unwrap(),
            vec![vec![Value::Null], vec![Value::Int(5)]],
        )
        .unwrap();
        let src = move |name: &str, request: &ScanRequest| match name {
            "l" => request.apply(&left),
            "r" => request.apply(&right),
            _ => Err(RelationError::Source("unknown".into())),
        };
        let plan = PhysicalPlan::scan(
            "l",
            ScanRequest::full(&Schema::from_parts(&["id"], &["x"]).unwrap()),
        )
        .hash_join(
            PhysicalPlan::scan(
                "r",
                ScanRequest::full(&Schema::from_parts::<&str>(&["rid"], &[]).unwrap()),
            ),
            "id",
            "rid",
        )
        .unwrap();
        let out = execute_plan(&plan, &src).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn union_dedups_in_first_occurrence_order() {
        let a = scan_all("w1", &w1());
        let plan = PhysicalPlan::union(vec![a.clone(), a]).unwrap();
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.len(), 3); // both inputs identical → one copy each
        assert_eq!(out.rows()[0], w1().rows()[0]); // original order kept
    }

    #[test]
    fn union_rejects_shape_mismatch_and_emptiness() {
        assert!(matches!(
            PhysicalPlan::union(vec![]),
            Err(PlanError::EmptyUnion)
        ));
        let err = PhysicalPlan::union(vec![scan_all("w1", &w1()), scan_all("w3", &w3())]);
        assert!(matches!(err, Err(PlanError::UnionShape { .. })));
    }

    #[test]
    fn scans_are_cached_per_request_across_plans() {
        let scans = AtomicUsize::new(0);
        let counting = |name: &str, request: &ScanRequest| {
            scans.fetch_add(1, Ordering::SeqCst);
            source(name, request)
        };
        let ctx = ExecContext::new(&counting);
        let plan = scan_all("w1", &w1());
        execute_plan_in(&plan, &ctx).unwrap();
        execute_plan_in(&plan, &ctx).unwrap();
        assert_eq!(scans.load(Ordering::SeqCst), 1);

        // A different request (a filter) is a different cache entry.
        let filtered = PhysicalPlan::scan(
            "w1",
            ScanRequest::full(w1().schema()).with_filter("VoDmonitorId", Value::Int(18)),
        );
        let out = execute_plan_in(&filtered, &ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(scans.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn interning_respects_cross_type_numeric_equality() {
        let ctx = ExecContext::new(&source);
        let rel = Relation::new(
            Schema::from_parts::<&str>(&[], &["x"]).unwrap(),
            vec![vec![Value::Int(2)], vec![Value::Float(2.0)]],
        )
        .unwrap();
        let batch = ctx.intern_relation(&rel);
        assert_eq!(batch.row(0), batch.row(1));
    }

    #[test]
    fn rename_is_free_and_relabels() {
        let plan = scan_all("w1", &w1())
            .rename(&[("VoDmonitorId", "monitorId")])
            .unwrap();
        assert!(plan.schema().attribute("monitorId").unwrap().is_id());
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.len(), 3);
        assert!(scan_all("w1", &w1()).rename(&[("zz", "x")]).is_err());
    }

    #[test]
    fn project_by_indices_and_columns() {
        let plan = scan_all("w1", &w1())
            .project_columns(
                &["lagRatio"],
                Schema::from_parts::<&str>(&[], &["lagRatio"]).unwrap(),
            )
            .unwrap();
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.schema().names(), vec!["lagRatio"]);
        assert_eq!(out.len(), 3);

        let err = scan_all("w1", &w1())
            .project(vec![7], Schema::from_parts::<&str>(&[], &["x"]).unwrap());
        assert!(matches!(err, Err(PlanError::ProjectionRange { .. })));
    }

    #[test]
    fn batches_bound_row_counts() {
        // 3000 rows → 1024 + 1024 + 952.
        let schema = Schema::from_parts::<&str>(&["id"], &[]).unwrap();
        let big = Relation::new(
            schema.clone(),
            (0..3000).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let src = move |_: &str, request: &ScanRequest| request.apply(&big);
        let ctx = ExecContext::new(&src);
        let mut op = Operator::new(&PhysicalPlan::scan("big", ScanRequest::full(&schema)));
        let mut sizes = Vec::new();
        while let Some(batch) = op.next_batch(&ctx).unwrap() {
            sizes.push(batch.len());
        }
        assert_eq!(sizes, vec![1024, 1024, 952]);
    }
}
