//! Physical plans and the streaming batch executor.
//!
//! The logical layer ([`crate::algebra::RelExpr`] evaluated through
//! [`crate::ops`]) stays the executable specification of §2.2: eager,
//! tuple-at-a-time, cloning every surviving row at every operator. This
//! module is the engine production queries actually run on:
//!
//! * a [`PhysicalPlan`] of **scan / rename / project / hash-join / union**
//!   nodes, with attribute renames fused into the scans' [`ScanRequest`]s so
//!   they cost nothing at run time;
//! * a [`ValuePool`] interning every scalar once, so operators move rows of
//!   `u32` ids instead of cloning [`Value`]s — interning respects `Value`
//!   equality (`Int(2)` and `Float(2.0)` share an id), which makes id
//!   comparison exactly value comparison for joins and dedup;
//! * pull-based [`Operator`]s yielding bounded [`Batch`]es of interned rows;
//! * an [`ExecContext`] that caches interned scans and hash-join build sides
//!   keyed by `(scan, key attribute)`, so plans sharing a wrapper — walks in
//!   one rewriting almost always do — pay for each scan and build once. The
//!   context is `Sync`; per-walk plans can execute on scoped threads against
//!   a shared context.
//!
//! ## The pushdown contract
//!
//! A [`PlanSource`] receives a [`ScanRequest`] and must return a relation
//! with **exactly** the request's output schema, rows in the source's stable
//! scan order, surfacing only the requested columns and — when the request
//! carries [`ColumnFilter`]s — only the rows satisfying *every* filter's
//! [`Predicate`] (equality, IN-set, or an ordered range over [`Value`]'s
//! total order). [`ScanRequest::apply`] is the reference implementation that
//! sources without native pushdown fall back to (scan everything, then
//! project, rename and filter in the mediator).
//!
//! Sources advertise per-filter capability through [`PlanSource::claims`]:
//! plan compilers hand a source only the filters it claims, and evaluate
//! the *residue* — whatever was not claimed — in a mediator-side
//! [`PhysicalPlan::Filter`] above the scan, so answers are identical
//! whatever a source can natively honour.
//!
//! ## The streaming scan contract
//!
//! Scans reach sources through [`PlanSource::scan_batches`]: a stream of
//! bounded value-space row batches, interned one batch at a time, so the
//! whole-relation `Vec` the eager [`PlanSource::scan`] contract implies
//! never materializes in the mediator. The default implementation is a
//! one-shot adapter over `scan` (third-party sources keep working
//! unchanged); native sources yield one batch of projected cells at a time
//! under short lock holds. [`PlanSource::data_version`] stamps each scan
//! with the source's data generation — the [`ExecContext`] scan cache keys
//! on it, so contexts reused across queries can never serve rows scanned
//! before a source mutation. [`execute_plan_prefetched`] issues a plan's
//! scans concurrently on scoped threads ahead of the pulling pipeline.
//!
//! ## Runtime policy: semi-join sideways passing & cursor-only scans
//!
//! Execution entry points take an [`ExecPolicy`] (separate from the plan —
//! the same compiled plan runs under any policy):
//!
//! * **Semi-join sideways information passing**
//!   ([`ExecPolicy::semijoin_max_keys`]): a hash join schedules its build
//!   side first — chosen by the sources' [`PlanSource::scan_hint`] row
//!   estimates, mirroring the eager smaller-side rule when hints are exact —
//!   and, when the build side's distinct key set is small enough, injects it
//!   as an IN-set [`ColumnFilter`] into the probe child's scan request
//!   *before* the probe scan is issued. Rows the join would discard are then
//!   never shipped out of the source at all. The IN-set is injected only
//!   when the source claims it ([`PlanSource::claims`]); otherwise the probe
//!   scan runs unreduced and the join's own hash probe is the residual
//!   semi-join, so answers are identical either way. A key-reduced probe
//!   scan is query-specific and always bypasses the scan cache. When the
//!   build side's key set exceeds `semijoin_max_keys`, the pass degrades to
//!   a **bloom semi-join** ([`ExecPolicy::bloom_semijoins`]): a compact
//!   [`Predicate::Bloom`] membership filter built from the live build keys
//!   is injected instead of the IN-set. Its false positives only admit
//!   extra probe rows the join's hash probe then discards, so answers stay
//!   identical to the eager reference.
//! * **Cursor-only scans** ([`ExecPolicy::scan_cache`]): instead of
//!   materializing the whole interned table in the [`ExecContext`] cache, a
//!   scan can pull interned batches straight through
//!   ([`ScanCache::Never`], or [`ScanCache::Auto`] when the source's size
//!   hint exceeds the context's value-cap watermark) — the mediator's
//!   resident footprint for such a scan is one batch, making sources larger
//!   than RAM (even in id space) queryable.

use crate::relation::{Relation, RelationError, Tuple};
use crate::schema::{Attribute, Schema};
use crate::stats::{BloomFilter, TableStats};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// FNV-1a. The executor hashes interned `u32` ids and small scalars by the
/// hundreds of thousands per query and never faces adversarial keys, so a
/// two-instruction multiplicative hash beats SipHash's DoS resistance.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    /// FNV's raw state has weak low-bit avalanche (integral-float bit
    /// patterns differ only in their high bits), and both the hash maps and
    /// the pool's shard selector key on low bits — finish with a
    /// murmur3-style mixer to spread the entropy.
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FnvBuild = BuildHasherDefault<Fnv>;

/// Upper bound on rows per [`Batch`] yielded by the streaming operators.
pub const BATCH_ROWS: usize = 1024;

/// Default [`ExecPolicy::semijoin_max_keys`]: IN-sets beyond this are more
/// expensive to evaluate source-side than the rows they would save.
pub const DEFAULT_SEMIJOIN_MAX_KEYS: usize = 16 * 1024;

/// Selectivity gate for the sideways pass: the build-key IN-set is
/// injected only when it promises at least this reduction factor over the
/// probe's hinted row count (`keys × factor ≤ probe rows`). A
/// non-selective join — every probe row surviving — would pay the
/// source-side membership probes *and* forfeit probe-scan cache sharing
/// across walks, for zero rows saved.
const SEMIJOIN_SELECTIVITY: u64 = 4;

/// Upper bound on build-side distinct keys for the *bloom* degradation of
/// the sideways pass. A bloom filter over this many keys is ~1.25 MiB —
/// past that, shipping and probing the filter stops paying for itself.
pub const BLOOM_SEMIJOIN_MAX_KEYS: usize = 1 << 20;

/// Target interned payload per adaptively-sized scan batch, in bytes.
/// When a source publishes [`TableStats`] with row-width estimates, scans
/// size their batches as `target / row width` (clamped) instead of the
/// flat [`BATCH_ROWS`] — wide rows batch smaller (bounding resident
/// memory), narrow rows batch larger (fewer lock acquisitions per row).
const ADAPTIVE_BATCH_BYTES: u64 = 256 * 1024;

/// Clamp bounds for adaptively-sized scan batches, in rows.
const ADAPTIVE_BATCH_MIN_ROWS: usize = 256;
const ADAPTIVE_BATCH_MAX_ROWS: usize = 8 * 1024;

/// Row-id cells a stats-gated cache admission may store per value-cap
/// unit. The stats path of [`ScanCache::Auto`] bounds *pool* growth by
/// per-column distinct counts, but the cached [`Batch`] itself stores
/// post-filter rows × arity `u32` ids however few distinct values they
/// decode to — this factor caps that storage relative to the value cap,
/// weighting a 4-byte id cell against an interned [`Value`] plus its pool
/// overhead (conservatively this many id cells per value).
const SCAN_CACHE_ID_CELLS_PER_VALUE: u64 = 8;

/// How scans materialize through the [`ExecContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanCache {
    /// Cache interned scans, except when a scan's estimated interned size —
    /// [`PlanSource::scan_hint`] rows × output arity, i.e. the cells the
    /// cached table would hold — exceeds the context's
    /// [`ExecContext::value_cap`] watermark: such scans run cursor-only
    /// rather than blow the memory bound the cap promises. An uncapped
    /// context caches everything (the pre-cursor behaviour).
    #[default]
    Auto,
    /// Always cache, whatever the hints say.
    Always,
    /// Never cache: every scan pulls interned batches straight through
    /// ("cursor-only"). Peak resident memory per scan is one batch, at the
    /// cost of re-reading sources on every execution — the right trade for
    /// one-shot queries over sources larger than RAM.
    Never,
}

/// Runtime execution policy, orthogonal to the compiled [`PhysicalPlan`]:
/// the same plan executes under any policy, and answers never depend on it
/// (pinned differentially against the eager engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Semi-join sideways passing: when a hash join's build side has at most
    /// this many distinct keys, they are injected as an IN-set filter into
    /// the probe child's scan request (when the source claims it). `0`
    /// disables the sideways pass entirely, including the hint-driven build
    /// scheduling that enables it.
    pub semijoin_max_keys: usize,
    /// Bloom degradation of the sideways pass: when the build side's
    /// distinct keys exceed `semijoin_max_keys` (but stay within
    /// [`BLOOM_SEMIJOIN_MAX_KEYS`]), inject a [`Predicate::Bloom`]
    /// membership filter over the live build keys instead of disabling the
    /// pass. False positives only admit extra probe rows that the join's
    /// own hash probe discards, so answers are unaffected either way.
    pub bloom_semijoins: bool,
    /// How scans materialize through the shared context (see [`ScanCache`]).
    pub scan_cache: ScanCache,
    /// Absolute wall-clock deadline for the execution. Checked at every
    /// batch boundary (operator pulls, scan-cache fills, cursor pulls) and
    /// while waiting on a queued prefetch feed, so a stalled or slow source
    /// surfaces [`PlanError::DeadlineExceeded`] instead of hanging the
    /// query. The worst-case overshoot is one source batch fetch — the
    /// executor never cancels a fetch already in flight. `None` (the
    /// default) never times out.
    pub deadline: Option<Instant>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            semijoin_max_keys: DEFAULT_SEMIJOIN_MAX_KEYS,
            bloom_semijoins: true,
            scan_cache: ScanCache::Auto,
            deadline: None,
        }
    }
}

impl ExecPolicy {
    /// Whether this policy's deadline (if any) has already passed.
    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Errors raised while building or executing physical plans.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum PlanError {
    #[error(transparent)]
    Relation(#[from] RelationError),
    /// The execution ran past [`ExecPolicy::deadline`] and was aborted at
    /// the next batch boundary.
    #[error("query deadline exceeded")]
    DeadlineExceeded,
    #[error("projection index {index} out of range for schema {schema}")]
    ProjectionRange { index: usize, schema: String },
    #[error("union of zero plans")]
    EmptyUnion,
    #[error("union inputs have incompatible schemas: {left} vs {right}")]
    UnionShape { left: String, right: String },
}

/// One endpoint of a [`Predicate::Range`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bound {
    pub value: Value,
    /// Whether the endpoint itself is admitted (`>=`/`<=` vs `>`/`<`).
    pub inclusive: bool,
}

impl Bound {
    pub fn inclusive(value: Value) -> Self {
        Self {
            value,
            inclusive: true,
        }
    }

    pub fn exclusive(value: Value) -> Self {
        Self {
            value,
            inclusive: false,
        }
    }
}

/// A per-column selection predicate a scan can push down.
///
/// All comparisons go through [`Value`]'s *total* order, so the semantics
/// are uniform across kinds: cross-type numerics compare as numbers
/// (`Int(2)` = `Float(2.0)`), `-0.0` = `0.0`, NaN is self-equal and sorts
/// greatest, and `Null < Bool < numerics < Str`. An empty IN-set matches
/// nothing. [`Predicate::matches`] is the normative semantics every
/// pushdown implementation must reproduce.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `column = value` (Value equality).
    Eq(Value),
    /// `column ∈ set`. Kept sorted and deduplicated (see
    /// [`Predicate::in_set`]) so equal sets compare and hash equal.
    In(Vec<Value>),
    /// `column` within an (optionally half-open) interval of the total
    /// order.
    Range {
        min: Option<Bound>,
        max: Option<Bound>,
    },
    /// `column` *probably* in a key set: a one-sided [`BloomFilter`]
    /// membership test. Unlike the other kinds this predicate is
    /// intentionally approximate — `matches` admits every inserted key
    /// plus a tunable fraction of false positives — so it is only ever
    /// generated where over-admission is harmless: the semi-join sideways
    /// pass, whose downstream join discards the extras. Sources that
    /// cannot evaluate it natively simply decline the claim and the
    /// mediator evaluates it as a residual filter.
    Bloom(BloomFilter),
}

impl Predicate {
    pub fn eq(value: impl Into<Value>) -> Self {
        Predicate::Eq(value.into())
    }

    /// Builds a canonical IN-set: sorted, deduplicated.
    pub fn in_set(values: impl IntoIterator<Item = Value>) -> Self {
        let mut values: Vec<Value> = values.into_iter().collect();
        values.sort();
        values.dedup();
        Predicate::In(values)
    }

    pub fn range(min: Option<Bound>, max: Option<Bound>) -> Self {
        Predicate::Range { min, max }
    }

    /// `column >= value`.
    pub fn at_least(value: impl Into<Value>) -> Self {
        Predicate::Range {
            min: Some(Bound::inclusive(value.into())),
            max: None,
        }
    }

    /// `column <= value`.
    pub fn at_most(value: impl Into<Value>) -> Self {
        Predicate::Range {
            min: None,
            max: Some(Bound::inclusive(value.into())),
        }
    }

    /// `low <= column <= high`.
    pub fn between(low: impl Into<Value>, high: impl Into<Value>) -> Self {
        Predicate::Range {
            min: Some(Bound::inclusive(low.into())),
            max: Some(Bound::inclusive(high.into())),
        }
    }

    /// Whether a value satisfies the predicate — the reference semantics.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Predicate::Eq(v) => value == v,
            // Linear membership: IN-sets are small, and the variant is
            // public — a directly-built (unsorted) vec must match the same
            // rows as the canonical [`Predicate::in_set`] form.
            Predicate::In(vs) => vs.contains(value),
            Predicate::Range { min, max } => {
                if let Some(b) = min {
                    match value.cmp(&b.value) {
                        std::cmp::Ordering::Less => return false,
                        std::cmp::Ordering::Equal if !b.inclusive => return false,
                        _ => {}
                    }
                }
                if let Some(b) = max {
                    match value.cmp(&b.value) {
                        std::cmp::Ordering::Greater => return false,
                        std::cmp::Ordering::Equal if !b.inclusive => return false,
                        _ => {}
                    }
                }
                true
            }
            Predicate::Bloom(filter) => filter.may_contain(value),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq(v) => write!(f, "={v}"),
            Predicate::In(vs) => {
                f.write_str("∈{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Predicate::Range { min, max } => {
                if let Some(b) = min {
                    write!(f, "{}{}", if b.inclusive { "≥" } else { ">" }, b.value)?;
                }
                if min.is_some() && max.is_some() {
                    f.write_str(" ")?;
                }
                if let Some(b) = max {
                    write!(f, "{}{}", if b.inclusive { "≤" } else { "<" }, b.value)?;
                }
                if min.is_none() && max.is_none() {
                    f.write_str("∈(-∞,∞)")?;
                }
                Ok(())
            }
            Predicate::Bloom(filter) => write!(f, "∈bloom({} keys)", filter.items()),
        }
    }
}

/// A selection pushed into a scan: `predicate(column)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnFilter {
    /// Source-local column name.
    pub column: String,
    /// The predicate rows must satisfy.
    pub predicate: Predicate,
}

impl ColumnFilter {
    pub fn new(column: impl Into<String>, predicate: Predicate) -> Self {
        Self {
            column: column.into(),
            predicate,
        }
    }
}

impl fmt::Display for ColumnFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[{}{}]", self.column, self.predicate)
    }
}

/// What a [`PlanSource`] is asked to surface: a projection over its
/// source-local columns (already renamed to the mediator's output
/// attributes) and a conjunction of pushed-down per-column predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    /// Source-local column names, in output order.
    columns: Vec<String>,
    /// Output attributes, positionally aligned with `columns` — the fused
    /// rename.
    output: Schema,
    /// Pushed-down selections, all of which must hold (conjunction). Each
    /// is on a source-local column, which need not be in `columns`.
    filters: Vec<ColumnFilter>,
}

impl ScanRequest {
    /// Builds a request; `columns` and `output` must have equal arity.
    pub fn new(columns: Vec<String>, output: Schema) -> Result<Self, PlanError> {
        if columns.len() != output.len() {
            return Err(PlanError::Relation(RelationError::Arity {
                expected: output.len(),
                found: columns.len(),
            }));
        }
        Ok(Self {
            columns,
            output,
            filters: Vec::new(),
        })
    }

    /// The identity request over a source schema: every column, unrenamed,
    /// unfiltered — what a pushdown-disabled plan asks for.
    pub fn full(schema: &Schema) -> Self {
        Self {
            columns: schema.names().into_iter().map(str::to_owned).collect(),
            output: schema.clone(),
            filters: Vec::new(),
        }
    }

    /// Appends an equality conjunct (sugar for
    /// [`ScanRequest::with_predicate`] with [`Predicate::Eq`]).
    pub fn with_filter(self, column: impl Into<String>, value: Value) -> Self {
        self.with_predicate(column, Predicate::Eq(value))
    }

    /// Appends a predicate conjunct on a source-local column.
    pub fn with_predicate(mut self, column: impl Into<String>, predicate: Predicate) -> Self {
        self.filters.push(ColumnFilter {
            column: column.into(),
            predicate,
        });
        self
    }

    /// Appends an already-built filter conjunct.
    pub fn with_column_filter(mut self, filter: ColumnFilter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Appends a filter conjunct in place — the runtime form semi-join
    /// sideways passing uses to inject build-key IN-sets into an
    /// already-compiled probe scan.
    pub fn add_column_filter(&mut self, filter: ColumnFilter) {
        self.filters.push(filter);
    }

    /// Source-local column names, in output order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The schema the scan must produce.
    pub fn output(&self) -> &Schema {
        &self.output
    }

    /// The pushed-down selection conjuncts (empty = unfiltered).
    pub fn filters(&self) -> &[ColumnFilter] {
        &self.filters
    }

    /// Reference semantics of a request: project / rename / filter an
    /// eagerly scanned relation. Sources without native pushdown call this
    /// on their full scan; the differential tests pin native
    /// implementations against it.
    pub fn apply(&self, input: &Relation) -> Result<Relation, RelationError> {
        let mut indices = Vec::with_capacity(self.columns.len());
        for column in &self.columns {
            indices.push(input.schema().require(column)?);
        }
        let mut filters = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            filters.push((input.schema().require(&f.column)?, &f.predicate));
        }
        let mut rows = Vec::new();
        for row in input.rows() {
            if !filters.iter().all(|(idx, p)| p.matches(&row[*idx])) {
                continue;
            }
            rows.push(indices.iter().map(|&i| row[i].clone()).collect());
        }
        Relation::new(self.output.clone(), rows)
    }
}

impl fmt::Display for ScanRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for filter in &self.filters {
            write!(f, "{filter} ")?;
        }
        f.write_str("[")?;
        for (i, (col, attr)) in self
            .columns
            .iter()
            .zip(self.output.attributes())
            .enumerate()
        {
            if i > 0 {
                f.write_str(", ")?;
            }
            if col == attr.name() {
                f.write_str(col)?;
            } else {
                write!(f, "{col}→{}", attr.name())?;
            }
        }
        f.write_str("]")
    }
}

/// A stream of value-space row batches produced by a [`PlanSource`] scan.
///
/// Each item is one batch of rows already projected, renamed and filtered
/// per the originating [`ScanRequest`] (so every row has the request's
/// output arity), in the source's stable scan order. Batches are bounded by
/// the `batch_rows` hint the consumer passed, so peak value-space memory is
/// one batch — never the whole relation.
pub type BatchIter<'a> = Box<dyn Iterator<Item = Result<Vec<Tuple>, RelationError>> + Send + 'a>;

/// One-shot adapter from the eager scan contract to the streaming one:
/// consumes an already-materialized relation and re-yields its rows in
/// `batch_rows`-sized chunks (without cloning). This is what the default
/// [`PlanSource::scan_batches`] wraps around [`PlanSource::scan`], so
/// sources that only implement the eager entry point keep working
/// unchanged.
pub fn batches_from_relation(relation: Relation, batch_rows: usize) -> BatchIter<'static> {
    let batch_rows = batch_rows.max(1);
    let mut rows = relation.into_rows().into_iter();
    Box::new(std::iter::from_fn(move || {
        let batch: Vec<Tuple> = rows.by_ref().take(batch_rows).collect();
        if batch.is_empty() {
            None
        } else {
            Some(Ok(batch))
        }
    }))
}

/// Resolves a source name and a pushed-down [`ScanRequest`] to a relation.
///
/// `Sync` is a supertrait so a shared [`ExecContext`] can fan walk plans out
/// across scoped threads.
pub trait PlanSource: Sync {
    /// Scans `source`, honouring the request (see the module docs for the
    /// contract).
    fn scan(&self, source: &str, request: &ScanRequest) -> Result<Relation, RelationError>;

    /// Streaming scan: yields the same rows [`PlanSource::scan`] would, in
    /// the same order, but as a sequence of at-most-`batch_rows`-row batches
    /// so the consumer (the interning layer) never holds the whole
    /// value-space relation at once.
    ///
    /// The default is a one-shot adapter over [`PlanSource::scan`] — it
    /// materializes eagerly and re-chunks, so third-party sources keep
    /// working unchanged. Sources that can produce rows incrementally
    /// (e.g. `bdi_wrappers`' table and JSON wrappers) override it to clone
    /// only one batch of projected cells at a time under short lock holds.
    fn scan_batches<'a>(
        &'a self,
        source: &str,
        request: &ScanRequest,
        batch_rows: usize,
    ) -> Result<BatchIter<'a>, RelationError> {
        let relation = self.scan(source, request)?;
        // Reject a mis-shaped scan up front — even an *empty* relation with
        // the wrong arity is a source misconfiguration, and it must not be
        // masked just because no row exists to fail the per-row check.
        if relation.schema().len() != request.output().len() {
            return Err(RelationError::Arity {
                expected: request.output().len(),
                found: relation.schema().len(),
            });
        }
        Ok(batches_from_relation(relation, batch_rows))
    }

    /// Monotonic counter identifying the current *data* of `source`. A
    /// source whose data can change between scans bumps it on every
    /// mutation; the [`ExecContext`] folds it into its scan-cache key, so a
    /// persistent context never serves rows scanned before the mutation.
    /// The default (`0`, constant) declares the data immutable for the
    /// lifetime of the source registration — correct for snapshot-style
    /// sources, and the pre-existing contract for sources predating the
    /// counter.
    fn data_version(&self, _source: &str) -> u64 {
        0
    }

    /// Whether the source natively honours `filter` on scans of `source`.
    ///
    /// Plan compilers put only *claimed* filters into [`ScanRequest`]s;
    /// unclaimed predicates stay in the mediator as a post-scan
    /// [`PhysicalPlan::Filter`] residue, so answers never depend on what a
    /// source can or cannot evaluate. The default claims everything — the
    /// [`ScanRequest::apply`] fallback evaluates any predicate.
    fn claims(&self, _source: &str, _filter: &ColumnFilter) -> bool {
        true
    }

    /// A cheap estimate of how many rows a scan of `source` under `request`
    /// would yield, or `None` when the source cannot produce one. Used for
    /// execution-time *scheduling* only — choosing a hash join's build side
    /// before any scan is issued (semi-join sideways passing) and gating
    /// [`ScanCache::Auto`] — never for correctness.
    ///
    /// Contract: for an unfiltered request, return the exact row count or
    /// `None` (an exact hint is what keeps the hint-driven build-side
    /// choice identical to the eager smaller-side rule, and thus row order
    /// engine-independent). Requests carrying filters may be estimated by
    /// their unfiltered count — answers under pushed-down predicates follow
    /// the canonical sorted-order contract, so build-side flips are
    /// unobservable there. The default (`None`) opts the source out of
    /// hint-driven scheduling.
    fn scan_hint(&self, _source: &str, _request: &ScanRequest) -> Option<u64> {
        None
    }

    /// The source's current per-column statistics snapshot for `source`,
    /// or `None` when it does not maintain sketches. The snapshot's
    /// [`TableStats::data_version`] must match
    /// [`PlanSource::data_version`] at the time of the call, so the
    /// planner never prices a plan against sketches of rows that no
    /// longer exist.
    ///
    /// Statistics steer *plans only* — join order, build-side choice, scan
    /// batching, cache admission. No estimate decides row membership, so a
    /// wrong (even adversarially wrong) snapshot can slow a query but can
    /// never change its answer. The default (`None`) keeps third-party
    /// sources on today's heuristics.
    fn stats(&self, _source: &str) -> Option<Arc<TableStats>> {
        None
    }
}

/// Blanket impl so closures can act as plan sources in tests.
impl<F> PlanSource for F
where
    F: Fn(&str, &ScanRequest) -> Result<Relation, RelationError> + Sync,
{
    fn scan(&self, source: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
        self(source, request)
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// A compiled physical query plan.
///
/// Built through the checked constructors ([`PhysicalPlan::scan`],
/// [`PhysicalPlan::project`], [`PhysicalPlan::hash_join`], …), which compute
/// and validate every node's output schema once, at compile time. The
/// physical layer is deliberately more permissive than the §2.2 logical
/// operators: Π̃/⋈̃ restrictions are enforced when walks are *built*, not
/// re-checked per batch here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// Pushdown-aware source scan; renames are fused into the request.
    Scan {
        source: String,
        request: ScanRequest,
    },
    /// Pure relabeling — free at run time (batches pass through untouched).
    Rename {
        input: Box<PhysicalPlan>,
        schema: Schema,
    },
    /// Positional projection.
    Project {
        input: Box<PhysicalPlan>,
        indices: Vec<usize>,
        schema: Schema,
    },
    /// Residual selection: predicates a source did not claim, evaluated in
    /// the mediator over the input's columns (by position).
    Filter {
        input: Box<PhysicalPlan>,
        predicates: Vec<(usize, Predicate)>,
    },
    /// Equi-join; the executor builds a hash table over the smaller input
    /// (matching the eager [`crate::ops::join`] ordering contract) and
    /// streams the other side.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: usize,
        right_key: usize,
        schema: Schema,
    },
    /// Set union of schema-identical inputs; the executor deduplicates,
    /// emitting rows in first-occurrence order.
    Union { inputs: Vec<PhysicalPlan> },
}

impl PhysicalPlan {
    /// A scan leaf.
    pub fn scan(source: impl Into<String>, request: ScanRequest) -> Self {
        PhysicalPlan::Scan {
            source: source.into(),
            request,
        }
    }

    /// Relabels attributes (`(from, to)` pairs), preserving ID flags.
    pub fn rename(self, renames: &[(&str, &str)]) -> Result<Self, PlanError> {
        for (from, _) in renames {
            self.schema().require(from).map_err(RelationError::Schema)?;
        }
        let attrs = self
            .schema()
            .attributes()
            .iter()
            .map(|attr| {
                let name = renames
                    .iter()
                    .find(|(from, _)| from == &attr.name())
                    .map(|(_, to)| *to)
                    .unwrap_or(attr.name());
                if attr.is_id() {
                    Attribute::id(name)
                } else {
                    Attribute::non_id(name)
                }
            })
            .collect();
        let schema = Schema::new(attrs).map_err(RelationError::Schema)?;
        Ok(PhysicalPlan::Rename {
            input: Box::new(self),
            schema,
        })
    }

    /// Projects `indices` of the input, labelling them with `schema`.
    pub fn project(self, indices: Vec<usize>, schema: Schema) -> Result<Self, PlanError> {
        if indices.len() != schema.len() {
            return Err(PlanError::Relation(RelationError::Arity {
                expected: schema.len(),
                found: indices.len(),
            }));
        }
        for &index in &indices {
            if index >= self.schema().len() {
                return Err(PlanError::ProjectionRange {
                    index,
                    schema: self.schema().to_string(),
                });
            }
        }
        Ok(PhysicalPlan::Project {
            input: Box::new(self),
            indices,
            schema,
        })
    }

    /// Filters by named-column predicates (conjunction), resolving the
    /// names against the input schema at build time.
    pub fn filter(self, predicates: Vec<(&str, Predicate)>) -> Result<Self, PlanError> {
        let mut resolved = Vec::with_capacity(predicates.len());
        for (column, predicate) in predicates {
            let index = self
                .schema()
                .require(column)
                .map_err(RelationError::Schema)?;
            resolved.push((index, predicate));
        }
        Ok(PhysicalPlan::Filter {
            input: Box::new(self),
            predicates: resolved,
        })
    }

    /// Projects columns by name, labelling them with `schema` (positional).
    pub fn project_columns(self, columns: &[&str], schema: Schema) -> Result<Self, PlanError> {
        let mut indices = Vec::with_capacity(columns.len());
        for column in columns {
            indices.push(
                self.schema()
                    .require(column)
                    .map_err(RelationError::Schema)?,
            );
        }
        self.project(indices, schema)
    }

    /// Equi-joins with `right` on `left_attr = right_attr`. The output
    /// schema is left's attributes followed by right's; name collisions are
    /// rejected (walk compilation source-prefixes every attribute, so they
    /// cannot occur there).
    pub fn hash_join(
        self,
        right: PhysicalPlan,
        left_attr: &str,
        right_attr: &str,
    ) -> Result<Self, PlanError> {
        let left_key = self
            .schema()
            .require(left_attr)
            .map_err(RelationError::Schema)?;
        let right_key = right
            .schema()
            .require(right_attr)
            .map_err(RelationError::Schema)?;
        let mut attrs: Vec<Attribute> = self.schema().attributes().to_vec();
        attrs.extend(right.schema().attributes().iter().cloned());
        let schema = Schema::new(attrs).map_err(RelationError::Schema)?;
        Ok(PhysicalPlan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_key,
            right_key,
            schema,
        })
    }

    /// Set union of schema-identical plans.
    pub fn union(inputs: Vec<PhysicalPlan>) -> Result<Self, PlanError> {
        let first = inputs.first().ok_or(PlanError::EmptyUnion)?;
        for input in &inputs[1..] {
            if !input.schema().same_shape(first.schema()) {
                return Err(PlanError::UnionShape {
                    left: first.schema().to_string(),
                    right: input.schema().to_string(),
                });
            }
        }
        Ok(PhysicalPlan::Union { inputs })
    }

    /// The node's output schema (computed at construction).
    pub fn schema(&self) -> &Schema {
        match self {
            PhysicalPlan::Scan { request, .. } => request.output(),
            PhysicalPlan::Rename { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. } => schema,
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Union { inputs } => inputs[0].schema(),
        }
    }

    /// The cache key of a scan leaf (`None` for interior nodes). The
    /// `data_version` is a placeholder — plans are compiled before any data
    /// is read — and is filled in from the live source at execution time.
    fn scan_key(&self) -> Option<ScanKey> {
        match self {
            PhysicalPlan::Scan { source, request } => Some(ScanKey {
                source: source.clone(),
                columns: request.columns.clone(),
                filters: request.filters.clone(),
                data_version: 0,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalPlan {
    /// Renders the plan in a compact physical notation, e.g.
    /// `(scan w1 [monitorId→D1/VoDmonitorId] ⋈H[0=1] scan w3 [...])`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalPlan::Scan { source, request } => write!(f, "scan {source} {request}"),
            PhysicalPlan::Rename { input, schema } => write!(f, "ρ{schema}({input})"),
            PhysicalPlan::Project {
                input,
                indices,
                schema,
            } => {
                write!(f, "Π{schema}#{indices:?}({input})")
            }
            PhysicalPlan::Filter { input, predicates } => {
                f.write_str("σ̂[")?;
                for (i, (index, predicate)) in predicates.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "#{index}{predicate}")?;
                }
                write!(f, "]({input})")
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                ..
            } => write!(f, "({left} ⋈H[{left_key}={right_key}] {right})"),
            PhysicalPlan::Union { inputs } => {
                let rendered: Vec<String> = inputs.iter().map(|p| p.to_string()).collect();
                write!(f, "∪({})", rendered.join(", "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interning
// ---------------------------------------------------------------------------

const POOL_SHARD_BITS: u32 = 4;
const POOL_SHARDS: usize = 1 << POOL_SHARD_BITS;

/// Interns [`Value`]s to `u32` ids. Interning respects `Value` equality and
/// hashing (which are cross-type for numerics), so id equality is exactly
/// value equality — joins and dedup never touch the values themselves.
///
/// The pool is sharded by value hash (an id is `local_index << 4 | shard`):
/// interning takes `&self` and only locks one shard briefly, so parallel
/// walk executors intern concurrently instead of serializing on one mutex.
pub struct ValuePool {
    hasher: FnvBuild,
    shards: Vec<Mutex<PoolShard>>,
}

#[derive(Default)]
struct PoolShard {
    values: Vec<Value>,
    index: HashMap<Value, u32, FnvBuild>,
    /// Running string-heap estimate (counted twice: slab + index key), so
    /// [`ValuePool::approx_bytes`] — polled after every interned batch for
    /// the high-water mark — never walks the interned values.
    str_heap: usize,
}

impl Default for ValuePool {
    fn default() -> Self {
        Self {
            hasher: FnvBuild::default(),
            shards: (0..POOL_SHARDS)
                .map(|_| Mutex::new(PoolShard::default()))
                .collect(),
        }
    }
}

impl ValuePool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value (one clone on first occurrence only).
    pub fn intern(&self, value: &Value) -> u32 {
        let shard_index = (self.hasher.hash_one(value) as usize) & (POOL_SHARDS - 1);
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("value pool poisoned");
        if let Some(&local) = shard.index.get(value) {
            return (local << POOL_SHARD_BITS) | shard_index as u32;
        }
        let local = shard.values.len() as u32;
        // Ids pack as `local << 4 | shard`; overflowing the 28 local bits
        // would silently alias two distinct values — fail loudly instead.
        assert!(
            local < 1 << (32 - POOL_SHARD_BITS),
            "value pool shard overflow: more than 2^28 distinct values in one shard"
        );
        if let Value::Str(s) = value {
            // The stored clones allocate exactly `len` bytes each (clone
            // capacity is length, whatever the caller's buffer held).
            shard.str_heap += 2 * s.len();
        }
        shard.values.push(value.clone());
        shard.index.insert(value.clone(), local);
        (local << POOL_SHARD_BITS) | shard_index as u32
    }

    /// Decodes one id, locking only its shard. Prefer [`ValuePool::reader`]
    /// for bulk decoding.
    pub fn get(&self, id: u32) -> Value {
        let shard = (id as usize) & (POOL_SHARDS - 1);
        self.shards[shard]
            .lock()
            .expect("value pool poisoned")
            .values[(id >> POOL_SHARD_BITS) as usize]
            .clone()
    }

    /// A read handle decoding ids without re-locking per value. Shards are
    /// locked in index order (the only multi-shard acquisition, so lock
    /// ordering is consistent); drop the reader before interning again on
    /// the same thread.
    pub fn reader(&self) -> PoolReader<'_> {
        PoolReader {
            guards: self
                .shards
                .iter()
                .map(|s| s.lock().expect("value pool poisoned"))
                .collect(),
        }
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("value pool poisoned").values.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rough resident-size estimate in bytes: the interned values (counted
    /// twice — once in the slab, once as index keys), string heap storage,
    /// and index slots. An accounting aid for pool watermarks, not an exact
    /// allocator measurement. O(shards): the string heap is a running
    /// counter, so the batch-granular high-water mark can poll this without
    /// walking the pool.
    pub fn approx_bytes(&self) -> usize {
        let value_size = std::mem::size_of::<Value>();
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("value pool poisoned");
                shard.values.capacity() * value_size
                    + shard.index.capacity() * (value_size + std::mem::size_of::<u32>())
                    + shard.str_heap
            })
            .sum()
    }
}

/// A locked view of a [`ValuePool`] for bulk decoding.
pub struct PoolReader<'a> {
    guards: Vec<MutexGuard<'a, PoolShard>>,
}

impl PoolReader<'_> {
    /// The value behind an id.
    pub fn decode(&self, id: u32) -> &Value {
        let shard = (id as usize) & (POOL_SHARDS - 1);
        &self.guards[shard].values[(id >> POOL_SHARD_BITS) as usize]
    }
}

/// A block of rows in interned id space. `arity` may be zero, so the row
/// count is tracked explicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    arity: usize,
    len: usize,
    data: Vec<u32>,
}

impl Batch {
    /// An empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            data: Vec::new(),
        }
    }

    /// Appends one row; the iterator must yield exactly `arity` ids.
    pub fn push(&mut self, row: impl IntoIterator<Item = u32>) {
        let before = self.data.len();
        self.data.extend(row);
        debug_assert_eq!(self.data.len() - before, self.arity);
        self.len += 1;
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` as an id slice.
    pub fn row(&self, i: usize) -> &[u32] {
        debug_assert!(i < self.len);
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// All rows, in order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Appends every row of `other` (equal arity).
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.arity, other.arity);
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    /// A copy of rows `[start, start + len)`.
    fn slice(&self, start: usize, len: usize) -> Batch {
        Batch {
            arity: self.arity,
            len,
            data: self.data[start * self.arity..(start + len) * self.arity].to_vec(),
        }
    }

    /// Rough resident size of the id arena, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------------------
// Execution context: shared pool + scan/build caches
// ---------------------------------------------------------------------------

/// Identity of a scan's *data* (output attribute labels excluded — two
/// requests differing only in labels read the same rows). The source's
/// [`PlanSource::data_version`] at scan time is part of the identity: a
/// mutation bumps it, so a persistent context re-scans instead of serving
/// rows from before the mutation (stale entries age out through the LRU
/// cap).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScanKey {
    source: String,
    columns: Vec<String>,
    filters: Vec<ColumnFilter>,
    data_version: u64,
}

type ScanCell = Arc<OnceLock<Result<Arc<Batch>, PlanError>>>;

/// A hash-join build side: interned key id → build-row indices, in row
/// order (so probe output preserves build insertion order, matching the
/// eager join).
#[derive(Debug, Default)]
pub struct JoinIndex {
    groups: HashMap<u32, Vec<u32>, FnvBuild>,
}

impl JoinIndex {
    fn matches(&self, key: u32) -> Option<&[u32]> {
        self.groups.get(&key).map(Vec::as_slice)
    }

    /// Number of distinct (non-null) build keys — what
    /// [`ExecPolicy::semijoin_max_keys`] gates on.
    fn distinct_keys(&self) -> usize {
        self.groups.len()
    }

    /// The distinct build-key ids, in arbitrary order.
    fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        self.groups.keys().copied()
    }

    /// Rough resident size in bytes (key slots plus row-index arenas).
    fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<(u32, Vec<u32>)>();
        self.groups.capacity() * slot
            + self
                .groups
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

/// Default bound on cached scan entries (and, independently, cached join
/// build sides) in an [`ExecContext`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Shared state for executing plans: the value pool, the interned-scan
/// cache and the hash-join build cache. `Sync` — walk plans for one
/// rewriting run against a single shared context, possibly from scoped
/// threads.
///
/// The context does **not** hold the [`PlanSource`]; execution entry points
/// take both, so a context can outlive any single source borrow and serve
/// as a cross-query cache (the scans it holds are data snapshots — reuse
/// them only while the underlying sources are known unchanged, and drop the
/// context when they are not).
///
/// Both caches are bounded ([`ExecContext::with_capacity`]); when full, the
/// least-recently-touched entry is evicted (an approximate LRU: each access
/// stamps a monotonic tick, eviction removes the minimum).
///
/// Scans go through the streaming contract ([`PlanSource::scan_batches`]):
/// the context pulls one value-space batch at a time ([`ExecContext::
/// scan_batch_rows`] rows, [`BATCH_ROWS`] by default) and interns it before
/// pulling the next, so the full `Vec<Tuple>` relation the eager contract
/// materialized never exists here — peak value-space memory per scan is one
/// batch. The cache stores only the interned result.
pub struct ExecContext {
    pool: ValuePool,
    null_id: u32,
    max_entries: usize,
    /// Rows per batch pulled from [`PlanSource::scan_batches`].
    scan_batch_rows: usize,
    /// Pool watermark: when [`ExecContext::pooled_values`] exceeds it, the
    /// context reports [`ExecContext::over_value_cap`] so a long-lived owner
    /// can retire it (the pool itself never shrinks in place — live
    /// executions hold interned ids).
    value_cap: Option<usize>,
    /// Batch-granular high-water mark of [`ExecContext::memory_estimate`]
    /// plus in-flight (not-yet-cached) interned batches — noted after every
    /// interned batch, so cursor-only streaming peaks register even though
    /// they never land in a cache.
    peak_bytes: AtomicUsize,
    /// Running byte totals of the two caches, maintained on insert/evict so
    /// [`ExecContext::memory_estimate`] — polled once per interned batch
    /// for the high-water mark — never walks the cache maps. A cell
    /// evicted while its scan is still in flight leaks its eventual bytes
    /// into the counter (the filler has nothing to subtract from); an
    /// accepted drift in what is documented as an estimate.
    scan_cache_bytes: AtomicUsize,
    build_cache_bytes: AtomicUsize,
    tick: AtomicU64,
    /// Lifetime counts of semi-join sideways passes this context executed,
    /// by kind (IN-set vs bloom) — observability for
    /// `BdiSystem::planner_stats`, never consulted by the executor.
    semijoin_insets: AtomicU64,
    semijoin_blooms: AtomicU64,
    scans: Mutex<HashMap<ScanKey, Stamped<ScanCell>>>,
    builds: Mutex<BuildCache>,
    /// Bounded batch feeds registered by the prefetcher for cursor-routed
    /// scans (see [`execute_plan_prefetched_with`]): the scan operator that
    /// owns the matching request takes its feed here instead of opening a
    /// second source cursor. Feeds are per-execution and always drained or
    /// dropped before the prefetch scope joins.
    queued: Mutex<HashMap<ScanKey, QueuedFeed>>,
}

/// The receiving end of a bounded queue of interned batches produced by a
/// dedicated prefetch thread for one cursor-routed scan.
type QueuedFeed = Receiver<Result<Batch, PlanError>>;

/// `(scan, key column)` → stamped shared build index.
type BuildCache = HashMap<(ScanKey, usize), Stamped<Arc<JoinIndex>>>;

/// A cache payload with its last-touched tick.
struct Stamped<T> {
    value: T,
    last_used: u64,
}

/// Evicts the least-recently-used entry when the map is at capacity and
/// `key` is not already present, handing the removed payload back so the
/// caller can unaccount its bytes.
fn evict_for<K: Eq + std::hash::Hash + Clone, T>(
    map: &mut HashMap<K, Stamped<T>>,
    key: &K,
    max_entries: usize,
) -> Option<T> {
    if map.len() < max_entries || map.contains_key(key) {
        return None;
    }
    let oldest = map
        .iter()
        .min_by_key(|(_, s)| s.last_used)
        .map(|(k, _)| k.clone())?;
    map.remove(&oldest).map(|stamped| stamped.value)
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecContext {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_ENTRIES)
    }

    /// A context whose scan cache and build cache each hold at most
    /// `max_entries` entries (minimum 1).
    pub fn with_capacity(max_entries: usize) -> Self {
        let pool = ValuePool::new();
        let null_id = pool.intern(&Value::Null);
        Self {
            pool,
            null_id,
            max_entries: max_entries.max(1),
            scan_batch_rows: BATCH_ROWS,
            value_cap: None,
            peak_bytes: AtomicUsize::new(0),
            scan_cache_bytes: AtomicUsize::new(0),
            build_cache_bytes: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            semijoin_insets: AtomicU64::new(0),
            semijoin_blooms: AtomicU64::new(0),
            scans: Mutex::new(HashMap::new()),
            builds: Mutex::new(HashMap::new()),
            queued: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the number of rows per batch pulled from
    /// [`PlanSource::scan_batches`] (minimum 1; default [`BATCH_ROWS`]).
    /// Exposed mainly so the differential tests can drive the batch path at
    /// adversarial sizes.
    pub fn with_scan_batch_rows(mut self, batch_rows: usize) -> Self {
        self.scan_batch_rows = batch_rows.max(1);
        self
    }

    /// Sets the pool watermark (see [`ExecContext::over_value_cap`]).
    pub fn with_value_cap(mut self, cap: usize) -> Self {
        self.value_cap = Some(cap);
        self
    }

    /// Rows per batch this context pulls from sources.
    pub fn scan_batch_rows(&self) -> usize {
        self.scan_batch_rows
    }

    /// The configured pool watermark, if any.
    pub fn value_cap(&self) -> Option<usize> {
        self.value_cap
    }

    /// Lifetime count of IN-set semi-join sideways passes executed through
    /// this context (see [`ExecPolicy::semijoin_max_keys`]).
    pub fn semijoin_insets(&self) -> u64 {
        self.semijoin_insets.load(Ordering::Relaxed)
    }

    /// Lifetime count of bloom semi-join sideways passes executed through
    /// this context (see [`ExecPolicy::bloom_semijoins`]).
    pub fn semijoin_blooms(&self) -> u64 {
        self.semijoin_blooms.load(Ordering::Relaxed)
    }

    /// Whether the shared pool has grown past the configured watermark.
    /// Interned values can never be dropped in place (executions in flight
    /// hold their ids), so a long-lived owner reacts by *replacing* the
    /// context with a fresh one — in-flight queries keep the old context
    /// alive through their `Arc` until they finish.
    pub fn over_value_cap(&self) -> bool {
        self.value_cap.is_some_and(|cap| self.pool.len() > cap)
    }

    /// Number of distinct values interned so far.
    pub fn pooled_values(&self) -> usize {
        self.pool.len()
    }

    /// Rough resident-size estimate of the context in bytes: the value
    /// pool, the cached interned scans and the cached join build sides. An
    /// accounting aid for watermark policies, not an allocator measurement.
    /// O(pool shards): the cache halves are running counters maintained on
    /// insert/evict, so the per-batch high-water poll never walks a cache.
    pub fn memory_estimate(&self) -> usize {
        self.pool.approx_bytes()
            + self.scan_cache_bytes.load(Ordering::Relaxed)
            + self.build_cache_bytes.load(Ordering::Relaxed)
    }

    /// Batch-granular high-water mark of the context's resident estimate
    /// ([`ExecContext::memory_estimate`] plus any in-flight interned batch):
    /// noted after *every* interned batch, cached or cursor-only, so the
    /// watermark reflects streaming peaks — not just the cached residue a
    /// post-query [`ExecContext::memory_estimate`] would show.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
            .load(Ordering::Relaxed)
            .max(self.memory_estimate())
    }

    /// Folds the current resident estimate (plus `in_flight_bytes` of
    /// not-yet-cached batch data) into the high-water mark.
    fn note_high_water(&self, in_flight_bytes: usize) {
        let current = self.memory_estimate() + in_flight_bytes;
        self.peak_bytes.fetch_max(current, Ordering::Relaxed);
    }

    /// The id `Value::Null` interns to (join keys equal to it never match).
    pub fn null_id(&self) -> u32 {
        self.null_id
    }

    /// Number of cached scan entries (diagnostics / eviction tests).
    pub fn cached_scans(&self) -> usize {
        self.scans.lock().expect("scan cache poisoned").len()
    }

    /// Number of cached join build sides (diagnostics / eviction tests).
    pub fn cached_builds(&self) -> usize {
        self.builds.lock().expect("build cache poisoned").len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a prefetch feed for a cursor-routed scan. At most one feed
    /// per key; a duplicate registration is dropped (its producer exits on
    /// the first failed send).
    fn offer_queued_scan(&self, key: ScanKey, feed: QueuedFeed) {
        self.queued
            .lock()
            .expect("queued-scan registry poisoned")
            .entry(key)
            .or_insert(feed);
    }

    /// Claims the prefetch feed registered for a scan, if any. The feed
    /// leaves the registry so exactly one operator consumes it.
    fn take_queued_scan(&self, key: &ScanKey) -> Option<QueuedFeed> {
        self.queued
            .lock()
            .expect("queued-scan registry poisoned")
            .remove(key)
    }

    /// Drops any still-unclaimed feeds among `keys`, disconnecting their
    /// producers (which would otherwise block forever on a full queue).
    fn drop_queued_scans(&self, keys: &[ScanKey]) {
        let mut queued = self.queued.lock().expect("queued-scan registry poisoned");
        for key in keys {
            queued.remove(key);
        }
    }

    /// Interns one value-space scan batch into `into`, enforcing the
    /// scan-shape contract (every row must have the request's output
    /// arity). The single implementation of the per-row scan contract,
    /// shared by the cache-fill and cursor-only paths so they can never
    /// diverge.
    fn intern_scan_rows(
        &self,
        output: &Schema,
        rows: &[Tuple],
        into: &mut Batch,
    ) -> Result<(), PlanError> {
        let arity = output.len();
        for row in rows {
            if row.len() != arity {
                // Same error the first-batch precheck in the default
                // `PlanSource::scan_batches` produces, so a wrapper that
                // turns misshapen *mid-stream* (after a well-formed first
                // batch) surfaces identically on every operator path.
                return Err(PlanError::Relation(RelationError::Arity {
                    expected: arity,
                    found: row.len(),
                }));
            }
            into.push(row.iter().map(|v| self.pool.intern(v)));
        }
        Ok(())
    }

    /// Interns an entire relation.
    pub fn intern_relation(&self, relation: &Relation) -> Batch {
        let mut batch = Batch::new(relation.schema().len());
        for row in relation.rows() {
            batch.push(row.iter().map(|v| self.pool.intern(v)));
        }
        batch
    }

    /// Decodes a batch back to owned tuples under one pool read handle.
    pub fn decode_batch(&self, batch: &Batch) -> Vec<Tuple> {
        let reader = self.pool.reader();
        batch
            .rows()
            .map(|row| row.iter().map(|&id| reader.decode(id).clone()).collect())
            .collect()
    }

    /// Decodes arbitrary id rows back to owned tuples under one pool read
    /// handle.
    pub fn decode_rows<'b>(&self, rows: impl IntoIterator<Item = &'b [u32]>) -> Vec<Tuple> {
        let reader = self.pool.reader();
        rows.into_iter()
            .map(|row| row.iter().map(|&id| reader.decode(id).clone()).collect())
            .collect()
    }

    /// Decodes one id (locks a single pool shard briefly).
    pub fn decode_value(&self, id: u32) -> Value {
        self.pool.get(id)
    }

    /// Decodes a set of ids under one pool read handle (the semi-join pass
    /// decodes build-key sets through this).
    pub fn decode_ids(&self, ids: impl IntoIterator<Item = u32>) -> Vec<Value> {
        let reader = self.pool.reader();
        ids.into_iter()
            .map(|id| reader.decode(id).clone())
            .collect()
    }

    /// Interns one value.
    pub fn intern_value(&self, value: &Value) -> u32 {
        self.pool.intern(value)
    }

    /// The interned rows of a scan, computed once per distinct
    /// `(source, columns, filters, data version)` and shared by every plan
    /// run against the context — across queries, until the entry is evicted
    /// or the source's [`PlanSource::data_version`] moves on.
    ///
    /// The computation streams: source batches are pulled through
    /// [`PlanSource::scan_batches`] and interned one at a time, so the
    /// value-space high-water mark is a single batch regardless of the
    /// scan's size.
    fn scan(
        &self,
        source: &dyn PlanSource,
        name: &str,
        request: &ScanRequest,
        deadline: Option<Instant>,
    ) -> Result<Arc<Batch>, PlanError> {
        self.scan_versioned(source, name, request, deadline)
            .map(|(b, _)| b)
    }

    /// [`ExecContext::scan`] plus the data version the result was keyed
    /// under — consumers deriving further cached state from the batch (the
    /// hash-join build cache) must stamp it with *this* version, not a
    /// re-read one, or a mutation landing between the scan and the
    /// derivation would cache old-batch state under the new version.
    fn scan_versioned(
        &self,
        source: &dyn PlanSource,
        name: &str,
        request: &ScanRequest,
        deadline: Option<Instant>,
    ) -> Result<(Arc<Batch>, u64), PlanError> {
        let key = versioned_scan_key(source, name, request);
        let data_version = key.data_version;
        let cell = {
            let mut scans = self.scans.lock().expect("scan cache poisoned");
            if let Some(evicted) = evict_for(&mut scans, &key, self.max_entries) {
                if let Some(Ok(batch)) = evicted.get() {
                    self.scan_cache_bytes
                        .fetch_sub(batch.approx_bytes(), Ordering::Relaxed);
                }
            }
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            let entry = scans.entry(key.clone()).or_insert_with(|| Stamped {
                value: ScanCell::default(),
                last_used: tick,
            });
            entry.last_used = tick;
            entry.value.clone()
        };
        let result = cell
            .get_or_init(|| -> Result<Arc<Batch>, PlanError> {
                let mut interned = Batch::new(request.output().len());
                for batch in source.scan_batches(
                    name,
                    request,
                    adaptive_batch_rows(self, source, name, request),
                )? {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(PlanError::DeadlineExceeded);
                    }
                    self.intern_scan_rows(request.output(), &batch?, &mut interned)?;
                    // Note the growing (not-yet-cached) table batch by
                    // batch, so peak accounting is streaming-accurate even
                    // for a scan that errors before caching.
                    self.note_high_water(interned.approx_bytes());
                }
                self.scan_cache_bytes
                    .fetch_add(interned.approx_bytes(), Ordering::Relaxed);
                Ok(Arc::new(interned))
            })
            .clone();
        self.note_high_water(0);
        if result.is_err() {
            // Failures are never cached: a transient source error or an
            // expired per-query deadline must not poison the cell for later
            // queries, which should retry the scan from scratch. Remove the
            // entry only if it still holds this very cell — a concurrent
            // eviction/refill may have already replaced it.
            let mut scans = self.scans.lock().expect("scan cache poisoned");
            if scans
                .get(&key)
                .is_some_and(|stamped| Arc::ptr_eq(&stamped.value, &cell))
            {
                scans.remove(&key);
            }
        }
        result.map(|batch| (batch, data_version))
    }

    /// Whether a scan's cache cell is already resolved for the source's
    /// current data version — the prefetcher skips spawning threads for
    /// warm scans (a repeated query on a persistent context would otherwise
    /// pay thread spawns just to find every cell filled).
    fn scan_resolved(&self, source: &dyn PlanSource, name: &str, request: &ScanRequest) -> bool {
        let key = versioned_scan_key(source, name, request);
        self.scans
            .lock()
            .expect("scan cache poisoned")
            .get(&key)
            .is_some_and(|stamped| stamped.value.get().is_some())
    }

    /// A hash-join build index over `table[key]`, cached when the build side
    /// is a scan (`cache_key`), so walks joining the same wrapper on the
    /// same ID attribute build it once.
    fn build_index(
        &self,
        cache_key: Option<(ScanKey, usize)>,
        table: &Batch,
        key: usize,
    ) -> Arc<JoinIndex> {
        if let Some(k) = &cache_key {
            let mut builds = self.builds.lock().expect("build cache poisoned");
            if let Some(stamped) = builds.get_mut(k) {
                stamped.last_used = self.next_tick();
                return stamped.value.clone();
            }
        }
        let mut groups: HashMap<u32, Vec<u32>, FnvBuild> = HashMap::default();
        for (i, row) in table.rows().enumerate() {
            let key_id = row[key];
            if key_id == self.null_id {
                continue; // null keys never join
            }
            groups.entry(key_id).or_default().push(i as u32);
        }
        let index = Arc::new(JoinIndex { groups });
        if let Some(k) = cache_key {
            let mut builds = self.builds.lock().expect("build cache poisoned");
            if let Some(evicted) = evict_for(&mut builds, &k, self.max_entries) {
                self.build_cache_bytes
                    .fetch_sub(evicted.approx_bytes(), Ordering::Relaxed);
            }
            self.build_cache_bytes
                .fetch_add(index.approx_bytes(), Ordering::Relaxed);
            let replaced = builds.insert(
                k,
                Stamped {
                    value: index.clone(),
                    last_used: self.next_tick(),
                },
            );
            if let Some(previous) = replaced {
                // A racing builder of the same key got here first; keep the
                // byte counter matched to what the map actually holds.
                self.build_cache_bytes
                    .fetch_sub(previous.value.approx_bytes(), Ordering::Relaxed);
            }
        }
        index
    }
}

/// An arena-backed set of interned rows: unique rows live concatenated in
/// one `Vec<u32>`, membership goes through a row-hash index — no per-row
/// allocation, unlike a `HashSet<Box<[u32]>>`. Used by the streamed union's
/// dedup.
pub struct RowSet {
    arity: usize,
    len: usize,
    data: Vec<u32>,
    hasher: FnvBuild,
    /// Row hash → ordinal of the first row with that hash.
    index: HashMap<u64, u32, FnvBuild>,
    /// Rare same-hash-different-row entries, scanned linearly.
    overflow: Vec<(u64, u32)>,
}

impl RowSet {
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            data: Vec::new(),
            hasher: FnvBuild::default(),
            index: HashMap::default(),
            overflow: Vec::new(),
        }
    }

    fn row(&self, ordinal: usize) -> &[u32] {
        &self.data[ordinal * self.arity..(ordinal + 1) * self.arity]
    }

    fn push_row(&mut self, row: &[u32]) -> u32 {
        let ordinal = self.len as u32;
        self.data.extend_from_slice(row);
        self.len += 1;
        ordinal
    }

    /// Inserts a row; returns whether it was new.
    pub fn insert(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let hash = self.hasher.hash_one(row);
        match self.index.get(&hash) {
            None => {
                let ordinal = self.push_row(row);
                self.index.insert(hash, ordinal);
                true
            }
            Some(&ordinal) => {
                if self.row(ordinal as usize) == row {
                    return false;
                }
                if self
                    .overflow
                    .iter()
                    .any(|&(h, o)| h == hash && self.row(o as usize) == row)
                {
                    return false;
                }
                let ordinal = self.push_row(row);
                self.overflow.push((hash, ordinal));
                true
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The unique rows, in first-insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// The cache/registry key of a scan against the source's *current* data
/// version — the single place the key is assembled, shared by the scan
/// cache, the warm check and the queued-feed registry.
fn versioned_scan_key(source: &dyn PlanSource, name: &str, request: &ScanRequest) -> ScanKey {
    ScanKey {
        source: name.to_owned(),
        columns: request.columns.clone(),
        filters: request.filters.clone(),
        data_version: source.data_version(name),
    }
}

/// Whether a scan materializes through the context cache under `policy`.
/// The prefetcher and the scan operator must agree on this, so it is the
/// single decision point: [`ScanCache::Auto`] caches unless the scan's
/// estimated interned size exceeds the context's value-cap watermark.
///
/// The estimate prefers the source's [`PlanSource::stats`] snapshot when
/// one exists: the cached table's cell count is post-filter rows × arity,
/// but the *pool* growth a cache admission risks is bounded per column by
/// the column's distinct count — a million-row scan of a hundred-value
/// enum column interns a hundred values, not a million. The batch's own
/// row-id storage is still rows × arity, so the stats path also declines
/// when that exceeds [`SCAN_CACHE_ID_CELLS_PER_VALUE`] × cap. Without
/// stats the flat hinted-rows × arity gate is kept.
fn scan_uses_cache(
    ctx: &ExecContext,
    source: &dyn PlanSource,
    policy: &ExecPolicy,
    name: &str,
    request: &ScanRequest,
) -> bool {
    match policy.scan_cache {
        ScanCache::Always => true,
        ScanCache::Never => false,
        ScanCache::Auto => {
            let Some(cap) = ctx.value_cap() else {
                return true;
            };
            if let Some(stats) = source.stats(name) {
                let rows = stats.estimate_rows(request.filters());
                // The cached batch stores rows × arity row-id cells no
                // matter how few distinct values back them — bound that
                // storage too ([`SCAN_CACHE_ID_CELLS_PER_VALUE`]), so a
                // huge low-cardinality scan cannot grow cache bytes
                // unbounded under a tight value cap.
                let id_cells = rows.saturating_mul(request.output().len().max(1) as u64);
                if id_cells > (cap as u64).saturating_mul(SCAN_CACHE_ID_CELLS_PER_VALUE) {
                    return false;
                }
                let cells: u64 = request
                    .columns()
                    .iter()
                    .map(|column| {
                        stats
                            .column(column)
                            .map(|c| c.distinct.min(rows))
                            .unwrap_or(rows)
                    })
                    .sum();
                return cells <= cap as u64;
            }
            match source.scan_hint(name, request) {
                Some(hint) => {
                    let cells = hint.saturating_mul(request.output().len().max(1) as u64);
                    cells <= cap as u64
                }
                None => true,
            }
        }
    }
}

/// Rows per batch for one scan: the context's configured batch size,
/// unless it is the untouched default *and* the source publishes
/// row-width statistics — then the batch is sized to roughly
/// [`ADAPTIVE_BATCH_BYTES`] of value payload (clamped), so wide rows
/// batch smaller and narrow rows batch larger. An explicit
/// [`ExecContext::with_scan_batch_rows`] override always wins.
fn adaptive_batch_rows(
    ctx: &ExecContext,
    source: &dyn PlanSource,
    name: &str,
    request: &ScanRequest,
) -> usize {
    let configured = ctx.scan_batch_rows();
    if configured != BATCH_ROWS {
        return configured;
    }
    match source.stats(name) {
        Some(stats) => {
            let width = stats.avg_row_bytes(request.columns());
            ((ADAPTIVE_BATCH_BYTES / width) as usize)
                .clamp(ADAPTIVE_BATCH_MIN_ROWS, ADAPTIVE_BATCH_MAX_ROWS)
        }
        None => configured,
    }
}

/// Estimated output rows of a plan subtree: defined for scan-leaf chains
/// (Rename/Project/Filter over one Scan — none of which grow the row
/// count), `None` for joins and unions.
fn plan_hint(plan: &PhysicalPlan, source: &dyn PlanSource) -> Option<u64> {
    match plan {
        PhysicalPlan::Scan {
            source: name,
            request,
        } => source.scan_hint(name, request),
        PhysicalPlan::Rename { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Filter { input, .. } => plan_hint(input, source),
        _ => None,
    }
}

/// Whether [`plan_hint`] for this subtree may be a statistics *estimate*
/// that under-counts the scan's rows: the scan leaf carries claimed
/// filters and its source publishes sketches, so the hint routed through
/// [`PlanSource::stats`] selectivity estimation. An unfiltered hint is
/// exact (or `None`), and a filtered hint from a sketch-less source is
/// the unfiltered count — an upper bound; only the sketch estimate can
/// land *below* the live count.
fn plan_hint_is_estimate(plan: &PhysicalPlan, source: &dyn PlanSource) -> bool {
    match plan {
        PhysicalPlan::Scan {
            source: name,
            request,
        } => !request.filters().is_empty() && source.stats(name).is_some(),
        PhysicalPlan::Rename { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Filter { input, .. } => plan_hint_is_estimate(input, source),
        _ => false,
    }
}

/// Maps output column `index` of a scan-leaf chain down to its scan:
/// `(source name, source-local column)` — the site a semi-join IN-set
/// would be injected at. `None` when the subtree is not such a chain.
fn plan_scan_site(plan: &PhysicalPlan, index: usize) -> Option<(&str, &str)> {
    match plan {
        PhysicalPlan::Scan {
            source: name,
            request,
        } => Some((name.as_str(), request.columns().get(index)?.as_str())),
        PhysicalPlan::Rename { input, .. } | PhysicalPlan::Filter { input, .. } => {
            plan_scan_site(input, index)
        }
        PhysicalPlan::Project { input, indices, .. } => plan_scan_site(input, *indices.get(index)?),
        _ => None,
    }
}

/// The probe-side subtree of a hash join that semi-join sideways passing
/// would reduce (both children hinted, probe key maps to a scan site).
/// Mirrored by the prefetcher so it never warms — and caches — a scan the
/// executor is about to issue reduced or cache-bypassed.
fn semijoin_probe_plan<'p>(
    left: &'p PhysicalPlan,
    right: &'p PhysicalPlan,
    left_key: usize,
    right_key: usize,
    source: &dyn PlanSource,
    policy: &ExecPolicy,
) -> Option<&'p PhysicalPlan> {
    if policy.semijoin_max_keys == 0 {
        return None;
    }
    let left_hint = plan_hint(left, source)?;
    let right_hint = plan_hint(right, source)?;
    let (build, probe, probe_key, build_hint, probe_hint) = if left_hint <= right_hint {
        (left, right, right_key, left_hint, right_hint)
    } else {
        (right, left, left_key, right_hint, left_hint)
    };
    // Mirror of the operator's selectivity gate, approximated with the
    // build *row* hint (an upper bound on its distinct keys): the probe is
    // only skipped here when the operator will certainly reduce it. A
    // duplicate-heavy build may still reduce a probe the prefetcher
    // warmed — a wasted warm, never a wrong answer.
    if build_hint.saturating_mul(SEMIJOIN_SELECTIVITY) > probe_hint {
        return None;
    }
    let (scan_name, column) = plan_scan_site(probe, probe_key)?;
    // Distinct build keys never exceed the build's *exact* row hint, so a
    // hint under the IN-set threshold makes an IN-set injection certain; a
    // hint between the IN-set and bloom thresholds makes *some* injection
    // (IN-set for a duplicate-heavy build, bloom otherwise) certain when
    // blooms are enabled. Past the bloom cap the probe runs unreduced and
    // must keep its prefetch. A source that declines the pass will also be
    // scanned unreduced, so probe the claim with the matching canonical
    // filter. A sketch-*estimated* build hint (see [`plan_hint_is_estimate`])
    // can land on either side of the IN-set threshold, so the executor may
    // pick either kind — require both canonical claims then. A
    // value-sensitive claimer may still diverge from the real injected set;
    // either way the cost is one wasted (or missed) warm, never a wrong
    // answer.
    let estimate = plan_hint_is_estimate(build, source);
    let in_set = ColumnFilter::new(column, Predicate::in_set([Value::Int(0)]));
    let bloom = ColumnFilter::new(column, Predicate::Bloom(BloomFilter::claims_probe()));
    if build_hint <= policy.semijoin_max_keys as u64 {
        if !source.claims(scan_name, &in_set) {
            return None;
        }
        if estimate && policy.bloom_semijoins && !source.claims(scan_name, &bloom) {
            return None;
        }
    } else if policy.bloom_semijoins && build_hint <= BLOOM_SEMIJOIN_MAX_KEYS as u64 {
        if !source.claims(scan_name, &bloom) {
            return None;
        }
        if estimate && !source.claims(scan_name, &in_set) {
            return None;
        }
    } else {
        return None;
    }
    Some(probe)
}

/// A pull-based streaming operator tree compiled from a [`PhysicalPlan`],
/// bound to the context and source it executes against (cursor-only scans
/// hold live source batch iterators, so the borrow lives in the operator).
/// Each [`Operator::next_batch`] call yields at most [`BATCH_ROWS`] rows.
pub struct Operator<'r> {
    ctx: &'r ExecContext,
    source: &'r dyn PlanSource,
    policy: ExecPolicy,
    node: OpNode<'r>,
}

/// A scan leaf's execution state.
struct ScanOp<'r> {
    source: String,
    request: ScanRequest,
    /// Set when the semi-join pass injected a build-key IN-set: the scan is
    /// query-specific and must bypass (not pollute) the shared scan cache.
    semijoin_reduced: bool,
    state: ScanState<'r>,
}

enum ScanState<'r> {
    /// Mode not yet decided — the first pull (or a sideways injection
    /// before it) settles cached vs cursor-only.
    Pending,
    /// Serving slices of the shared cached interned table.
    Cached { table: Arc<Batch>, cursor: usize },
    /// Cursor-only: interned batches pulled straight from the source, one
    /// at a time — nothing is cached, peak residency is one batch.
    Cursor { batches: BatchIter<'r>, done: bool },
    /// Cursor-only through a prefetch feed: a dedicated producer thread
    /// pulls and interns source batches into a bounded queue
    /// ([`PREFETCH_QUEUE_BATCHES`]), overlapping source latency with the
    /// pipeline while backpressure keeps residency bounded.
    Queued { feed: QueuedFeed, done: bool },
}

enum OpNode<'r> {
    Scan(ScanOp<'r>),
    Rename {
        input: Box<OpNode<'r>>,
    },
    Project {
        input: Box<OpNode<'r>>,
        indices: Vec<usize>,
    },
    Filter {
        input: Box<OpNode<'r>>,
        predicates: Vec<(usize, Predicate)>,
        /// Id-space forms of `predicates`, interned lazily on first pull.
        compiled: Option<Vec<(usize, CompiledPredicate)>>,
    },
    HashJoin {
        left: Box<OpNode<'r>>,
        right: Box<OpNode<'r>>,
        left_key: usize,
        right_key: usize,
        left_scan: Option<ScanKey>,
        right_scan: Option<ScanKey>,
        arity: usize,
        state: Option<JoinState>,
    },
    Union {
        inputs: Vec<OpNode<'r>>,
        current: usize,
        seen: RowSet,
        arity: usize,
    },
}

struct JoinState {
    build: Arc<Batch>,
    index: Arc<JoinIndex>,
    build_is_left: bool,
    probe_key: usize,
    feed: ProbeFeed,
}

/// Where a join's probe rows come from.
enum ProbeFeed {
    /// Legacy scheduling (no hints): the probe side was materialized to
    /// compare sizes, iterate it in place.
    Materialized { table: Arc<Batch>, cursor: usize },
    /// Hint-scheduled: probe batches are pulled through the child operator
    /// as the join emits — the probe side never materializes in the join.
    Streamed {
        pending: Option<(Batch, usize)>,
        done: bool,
    },
}

/// Emits the join rows for one probe row.
fn join_emit(
    out: &mut Batch,
    probe_row: &[u32],
    build: &Batch,
    index: &JoinIndex,
    build_is_left: bool,
    probe_key: usize,
    null_id: u32,
) {
    let key = probe_row[probe_key];
    if key == null_id {
        return; // null keys never join
    }
    if let Some(matches) = index.matches(key) {
        for &bi in matches {
            let build_row = build.row(bi as usize);
            let (l, r) = if build_is_left {
                (build_row, probe_row)
            } else {
                (probe_row, build_row)
            };
            out.push(l.iter().chain(r.iter()).copied());
        }
    }
}

/// A residual predicate lowered into interned-id space.
enum CompiledPredicate {
    /// Eq / IN: the interned ids of the predicate values — id equality *is*
    /// value equality, so membership is an integer compare.
    Ids(Vec<u32>),
    /// Range / bloom: evaluated on the decoded value, memoized per id (each
    /// distinct id is decoded and compared — or bloom-probed — at most once
    /// per operator).
    Range {
        predicate: Predicate,
        memo: HashMap<u32, bool, FnvBuild>,
    },
}

impl CompiledPredicate {
    fn compile(predicate: &Predicate, ctx: &ExecContext) -> Self {
        match predicate {
            Predicate::Eq(v) => CompiledPredicate::Ids(vec![ctx.intern_value(v)]),
            Predicate::In(vs) => {
                let mut ids: Vec<u32> = vs.iter().map(|v| ctx.intern_value(v)).collect();
                ids.sort_unstable();
                ids.dedup();
                CompiledPredicate::Ids(ids)
            }
            decoded @ (Predicate::Range { .. } | Predicate::Bloom(_)) => CompiledPredicate::Range {
                predicate: decoded.clone(),
                memo: HashMap::default(),
            },
        }
    }

    fn matches(&mut self, id: u32, ctx: &ExecContext) -> bool {
        match self {
            CompiledPredicate::Ids(ids) => ids.binary_search(&id).is_ok(),
            CompiledPredicate::Range { predicate, memo } => *memo
                .entry(id)
                .or_insert_with(|| predicate.matches(&ctx.decode_value(id))),
        }
    }
}

impl<'r> Operator<'r> {
    /// Compiles a plan into its operator tree, bound to the context and
    /// source it will pull from under the given runtime policy.
    pub fn new(
        plan: &PhysicalPlan,
        ctx: &'r ExecContext,
        source: &'r dyn PlanSource,
        policy: ExecPolicy,
    ) -> Self {
        Self {
            ctx,
            source,
            policy,
            node: OpNode::compile(plan),
        }
    }

    /// Pulls the next batch, or `None` when exhausted. With an
    /// [`ExecPolicy::deadline`] set, an expired deadline surfaces as
    /// [`PlanError::DeadlineExceeded`] at the next pull.
    pub fn next_batch(&mut self) -> Result<Option<Batch>, PlanError> {
        if self.policy.deadline_passed() {
            return Err(PlanError::DeadlineExceeded);
        }
        self.node.next_batch(self.ctx, self.source, &self.policy)
    }
}

impl<'r> ScanOp<'r> {
    fn next_batch(
        &mut self,
        ctx: &ExecContext,
        source: &'r dyn PlanSource,
        policy: &ExecPolicy,
    ) -> Result<Option<Batch>, PlanError> {
        let ScanOp {
            source: name,
            request,
            semijoin_reduced,
            state,
        } = self;
        if matches!(state, ScanState::Pending) {
            *state = if !*semijoin_reduced && scan_uses_cache(ctx, source, policy, name, request) {
                ScanState::Cached {
                    table: ctx.scan(source, name, request, policy.deadline)?,
                    cursor: 0,
                }
            } else if let Some(feed) = (!*semijoin_reduced)
                .then(|| ctx.take_queued_scan(&versioned_scan_key(source, name, request)))
                .flatten()
            {
                // The prefetcher registered a bounded feed for this scan —
                // consume it instead of opening a second source cursor. A
                // semi-join-reduced request never matches a registered key
                // (the injected IN-set changes the key), and is skipped
                // outright for clarity.
                ScanState::Queued { feed, done: false }
            } else {
                ScanState::Cursor {
                    batches: source
                        .scan_batches(
                            name,
                            request,
                            adaptive_batch_rows(ctx, source, name, request),
                        )
                        .map_err(PlanError::Relation)?,
                    done: false,
                }
            };
        }
        match state {
            ScanState::Pending => unreachable!("scan state decided above"),
            ScanState::Cached { table, cursor } => {
                if *cursor >= table.len() {
                    return Ok(None);
                }
                let take = BATCH_ROWS.min(table.len() - *cursor);
                let out = table.slice(*cursor, take);
                *cursor += take;
                Ok(Some(out))
            }
            ScanState::Cursor { batches, done } => {
                if *done {
                    return Ok(None);
                }
                loop {
                    if policy.deadline_passed() {
                        *done = true;
                        return Err(PlanError::DeadlineExceeded);
                    }
                    match batches.next() {
                        None => {
                            *done = true;
                            return Ok(None);
                        }
                        Some(Err(e)) => {
                            *done = true;
                            return Err(e.into());
                        }
                        Some(Ok(rows)) => {
                            let mut out = Batch::new(request.output().len());
                            if let Err(e) = ctx.intern_scan_rows(request.output(), &rows, &mut out)
                            {
                                *done = true;
                                return Err(e);
                            }
                            if !out.is_empty() {
                                ctx.note_high_water(out.approx_bytes());
                                return Ok(Some(out));
                            }
                        }
                    }
                }
            }
            ScanState::Queued { feed, done } => {
                if *done {
                    return Ok(None);
                }
                loop {
                    // A sender dropping without an error message is the
                    // normal end of stream; an expired deadline surfaces
                    // here rather than blocking on a stalled producer.
                    let message = match policy.deadline {
                        Some(d) => {
                            let wait = d.saturating_duration_since(Instant::now());
                            match feed.recv_timeout(wait) {
                                Ok(message) => Some(message),
                                Err(RecvTimeoutError::Timeout) => {
                                    *done = true;
                                    return Err(PlanError::DeadlineExceeded);
                                }
                                Err(RecvTimeoutError::Disconnected) => None,
                            }
                        }
                        None => feed.recv().ok(),
                    };
                    match message {
                        None => {
                            *done = true;
                            return Ok(None);
                        }
                        Some(Err(e)) => {
                            *done = true;
                            return Err(e);
                        }
                        Some(Ok(batch)) => {
                            if !batch.is_empty() {
                                ctx.note_high_water(batch.approx_bytes());
                                return Ok(Some(batch));
                            }
                        }
                    }
                }
            }
        }
    }
}

impl<'r> OpNode<'r> {
    fn compile(plan: &PhysicalPlan) -> OpNode<'r> {
        match plan {
            PhysicalPlan::Scan { source, request } => OpNode::Scan(ScanOp {
                source: source.clone(),
                request: request.clone(),
                semijoin_reduced: false,
                state: ScanState::Pending,
            }),
            PhysicalPlan::Rename { input, .. } => OpNode::Rename {
                input: Box::new(OpNode::compile(input)),
            },
            PhysicalPlan::Project { input, indices, .. } => OpNode::Project {
                input: Box::new(OpNode::compile(input)),
                indices: indices.clone(),
            },
            PhysicalPlan::Filter { input, predicates } => OpNode::Filter {
                input: Box::new(OpNode::compile(input)),
                predicates: predicates.clone(),
                compiled: None,
            },
            PhysicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                schema,
            } => OpNode::HashJoin {
                left_scan: left.scan_key(),
                right_scan: right.scan_key(),
                left: Box::new(OpNode::compile(left)),
                right: Box::new(OpNode::compile(right)),
                left_key: *left_key,
                right_key: *right_key,
                arity: schema.len(),
                state: None,
            },
            PhysicalPlan::Union { inputs } => OpNode::Union {
                arity: inputs[0].schema().len(),
                inputs: inputs.iter().map(OpNode::compile).collect(),
                current: 0,
                seen: RowSet::new(inputs[0].schema().len()),
            },
        }
    }

    fn arity(&self) -> usize {
        match self {
            OpNode::Scan(op) => op.request.output().len(),
            OpNode::Rename { input } => input.arity(),
            OpNode::Project { indices, .. } => indices.len(),
            OpNode::Filter { input, .. } => input.arity(),
            OpNode::HashJoin { arity, .. } | OpNode::Union { arity, .. } => *arity,
        }
    }

    /// Estimated output rows of the subtree (mirror of [`plan_hint`] over
    /// the compiled tree).
    fn size_hint(&self, source: &dyn PlanSource) -> Option<u64> {
        match self {
            OpNode::Scan(op) => source.scan_hint(&op.source, &op.request),
            OpNode::Rename { input } => input.size_hint(source),
            OpNode::Project { input, .. } | OpNode::Filter { input, .. } => input.size_hint(source),
            _ => None,
        }
    }

    /// Maps output column `index` down a Rename/Project/Filter chain to the
    /// scan leaf it originates from — the semi-join injection site.
    fn scan_site(&mut self, index: usize) -> Option<(usize, &mut ScanOp<'r>)> {
        match self {
            OpNode::Scan(op) => Some((index, op)),
            OpNode::Rename { input } | OpNode::Filter { input, .. } => input.scan_site(index),
            OpNode::Project { input, indices, .. } => {
                let mapped = *indices.get(index)?;
                input.scan_site(mapped)
            }
            _ => None,
        }
    }

    /// Drains the subtree into one table. Cached-mode scan leaves hand back
    /// the shared interned table without copying, together with the data
    /// version their cache entry was keyed under (`None` for interior nodes
    /// and cursor-only scans) — derived caches must be stamped with exactly
    /// that version, and never created without one.
    fn materialize(
        &mut self,
        ctx: &ExecContext,
        plan_source: &'r dyn PlanSource,
        policy: &ExecPolicy,
    ) -> Result<(Arc<Batch>, Option<u64>), PlanError> {
        if let OpNode::Scan(op) = self {
            if !op.semijoin_reduced
                && scan_uses_cache(ctx, plan_source, policy, &op.source, &op.request)
            {
                let (batch, version) =
                    ctx.scan_versioned(plan_source, &op.source, &op.request, policy.deadline)?;
                return Ok((batch, Some(version)));
            }
        }
        let mut out = Batch::new(self.arity());
        while let Some(batch) = self.next_batch(ctx, plan_source, policy)? {
            out.append(&batch);
        }
        Ok((Arc::new(out), None))
    }

    /// First-pull scheduling of a hash join.
    ///
    /// With semi-join passing enabled and both children hinted, the build
    /// side (hinted-smaller; ties build left, like the eager rule on equal
    /// sizes) completes **before** the probe scan is requested, and its
    /// distinct key set — the build index's key set, free to derive — is
    /// injected into the probe scan as an IN-set when it is small enough
    /// and the source claims it. An unclaimed or over-threshold key set
    /// changes nothing: the join's own hash probe is the residual
    /// semi-join, so answers are identical wherever the filtering runs.
    ///
    /// Without hints (or with the pass disabled), both sides materialize
    /// and the build goes on the actual smaller side — the legacy schedule,
    /// byte-compatible with the eager `ops::join`.
    #[allow(clippy::too_many_arguments)]
    fn init_join(
        left: &mut OpNode<'r>,
        right: &mut OpNode<'r>,
        left_key: usize,
        right_key: usize,
        left_scan: &Option<ScanKey>,
        right_scan: &Option<ScanKey>,
        ctx: &ExecContext,
        source: &'r dyn PlanSource,
        policy: &ExecPolicy,
    ) -> Result<JoinState, PlanError> {
        let hints = (policy.semijoin_max_keys > 0)
            .then(|| left.size_hint(source).zip(right.size_hint(source)))
            .flatten();
        if let Some((left_hint, right_hint)) = hints {
            let build_is_left = left_hint <= right_hint;
            let (build_node, probe_node, build_key, probe_key, build_scan, probe_hint) =
                if build_is_left {
                    (left, right, left_key, right_key, left_scan, right_hint)
                } else {
                    (right, left, right_key, left_key, right_scan, left_hint)
                };
            let (build, build_version) = build_node.materialize(ctx, source, policy)?;
            let cache_key = build_scan.clone().zip(build_version).map(|(mut k, v)| {
                k.data_version = v;
                (k, build_key)
            });
            let index = ctx.build_index(cache_key, &build, build_key);
            // Inject only when the key set is selective enough to actually
            // shrink the probe (see SEMIJOIN_SELECTIVITY): as an exact
            // IN-set while small enough to evaluate source-side, degrading
            // to a bloom membership filter over the same *live* build keys
            // past that threshold ([`ExecPolicy::bloom_semijoins`]). The
            // bloom's false positives only admit extra probe rows this
            // join's hash probe then discards — never a wrong answer, and
            // never dependent on any statistics sketch.
            let distinct = index.distinct_keys();
            let wants_bloom = distinct > policy.semijoin_max_keys;
            let injectable = (distinct as u64).saturating_mul(SEMIJOIN_SELECTIVITY) <= probe_hint
                && (!wants_bloom
                    || (policy.bloom_semijoins && distinct <= BLOOM_SEMIJOIN_MAX_KEYS));
            if injectable {
                if let Some((column_index, scan)) = probe_node.scan_site(probe_key) {
                    // A warm cached unreduced scan beats a reduced re-read
                    // of the source: serve it and let the join's hash probe
                    // be the semi-join (answer-identical, strictly cheaper).
                    if matches!(scan.state, ScanState::Pending)
                        && !ctx.scan_resolved(source, &scan.source, &scan.request)
                    {
                        if let Some(column) = scan.request.columns().get(column_index) {
                            let keys = ctx.decode_ids(index.keys());
                            let predicate = if wants_bloom {
                                Predicate::Bloom(BloomFilter::from_values(&keys))
                            } else {
                                Predicate::in_set(keys)
                            };
                            let filter = ColumnFilter::new(column.clone(), predicate);
                            if source.claims(&scan.source, &filter) {
                                scan.request.add_column_filter(filter);
                                scan.semijoin_reduced = true;
                                let counter = if wants_bloom {
                                    &ctx.semijoin_blooms
                                } else {
                                    &ctx.semijoin_insets
                                };
                                counter.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            Ok(JoinState {
                build,
                index,
                build_is_left,
                probe_key,
                feed: ProbeFeed::Streamed {
                    pending: None,
                    done: false,
                },
            })
        } else {
            let (left_table, left_version) = left.materialize(ctx, source, policy)?;
            let (right_table, right_version) = right.materialize(ctx, source, policy)?;
            // Build on the smaller side — the same rule (and thus the same
            // output row order) as the eager `ops::join`.
            let build_is_left = left_table.len() <= right_table.len();
            let (build, probe, build_key, probe_key, build_scan, build_version) = if build_is_left {
                (
                    left_table,
                    right_table,
                    left_key,
                    right_key,
                    left_scan,
                    left_version,
                )
            } else {
                (
                    right_table,
                    left_table,
                    right_key,
                    left_key,
                    right_scan,
                    right_version,
                )
            };
            // Scan keys are compiled with a placeholder data version; stamp
            // the version the build side's scan was actually keyed under
            // (never a re-read one — a mutation landing between the scan
            // and this point would otherwise cache an old-batch index under
            // the new version).
            let cache_key = build_scan.clone().zip(build_version).map(|(mut k, v)| {
                k.data_version = v;
                (k, build_key)
            });
            let index = ctx.build_index(cache_key, &build, build_key);
            Ok(JoinState {
                build,
                index,
                build_is_left,
                probe_key,
                feed: ProbeFeed::Materialized {
                    table: probe,
                    cursor: 0,
                },
            })
        }
    }

    fn next_batch(
        &mut self,
        ctx: &ExecContext,
        plan_source: &'r dyn PlanSource,
        policy: &ExecPolicy,
    ) -> Result<Option<Batch>, PlanError> {
        match self {
            OpNode::Scan(op) => op.next_batch(ctx, plan_source, policy),
            OpNode::Rename { input } => input.next_batch(ctx, plan_source, policy),
            OpNode::Project { input, indices } => {
                let Some(batch) = input.next_batch(ctx, plan_source, policy)? else {
                    return Ok(None);
                };
                let mut out = Batch::new(indices.len());
                // analyze: allow(deadline, per-row copy of one already-pulled batch — bounded by BATCH_ROWS)
                for row in batch.rows() {
                    out.push(indices.iter().map(|&i| row[i]));
                }
                Ok(Some(out))
            }
            OpNode::Filter {
                input,
                predicates,
                compiled,
            } => {
                let compiled = compiled.get_or_insert_with(|| {
                    predicates
                        .iter()
                        .map(|(index, p)| (*index, CompiledPredicate::compile(p, ctx)))
                        .collect()
                });
                loop {
                    // A predicate that rejects everything would otherwise
                    // spin through an entire cached table between leaf-level
                    // deadline checks.
                    if policy.deadline_passed() {
                        return Err(PlanError::DeadlineExceeded);
                    }
                    let Some(batch) = input.next_batch(ctx, plan_source, policy)? else {
                        return Ok(None);
                    };
                    let mut out = Batch::new(batch.arity());
                    // analyze: allow(deadline, per-row filter of one batch — bounded by BATCH_ROWS)
                    for row in batch.rows() {
                        if compiled
                            .iter_mut()
                            .all(|(index, p)| p.matches(row[*index], ctx))
                        {
                            out.push(row.iter().copied());
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(out));
                    }
                }
            }
            OpNode::HashJoin {
                left,
                right,
                left_key,
                right_key,
                left_scan,
                right_scan,
                arity,
                state,
            } => {
                if state.is_none() {
                    *state = Some(Self::init_join(
                        left.as_mut(),
                        right.as_mut(),
                        *left_key,
                        *right_key,
                        left_scan,
                        right_scan,
                        ctx,
                        plan_source,
                        policy,
                    )?);
                }
                let JoinState {
                    build,
                    index,
                    build_is_left,
                    probe_key,
                    feed,
                } = state.as_mut().expect("join state just initialized");
                let mut out = Batch::new(*arity);
                match feed {
                    ProbeFeed::Materialized { table, cursor } => {
                        // analyze: allow(deadline, emits at most BATCH_ROWS rows per call from a materialized table)
                        while *cursor < table.len() && out.len() < BATCH_ROWS {
                            let probe_row = table.row(*cursor);
                            *cursor += 1;
                            join_emit(
                                &mut out,
                                probe_row,
                                build,
                                index,
                                *build_is_left,
                                *probe_key,
                                ctx.null_id(),
                            );
                        }
                    }
                    ProbeFeed::Streamed { pending, done } => loop {
                        // A probe side whose rows all miss the build index
                        // would otherwise stream batch after batch between
                        // leaf-level deadline checks.
                        if policy.deadline_passed() {
                            return Err(PlanError::DeadlineExceeded);
                        }
                        let exhausted = if let Some((batch, cursor)) = pending.as_mut() {
                            // analyze: allow(deadline, drains at most BATCH_ROWS rows of one pending batch)
                            while *cursor < batch.len() && out.len() < BATCH_ROWS {
                                let probe_row = batch.row(*cursor);
                                *cursor += 1;
                                join_emit(
                                    &mut out,
                                    probe_row,
                                    build,
                                    index,
                                    *build_is_left,
                                    *probe_key,
                                    ctx.null_id(),
                                );
                            }
                            *cursor >= batch.len()
                        } else {
                            false
                        };
                        if exhausted {
                            *pending = None;
                        }
                        if out.len() >= BATCH_ROWS || *done {
                            break;
                        }
                        let probe_node = if *build_is_left {
                            right.as_mut()
                        } else {
                            left.as_mut()
                        };
                        match probe_node.next_batch(ctx, plan_source, policy)? {
                            Some(batch) => *pending = Some((batch, 0)),
                            None => *done = true,
                        }
                    },
                }
                if out.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(out))
                }
            }
            OpNode::Union {
                inputs,
                current,
                seen,
                arity,
            } => loop {
                // A branch whose rows are all duplicates would otherwise
                // drain whole inputs between leaf-level deadline checks.
                if policy.deadline_passed() {
                    return Err(PlanError::DeadlineExceeded);
                }
                let Some(input) = inputs.get_mut(*current) else {
                    return Ok(None);
                };
                match input.next_batch(ctx, plan_source, policy)? {
                    None => *current += 1,
                    Some(batch) => {
                        let mut out = Batch::new(*arity);
                        // analyze: allow(deadline, per-row dedup of one batch — bounded by BATCH_ROWS)
                        for row in batch.rows() {
                            if seen.insert(row) {
                                out.push(row.iter().copied());
                            }
                        }
                        if !out.is_empty() {
                            return Ok(Some(out));
                        }
                    }
                }
            },
        }
    }
}

/// Runs a plan to completion against a fresh context, decoding the result.
///
/// Union nodes deduplicate (set semantics) and emit rows in first-occurrence
/// order; every other operator preserves its input order. Callers wanting
/// the canonical sorted form apply [`Relation::distinct`] themselves.
pub fn execute_plan(plan: &PhysicalPlan, source: &dyn PlanSource) -> Result<Relation, PlanError> {
    let ctx = ExecContext::new();
    execute_plan_in(plan, &ctx, source)
}

/// Runs a plan to completion against an existing (possibly shared) context,
/// under the default [`ExecPolicy`].
pub fn execute_plan_in(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    source: &dyn PlanSource,
) -> Result<Relation, PlanError> {
    execute_plan_in_with(plan, ctx, source, ExecPolicy::default())
}

/// Runs a plan to completion against an existing context under an explicit
/// runtime [`ExecPolicy`] (semi-join sideways passing, scan-cache mode).
pub fn execute_plan_in_with(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    source: &dyn PlanSource,
    policy: ExecPolicy,
) -> Result<Relation, PlanError> {
    let mut op = Operator::new(plan, ctx, source, policy);
    let mut rows: Vec<Tuple> = Vec::new();
    while let Some(batch) = op.next_batch()? {
        rows.extend(ctx.decode_batch(&batch));
    }
    Ok(Relation::new(plan.schema().clone(), rows)?)
}

/// Collects the distinct scan leaves of a plan tree the prefetcher can
/// work ahead on — each tagged with whether the executor will materialize
/// it through the context cache (`true`: warm the shared cell) or pull it
/// cursor-only (`false`: feed it through a bounded queue). Probe scans
/// semi-join passing is about to reduce are skipped entirely (prefetching
/// those would issue the full unreduced scan the sideways pass exists to
/// avoid, *and* pollute the cache with it).
fn collect_prefetch_scans<'p>(
    plan: &'p PhysicalPlan,
    ctx: &ExecContext,
    source: &dyn PlanSource,
    policy: &ExecPolicy,
    out: &mut Vec<(&'p str, &'p ScanRequest, bool)>,
) {
    match plan {
        PhysicalPlan::Scan {
            source: name,
            request,
        } => {
            if !out
                .iter()
                .any(|(s, r, _)| *s == name.as_str() && *r == request)
            {
                let cached = scan_uses_cache(ctx, source, policy, name, request);
                out.push((name, request, cached));
            }
        }
        PhysicalPlan::Rename { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Filter { input, .. } => {
            collect_prefetch_scans(input, ctx, source, policy, out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
            ..
        } => {
            let probe = semijoin_probe_plan(left, right, *left_key, *right_key, source, policy);
            for child in [&**left, &**right] {
                if probe.is_some_and(|p| std::ptr::eq(p, child)) {
                    // The probe chain holds exactly one scan (its injection
                    // site); the executor issues it reduced or
                    // cache-bypassed after the build completes.
                    continue;
                }
                collect_prefetch_scans(child, ctx, source, policy, out);
            }
        }
        PhysicalPlan::Union { inputs } => {
            for input in inputs {
                collect_prefetch_scans(input, ctx, source, policy, out);
            }
        }
    }
}

/// [`execute_plan_prefetched_with`] under the default [`ExecPolicy`].
pub fn execute_plan_prefetched(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    source: &dyn PlanSource,
    max_workers: usize,
) -> Result<Relation, PlanError> {
    execute_plan_prefetched_with(plan, ctx, source, max_workers, ExecPolicy::default())
}

/// Batches a queued-scan producer may run ahead of its consumer: the
/// bounded queue is the backpressure that keeps one slow (or huge) source
/// from buffering unboundedly while siblings and the pipeline proceed.
pub const PREFETCH_QUEUE_BATCHES: usize = 4;

/// Runs a plan like [`execute_plan_in_with`], but works ahead of the
/// pulling pipeline on `crossbeam` scoped prefetch threads:
///
/// * **Cache-destined** scan leaves are warmed concurrently by a worker
///   pool (bounded by `max_workers`), so a plan over several sources
///   overlaps their scans with each other — and with the join pipeline,
///   which starts pulling on the caller's thread immediately and blocks
///   per scan only until *that* scan's shared cache cell is filled.
/// * **Cursor-routed** scan leaves (scans the policy keeps out of the
///   cache) each get a *dedicated* producer thread feeding interned
///   batches through a bounded queue of [`PREFETCH_QUEUE_BATCHES`]
///   batches; the scan operator consumes the queue instead of opening its
///   own cursor. Source latency (a remote source's page fetches) overlaps
///   with execution, while the bounded queue exerts backpressure — a slow
///   source can stall only its own producer, never a sibling's, and never
///   buffers more than the queue holds. Producers beyond `max_workers`
///   are not spawned; the overflow scans just run as plain cursors.
///
/// Probe scans the semi-join pass is about to reduce are deliberately not
/// prefetched on either path. Memory stays bounded: each in-flight
/// prefetch streams through [`PlanSource::scan_batches`] and holds at most
/// one value-space batch plus (for queued feeds) the bounded queue; what
/// accumulates is the interned (4-bytes-per-cell) form in the shared scan
/// cache, which the plan's operators would have materialized anyway.
/// Plans with nothing to work ahead on skip the threads entirely.
pub fn execute_plan_prefetched_with(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    source: &dyn PlanSource,
    max_workers: usize,
    policy: ExecPolicy,
) -> Result<Relation, PlanError> {
    let mut scans = Vec::new();
    collect_prefetch_scans(plan, ctx, source, &policy, &mut scans);
    // Warm scans need no prefetch — on a persistent context a repeated
    // query would otherwise spawn threads just to find every cell filled.
    let cached: Vec<(&str, &ScanRequest)> = scans
        .iter()
        .filter(|(name, request, cached)| *cached && !ctx.scan_resolved(source, name, request))
        .map(|(name, request, _)| (*name, *request))
        .collect();
    let mut queued: Vec<(&str, &ScanRequest)> = scans
        .iter()
        .filter(|(_, _, cached)| !cached)
        .map(|(name, request, _)| (*name, *request))
        .collect();
    queued.truncate(max_workers);
    if max_workers < 2 || (cached.len() < 2 && queued.is_empty()) {
        return execute_plan_in_with(plan, ctx, source, policy);
    }
    let warm_workers = if cached.len() >= 2 {
        cached.len().min(max_workers)
    } else {
        0
    };
    let next = AtomicU64::new(0);
    let cached = &cached;
    let next = &next;
    let deadline = policy.deadline;
    crossbeam::scope(|s| {
        let mut queued_keys = Vec::new();
        for (name, request) in &queued {
            let key = versioned_scan_key(source, name, request);
            let (tx, rx): (SyncSender<Result<Batch, PlanError>>, _) =
                std::sync::mpsc::sync_channel(PREFETCH_QUEUE_BATCHES);
            ctx.offer_queued_scan(key.clone(), rx);
            queued_keys.push(key);
            let (name, request) = (*name, *request);
            s.spawn(move |_| {
                let batches = match source.scan_batches(
                    name,
                    request,
                    adaptive_batch_rows(ctx, source, name, request),
                ) {
                    Ok(batches) => batches,
                    Err(e) => {
                        let _ = tx.send(Err(e.into()));
                        return;
                    }
                };
                for rows in batches {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        let _ = tx.send(Err(PlanError::DeadlineExceeded));
                        return;
                    }
                    let message = rows.map_err(PlanError::from).and_then(|rows| {
                        let mut out = Batch::new(request.output().len());
                        ctx.intern_scan_rows(request.output(), &rows, &mut out)?;
                        ctx.note_high_water(out.approx_bytes());
                        Ok(out)
                    });
                    let failed = message.is_err();
                    // A failed send means the consumer (or the cleanup
                    // below) dropped the feed — stop fetching.
                    if tx.send(message).is_err() || failed {
                        return;
                    }
                }
            });
        }
        for _ in 0..warm_workers {
            s.spawn(move |_| loop {
                let index = next.fetch_add(1, Ordering::Relaxed) as usize;
                let Some((name, request)) = cached.get(index) else {
                    break;
                };
                // Warm the shared cache cell; an error is re-surfaced
                // (deterministically, from the same cell) when the plan's
                // own scan operator pulls it.
                let _ = ctx.scan(source, name, request, deadline);
            });
        }
        let result = execute_plan_in_with(plan, ctx, source, policy);
        // Feeds nobody claimed (a probe scan reduced after registration, an
        // execution that errored before reaching its scan) would leave
        // their producers blocked on a full queue: drop them so the
        // senders disconnect before the scope joins.
        ctx.drop_queued_scans(&queued_keys);
        result
    })
    .expect("prefetch thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn w1() -> Relation {
        Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![
                vec![Value::Int(12), Value::Float(0.75)],
                vec![Value::Int(12), Value::Float(0.90)],
                vec![Value::Int(18), Value::Float(0.1)],
            ],
        )
        .unwrap()
    }

    fn w3() -> Relation {
        Relation::new(
            Schema::from_parts::<&str>(&["TargetApp", "MonitorId", "FeedbackId"], &[]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(12), Value::Int(77)],
                vec![Value::Int(2), Value::Int(18), Value::Int(45)],
            ],
        )
        .unwrap()
    }

    fn source(name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
        match name {
            "w1" => request.apply(&w1()),
            "w3" => request.apply(&w3()),
            other => Err(RelationError::Source(format!("unknown source {other}"))),
        }
    }

    fn scan_all(name: &str, rel: &Relation) -> PhysicalPlan {
        PhysicalPlan::scan(name, ScanRequest::full(rel.schema()))
    }

    #[test]
    fn scan_request_apply_projects_renames_filters() {
        let request = ScanRequest::new(
            vec!["lagRatio".into(), "VoDmonitorId".into()],
            Schema::new(vec![
                Attribute::non_id("D1/lagRatio"),
                Attribute::id("D1/VoDmonitorId"),
            ])
            .unwrap(),
        )
        .unwrap()
        .with_filter("VoDmonitorId", Value::Int(12));
        let out = request.apply(&w1()).unwrap();
        assert_eq!(out.schema().names(), vec!["D1/lagRatio", "D1/VoDmonitorId"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, "D1/lagRatio"), Some(&Value::Float(0.75)));
    }

    #[test]
    fn streamed_join_matches_eager_join_byte_for_byte() {
        let plan = scan_all("w1", &w1())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        let streamed = execute_plan(&plan, &source).unwrap();
        let eager = ops::join(&w1(), &w3(), "VoDmonitorId", "MonitorId").unwrap();
        assert_eq!(streamed, eager);
        assert_eq!(streamed.rows(), eager.rows()); // identical order too
    }

    #[test]
    fn join_build_side_follows_the_eager_size_rule() {
        // w3 (2 rows) < w1 (3 rows): eager builds on w3 when it is the left
        // operand; the plan executor must emit the same probe-major order.
        let plan = scan_all("w3", &w3())
            .hash_join(scan_all("w1", &w1()), "MonitorId", "VoDmonitorId")
            .unwrap();
        let streamed = execute_plan(&plan, &source).unwrap();
        let eager = ops::join(&w3(), &w1(), "MonitorId", "VoDmonitorId").unwrap();
        assert_eq!(streamed.rows(), eager.rows());
    }

    #[test]
    fn join_skips_null_keys() {
        let left = Relation::new(
            Schema::from_parts(&["id"], &["x"]).unwrap(),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(5), Value::Int(2)],
            ],
        )
        .unwrap();
        let right = Relation::new(
            Schema::from_parts::<&str>(&["rid"], &[]).unwrap(),
            vec![vec![Value::Null], vec![Value::Int(5)]],
        )
        .unwrap();
        let src = move |name: &str, request: &ScanRequest| match name {
            "l" => request.apply(&left),
            "r" => request.apply(&right),
            _ => Err(RelationError::Source("unknown".into())),
        };
        let plan = PhysicalPlan::scan(
            "l",
            ScanRequest::full(&Schema::from_parts(&["id"], &["x"]).unwrap()),
        )
        .hash_join(
            PhysicalPlan::scan(
                "r",
                ScanRequest::full(&Schema::from_parts::<&str>(&["rid"], &[]).unwrap()),
            ),
            "id",
            "rid",
        )
        .unwrap();
        let out = execute_plan(&plan, &src).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn union_dedups_in_first_occurrence_order() {
        let a = scan_all("w1", &w1());
        let plan = PhysicalPlan::union(vec![a.clone(), a]).unwrap();
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.len(), 3); // both inputs identical → one copy each
        assert_eq!(out.rows()[0], w1().rows()[0]); // original order kept
    }

    #[test]
    fn union_rejects_shape_mismatch_and_emptiness() {
        assert!(matches!(
            PhysicalPlan::union(vec![]),
            Err(PlanError::EmptyUnion)
        ));
        let err = PhysicalPlan::union(vec![scan_all("w1", &w1()), scan_all("w3", &w3())]);
        assert!(matches!(err, Err(PlanError::UnionShape { .. })));
    }

    #[test]
    fn scans_are_cached_per_request_across_plans() {
        let scans = AtomicUsize::new(0);
        let counting = |name: &str, request: &ScanRequest| {
            scans.fetch_add(1, Ordering::SeqCst);
            source(name, request)
        };
        let ctx = ExecContext::new();
        let plan = scan_all("w1", &w1());
        execute_plan_in(&plan, &ctx, &counting).unwrap();
        execute_plan_in(&plan, &ctx, &counting).unwrap();
        assert_eq!(scans.load(Ordering::SeqCst), 1);

        // A different request (a filter) is a different cache entry.
        let filtered = PhysicalPlan::scan(
            "w1",
            ScanRequest::full(w1().schema()).with_filter("VoDmonitorId", Value::Int(18)),
        );
        let out = execute_plan_in(&filtered, &ctx, &counting).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(scans.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn interning_respects_cross_type_numeric_equality() {
        let ctx = ExecContext::new();
        let rel = Relation::new(
            Schema::from_parts::<&str>(&[], &["x"]).unwrap(),
            vec![vec![Value::Int(2)], vec![Value::Float(2.0)]],
        )
        .unwrap();
        let batch = ctx.intern_relation(&rel);
        assert_eq!(batch.row(0), batch.row(1));
    }

    #[test]
    fn rename_is_free_and_relabels() {
        let plan = scan_all("w1", &w1())
            .rename(&[("VoDmonitorId", "monitorId")])
            .unwrap();
        assert!(plan.schema().attribute("monitorId").unwrap().is_id());
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.len(), 3);
        assert!(scan_all("w1", &w1()).rename(&[("zz", "x")]).is_err());
    }

    #[test]
    fn project_by_indices_and_columns() {
        let plan = scan_all("w1", &w1())
            .project_columns(
                &["lagRatio"],
                Schema::from_parts::<&str>(&[], &["lagRatio"]).unwrap(),
            )
            .unwrap();
        let out = execute_plan(&plan, &source).unwrap();
        assert_eq!(out.schema().names(), vec!["lagRatio"]);
        assert_eq!(out.len(), 3);

        let err = scan_all("w1", &w1())
            .project(vec![7], Schema::from_parts::<&str>(&[], &["x"]).unwrap());
        assert!(matches!(err, Err(PlanError::ProjectionRange { .. })));
    }

    #[test]
    fn batches_bound_row_counts() {
        // 3000 rows → 1024 + 1024 + 952.
        let schema = Schema::from_parts::<&str>(&["id"], &[]).unwrap();
        let big = Relation::new(
            schema.clone(),
            (0..3000).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let src = move |_: &str, request: &ScanRequest| request.apply(&big);
        let ctx = ExecContext::new();
        let plan = PhysicalPlan::scan("big", ScanRequest::full(&schema));
        let mut op = Operator::new(&plan, &ctx, &src, ExecPolicy::default());
        let mut sizes = Vec::new();
        while let Some(batch) = op.next_batch().unwrap() {
            sizes.push(batch.len());
        }
        assert_eq!(sizes, vec![1024, 1024, 952]);
    }

    #[test]
    fn predicate_matches_follow_the_total_order() {
        // Cross-type numeric equality.
        assert!(Predicate::eq(2).matches(&Value::Float(2.0)));
        // Empty IN-set matches nothing — not even null.
        let empty = Predicate::in_set([]);
        assert!(!empty.matches(&Value::Null));
        assert!(!empty.matches(&Value::Int(0)));
        // IN canonicalizes: order and duplicates don't matter.
        assert_eq!(
            Predicate::in_set([Value::Int(3), Value::Int(1), Value::Int(3)]),
            Predicate::in_set([Value::Int(1), Value::Int(3)])
        );
        assert!(Predicate::in_set([Value::Int(1), Value::Int(3)]).matches(&Value::Float(3.0)));
        // A directly-built (unsorted) In variant matches the same rows as
        // the canonical form — the variant is public, so `matches` must not
        // assume sortedness.
        assert!(Predicate::In(vec![Value::Int(3), Value::Int(1)]).matches(&Value::Int(3)));
        assert!(Predicate::In(vec![Value::Int(3), Value::Int(1)]).matches(&Value::Float(1.0)));
        // Ranges: inclusive/exclusive endpoints.
        let r = Predicate::range(
            Some(Bound::inclusive(Value::Int(1))),
            Some(Bound::exclusive(Value::Int(5))),
        );
        assert!(r.matches(&Value::Int(1)));
        assert!(r.matches(&Value::Float(4.999)));
        assert!(!r.matches(&Value::Int(5)));
        assert!(!r.matches(&Value::Int(0)));
        // Null sorts below numerics: excluded by any numeric lower bound.
        assert!(!r.matches(&Value::Null));
        // Strings sort above numerics: a min-only numeric range admits them
        // (total-order semantics — documented, and pinned differentially).
        assert!(Predicate::at_least(5).matches(&Value::Str("x".into())));
        // NaN is greatest and self-equal; -0.0 equals 0.0.
        assert!(Predicate::at_least(5).matches(&Value::Float(f64::NAN)));
        assert!(!Predicate::at_most(1e308).matches(&Value::Float(f64::NAN)));
        assert!(Predicate::between(f64::NAN, f64::NAN).matches(&Value::Float(f64::NAN)));
        assert!(Predicate::eq(Value::Float(-0.0)).matches(&Value::Int(0)));
        assert!(Predicate::between(Value::Float(-0.0), Value::Float(0.0)).matches(&Value::Int(0)));
    }

    #[test]
    fn scan_request_applies_conjunctions() {
        let request = ScanRequest::full(w1().schema())
            .with_predicate("VoDmonitorId", Predicate::at_least(12))
            .with_predicate("lagRatio", Predicate::between(0.5, 0.8));
        let out = request.apply(&w1()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "lagRatio"), Some(&Value::Float(0.75)));
    }

    #[test]
    fn residual_filter_operator_matches_reference_apply() {
        // The same predicates, once pushed into the scan request (claimed)
        // and once as a mediator-side Filter residue, agree byte-for-byte.
        let predicates = vec![
            ("VoDmonitorId", Predicate::in_set([Value::Int(12)])),
            ("lagRatio", Predicate::at_most(0.8)),
        ];
        let pushed = PhysicalPlan::scan(
            "w1",
            ScanRequest::full(w1().schema())
                .with_predicate("VoDmonitorId", predicates[0].1.clone())
                .with_predicate("lagRatio", predicates[1].1.clone()),
        );
        let residual = scan_all("w1", &w1()).filter(predicates).unwrap();
        let a = execute_plan(&pushed, &source).unwrap();
        let b = execute_plan(&residual, &source).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        // Unknown filter columns are rejected at build time.
        assert!(scan_all("w1", &w1())
            .filter(vec![("zz", Predicate::eq(1))])
            .is_err());
    }

    #[test]
    fn predicates_on_columns_dropped_by_projection_still_filter() {
        // The filter column (VoDmonitorId) is not among the requested
        // columns: it must still select rows, ride along internally, and
        // never appear in the output schema — in the reference, in a pushed
        // scan, and in an executed plan.
        let request = ScanRequest::new(
            vec!["lagRatio".into()],
            Schema::from_parts::<&str>(&[], &["lagRatio"]).unwrap(),
        )
        .unwrap()
        .with_predicate("VoDmonitorId", Predicate::between(12, 17));
        let reference = request.apply(&w1()).unwrap();
        assert_eq!(reference.schema().names(), vec!["lagRatio"]);
        assert_eq!(reference.len(), 2); // both monitor-12 rows, not monitor-18
        let out = execute_plan(&PhysicalPlan::scan("w1", request), &source).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn scan_cache_evicts_least_recently_used() {
        let scans = AtomicUsize::new(0);
        let counting = |name: &str, request: &ScanRequest| {
            scans.fetch_add(1, Ordering::SeqCst);
            source(name, request)
        };
        let ctx = ExecContext::with_capacity(2);
        let w1_plan = scan_all("w1", &w1());
        let w3_plan = scan_all("w3", &w3());
        let filtered = PhysicalPlan::scan(
            "w1",
            ScanRequest::full(w1().schema()).with_filter("VoDmonitorId", Value::Int(18)),
        );
        execute_plan_in(&w1_plan, &ctx, &counting).unwrap(); // cache: w1
        execute_plan_in(&w3_plan, &ctx, &counting).unwrap(); // cache: w1, w3
        execute_plan_in(&w1_plan, &ctx, &counting).unwrap(); // touch w1
        assert_eq!(scans.load(Ordering::SeqCst), 2);
        assert_eq!(ctx.cached_scans(), 2);
        // Third distinct scan evicts the LRU entry (w3, not the re-touched w1).
        execute_plan_in(&filtered, &ctx, &counting).unwrap();
        assert_eq!(ctx.cached_scans(), 2);
        assert_eq!(scans.load(Ordering::SeqCst), 3);
        execute_plan_in(&w1_plan, &ctx, &counting).unwrap(); // still cached
        assert_eq!(scans.load(Ordering::SeqCst), 3);
        execute_plan_in(&w3_plan, &ctx, &counting).unwrap(); // was evicted → rescans
        assert_eq!(scans.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn batches_from_relation_chunks_in_order() {
        for batch_rows in [1usize, 3, 1 << 20] {
            let mut rows: Vec<Tuple> = Vec::new();
            for batch in batches_from_relation(w1(), batch_rows) {
                let batch = batch.unwrap();
                assert!(batch.len() <= batch_rows);
                assert!(!batch.is_empty());
                rows.extend(batch);
            }
            assert_eq!(rows, w1().rows());
        }
    }

    #[test]
    fn adversarial_batch_sizes_change_nothing() {
        let plan = scan_all("w1", &w1())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        let reference = execute_plan(&plan, &source).unwrap();
        for batch_rows in [1usize, 3, 1 << 20] {
            let ctx = ExecContext::new().with_scan_batch_rows(batch_rows);
            assert_eq!(ctx.scan_batch_rows(), batch_rows);
            let out = execute_plan_in(&plan, &ctx, &source).unwrap();
            assert_eq!(out.rows(), reference.rows());
        }
    }

    #[test]
    fn prefetched_execution_matches_plain_and_scans_once() {
        let scans = AtomicUsize::new(0);
        let counting = |name: &str, request: &ScanRequest| {
            scans.fetch_add(1, Ordering::SeqCst);
            source(name, request)
        };
        let plan = scan_all("w1", &w1())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        let reference = execute_plan(&plan, &source).unwrap();
        let ctx = ExecContext::new();
        let out = execute_plan_prefetched(&plan, &ctx, &counting, 8).unwrap();
        assert_eq!(out.rows(), reference.rows());
        // Prefetch threads and the pulling pipeline share the cache cells:
        // each distinct scan ran exactly once.
        assert_eq!(scans.load(Ordering::SeqCst), 2);
        // Errors surface through the shared cell, prefetched or not.
        let bad = scan_all("w1", &w1())
            .hash_join(scan_all("zz", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        assert!(execute_plan_prefetched(&bad, &ExecContext::new(), &source, 8).is_err());
    }

    /// A mutable source whose `data_version` moves with its rows — the
    /// contract that makes persistent contexts safe to reuse.
    struct Versioned {
        rows: std::sync::Mutex<Relation>,
        version: AtomicU64,
        scans: AtomicUsize,
    }

    impl PlanSource for Versioned {
        fn scan(&self, _: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
            self.scans.fetch_add(1, Ordering::SeqCst);
            request.apply(&self.rows.lock().unwrap())
        }

        fn data_version(&self, _: &str) -> u64 {
            self.version.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn scan_cache_keys_on_data_version() {
        let source = Versioned {
            rows: std::sync::Mutex::new(w1()),
            version: AtomicU64::new(0),
            scans: AtomicUsize::new(0),
        };
        let ctx = ExecContext::new();
        let plan = scan_all("w1", &w1());
        assert_eq!(execute_plan_in(&plan, &ctx, &source).unwrap().len(), 3);
        assert_eq!(execute_plan_in(&plan, &ctx, &source).unwrap().len(), 3);
        assert_eq!(source.scans.load(Ordering::SeqCst), 1); // cached

        // Mutate the data and bump the version: the same context must
        // re-scan instead of serving the stale snapshot.
        let mut bigger = w1();
        bigger
            .push(vec![Value::Int(99), Value::Float(0.5)])
            .unwrap();
        *source.rows.lock().unwrap() = bigger;
        source.version.fetch_add(1, Ordering::SeqCst);
        let fresh = execute_plan_in(&plan, &ctx, &source).unwrap();
        assert_eq!(fresh.len(), 4);
        assert_eq!(source.scans.load(Ordering::SeqCst), 2);
    }

    /// A source whose data version advances *between* a query's build-side
    /// scan and any later version read in that query (the adversarial
    /// interleaving a concurrent `push` produces under short lock holds —
    /// the scan reads rows+version before the push, anything after the
    /// push sees the bumped counter): the cached build index must be keyed
    /// by the version the scan was keyed under, never by a re-read of the
    /// live counter — or the next query at the new version would join
    /// through an index built over the old batch.
    #[test]
    fn build_cache_is_stamped_with_the_scanned_version() {
        let one_row = || {
            Relation::new(
                Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
                vec![vec![Value::Int(12), Value::Float(0.75)]],
            )
            .unwrap()
        };

        struct Racy {
            rows: std::sync::Mutex<Relation>,
            version: AtomicU64,
            reads: AtomicUsize,
        }

        impl PlanSource for Racy {
            fn scan(&self, name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
                match name {
                    "wr" => request.apply(&self.rows.lock().unwrap()),
                    "w3" => request.apply(&w3()),
                    other => Err(RelationError::Source(format!("unknown source {other}"))),
                }
            }

            fn data_version(&self, name: &str) -> u64 {
                if name == "wr" {
                    // The concurrent push lands right after the first read
                    // (the scan's): the second read — whatever re-reads the
                    // counter later in the same query — already sees v1.
                    if self.reads.fetch_add(1, Ordering::SeqCst) == 1 {
                        self.version.fetch_add(1, Ordering::SeqCst);
                    }
                }
                self.version.load(Ordering::SeqCst)
            }
        }

        let source = Racy {
            rows: std::sync::Mutex::new(one_row()),
            version: AtomicU64::new(0),
            reads: AtomicUsize::new(0),
        };
        let ctx = ExecContext::new();
        // wr (1 row) is smaller than w3 (2 rows): wr is the build side, so
        // its cached JoinIndex is what the stamping protects.
        let plan = scan_all("wr", &one_row())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap();
        let first = execute_plan_in(&plan, &ctx, &source).unwrap();
        assert_eq!(first.len(), 1); // monitor 12 matches one w3 row

        // The push's rows become visible (its version bump was already
        // observed mid-query above): monitor 18 now also joins.
        let mut pushed = one_row();
        pushed
            .push(vec![Value::Int(18), Value::Float(0.4)])
            .unwrap();
        *source.rows.lock().unwrap() = pushed.clone();
        let second = execute_plan_in(&plan, &ctx, &source).unwrap();
        let eager = ops::join(&pushed, &w3(), "VoDmonitorId", "MonitorId").unwrap();
        assert_eq!(second.rows(), eager.rows(), "stale build index served");
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn empty_misshapen_scan_still_errors() {
        // A source answering with an empty relation of the WRONG arity is a
        // misconfiguration, and must error even though no row exists to
        // fail the per-row check.
        let misshapen = |_: &str, _: &ScanRequest| {
            Relation::new(Schema::from_parts::<&str>(&[], &["only"]).unwrap(), vec![])
        };
        let plan = scan_all("w1", &w1()); // requests w1's 2-column shape
        let err = execute_plan(&plan, &misshapen);
        assert!(err.is_err(), "empty wrong-shape scan was silently accepted");
    }

    #[test]
    fn value_cap_watermark_reports_overflow() {
        let ctx = ExecContext::new().with_value_cap(4);
        assert_eq!(ctx.value_cap(), Some(4));
        assert!(!ctx.over_value_cap());
        for i in 0..8 {
            ctx.intern_value(&Value::Int(i));
        }
        assert!(ctx.over_value_cap());
        assert!(ctx.pooled_values() >= 8);
        assert!(ctx.memory_estimate() > 0);
        // Uncapped contexts never report overflow.
        assert!(!ExecContext::new().over_value_cap());
    }

    /// A plan source that claims nothing — used to pin the full-residue path.
    struct NoClaims;

    impl PlanSource for NoClaims {
        fn scan(&self, name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
            // A claims-nothing source must never be handed a filter.
            assert!(request.filters().is_empty());
            source(name, request)
        }

        fn claims(&self, _source: &str, _filter: &ColumnFilter) -> bool {
            false
        }
    }

    #[test]
    fn claims_defaults_to_true_and_can_be_declined() {
        assert!(source.claims("w1", &ColumnFilter::new("x", Predicate::eq(1))));
        assert!(!NoClaims.claims("w1", &ColumnFilter::new("x", Predicate::eq(1))));
        // Residual filtering over an unclaimed source still selects.
        let plan = scan_all("w1", &w1())
            .filter(vec![("VoDmonitorId", Predicate::eq(12))])
            .unwrap();
        let out = execute_plan(&plan, &NoClaims).unwrap();
        assert_eq!(out.len(), 2);
    }

    /// A source with exact row hints that records every scan request it
    /// receives — the instrument pinning the semi-join sideways pass.
    struct Hinted {
        requests: std::sync::Mutex<Vec<(String, ScanRequest)>>,
        claim_in_sets: bool,
    }

    impl Hinted {
        fn new(claim_in_sets: bool) -> Self {
            Self {
                requests: std::sync::Mutex::new(Vec::new()),
                claim_in_sets,
            }
        }

        fn requests_for(&self, name: &str) -> Vec<ScanRequest> {
            self.requests
                .lock()
                .unwrap()
                .iter()
                .filter(|(n, _)| n == name)
                .map(|(_, r)| r.clone())
                .collect()
        }

        fn relation(name: &str) -> Relation {
            match name {
                "w1" => w1(),
                "w3" => w3(),
                "wbig" => wbig(),
                // An empty source sharing w3's join column.
                "w_empty" => Relation::empty(w3().schema().clone()),
                other => panic!("unknown source {other}"),
            }
        }
    }

    impl PlanSource for Hinted {
        fn scan(&self, name: &str, request: &ScanRequest) -> Result<Relation, RelationError> {
            self.requests
                .lock()
                .unwrap()
                .push((name.to_owned(), request.clone()));
            request.apply(&Self::relation(name))
        }

        fn scan_hint(&self, name: &str, _request: &ScanRequest) -> Option<u64> {
            Some(Self::relation(name).len() as u64)
        }

        fn claims(&self, _source: &str, filter: &ColumnFilter) -> bool {
            self.claim_in_sets || !matches!(filter.predicate, Predicate::In(_))
        }
    }

    fn w1_w3_join() -> PhysicalPlan {
        scan_all("w1", &w1())
            .hash_join(scan_all("w3", &w3()), "VoDmonitorId", "MonitorId")
            .unwrap()
    }

    /// A 12-row probe relation (`BigId` 10..=21) sharing w3's key domain —
    /// big enough that w3's two build keys pass the selectivity gate.
    fn wbig() -> Relation {
        Relation::new(
            Schema::from_parts(&["BigId"], &["load"]).unwrap(),
            (0..12)
                .map(|r| vec![Value::Int(10 + r), Value::Float(r as f64 / 4.0)])
                .collect(),
        )
        .unwrap()
    }

    fn w3_wbig_join() -> PhysicalPlan {
        scan_all("w3", &w3())
            .hash_join(scan_all("wbig", &wbig()), "MonitorId", "BigId")
            .unwrap()
    }

    #[test]
    fn semijoin_reduces_probe_scan_and_bypasses_cache() {
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        let out = execute_plan_in(&w3_wbig_join(), &ctx, &src).unwrap();
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        assert_eq!(out.len(), 2);
        // w3 (2 rows) is the hinted-smaller build side; its two distinct
        // MonitorId keys were pushed into wbig's scan as a canonical IN-set.
        let probe_requests = src.requests_for("wbig");
        assert_eq!(probe_requests.len(), 1);
        assert_eq!(probe_requests[0].filters().len(), 1);
        let filter = &probe_requests[0].filters()[0];
        assert_eq!(filter.column, "BigId");
        assert_eq!(
            filter.predicate,
            Predicate::in_set([Value::Int(12), Value::Int(18)])
        );
        // The key-reduced probe scan is query-specific: only the build
        // side's scan landed in the shared cache.
        assert_eq!(ctx.cached_scans(), 1);
    }

    #[test]
    fn semijoin_respects_disable_and_threshold() {
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        // 0 disables the pass outright — including the bloom degradation,
        // despite blooms defaulting on. With blooms off, 1 is under the
        // build's 2 distinct keys, so the probe runs unreduced (and
        // cache-normally) there too.
        for (max_keys, blooms) in [(0usize, true), (0, false), (1, false)] {
            let src = Hinted::new(true);
            let ctx = ExecContext::new();
            let policy = ExecPolicy {
                semijoin_max_keys: max_keys,
                bloom_semijoins: blooms,
                ..ExecPolicy::default()
            };
            let out = execute_plan_in_with(&w3_wbig_join(), &ctx, &src, policy).unwrap();
            assert_eq!(
                out.rows(),
                eager.rows(),
                "max_keys={max_keys} blooms={blooms}"
            );
            assert!(src
                .requests_for("wbig")
                .iter()
                .all(|r| r.filters().is_empty()));
            assert_eq!(ctx.cached_scans(), 2);
            assert_eq!(ctx.semijoin_blooms(), 0);
        }
    }

    #[test]
    fn semijoin_past_threshold_degrades_to_bloom() {
        // A nonzero threshold under the build's 2 distinct keys with blooms
        // on (the default): the pass degrades to a bloom membership filter
        // over the live build keys instead of standing down. The reduced
        // probe scan is query-specific (cache-bypassed) like an IN-set.
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        let policy = ExecPolicy {
            semijoin_max_keys: 1,
            ..ExecPolicy::default()
        };
        let out = execute_plan_in_with(&w3_wbig_join(), &ctx, &src, policy).unwrap();
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        let probe_requests = src.requests_for("wbig");
        assert_eq!(probe_requests.len(), 1);
        assert_eq!(probe_requests[0].filters().len(), 1);
        let filter = &probe_requests[0].filters()[0];
        assert_eq!(filter.column, "BigId");
        match &filter.predicate {
            Predicate::Bloom(bloom) => {
                assert!(bloom.may_contain(&Value::Int(12)));
                assert!(bloom.may_contain(&Value::Int(18)));
            }
            other => panic!("expected bloom injection, got {other:?}"),
        }
        assert_eq!(ctx.cached_scans(), 1);
        assert_eq!(ctx.semijoin_blooms(), 1);
    }

    #[test]
    fn non_selective_joins_skip_the_sideways_pass() {
        // w1 (3 rows) probed by w3's 2 keys: 2 x SELECTIVITY > 3, so the
        // IN-set would not meaningfully shrink the probe — no injection,
        // and the probe scan stays shared/cacheable.
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        let out = execute_plan_in(&w1_w3_join(), &ctx, &src).unwrap();
        let eager = ops::join(&w1(), &w3(), "VoDmonitorId", "MonitorId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        assert!(src
            .requests_for("w1")
            .iter()
            .all(|r| r.filters().is_empty()));
        assert_eq!(ctx.cached_scans(), 2);
    }

    #[test]
    fn unclaimed_in_set_falls_back_to_the_join_probe() {
        // The source declines IN-sets: the probe scan stays unreduced (and
        // cached), and the join's own hash probe is the residual semi-join.
        let src = Hinted::new(false);
        let ctx = ExecContext::new();
        let out = execute_plan_in(&w3_wbig_join(), &ctx, &src).unwrap();
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        assert!(src
            .requests_for("wbig")
            .iter()
            .all(|r| r.filters().is_empty()));
        assert_eq!(ctx.cached_scans(), 2);
    }

    #[test]
    fn empty_build_side_reduces_probe_to_nothing() {
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        let plan = PhysicalPlan::scan("w_empty", ScanRequest::full(w3().schema()))
            .hash_join(scan_all("wbig", &wbig()), "MonitorId", "BigId")
            .unwrap();
        let out = execute_plan_in(&plan, &ctx, &src).unwrap();
        assert!(out.is_empty());
        // The injected IN-set is the canonical empty set — the probe source
        // ships no rows at all.
        let probe_requests = src.requests_for("wbig");
        assert_eq!(probe_requests.len(), 1);
        assert_eq!(
            probe_requests[0].filters()[0].predicate,
            Predicate::in_set([])
        );
    }

    #[test]
    fn warm_cached_probe_scan_beats_injection() {
        // A prior query already cached wbig's unreduced scan on this
        // context: injecting the IN-set would force a source re-read, so
        // the pass stands down and the join probes the warm table.
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        execute_plan_in(&scan_all("wbig", &wbig()), &ctx, &src).unwrap();
        assert_eq!(src.requests_for("wbig").len(), 1);
        let out = execute_plan_in(&w3_wbig_join(), &ctx, &src).unwrap();
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        // No second wbig read happened, filtered or otherwise.
        let probe_requests = src.requests_for("wbig");
        assert_eq!(probe_requests.len(), 1);
        assert!(probe_requests[0].filters().is_empty());
        assert_eq!(ctx.cached_scans(), 2);
    }

    #[test]
    fn semijoin_survives_prefetched_execution() {
        // The prefetcher must not warm (and cache) the probe scan the
        // sideways pass is about to reduce: wbig is scanned exactly once,
        // already carrying the IN-set.
        let src = Hinted::new(true);
        let ctx = ExecContext::new();
        let out =
            execute_plan_prefetched_with(&w3_wbig_join(), &ctx, &src, 8, ExecPolicy::default())
                .unwrap();
        let eager = ops::join(&w3(), &wbig(), "MonitorId", "BigId").unwrap();
        assert_eq!(out.rows(), eager.rows());
        let probe_requests = src.requests_for("wbig");
        assert_eq!(probe_requests.len(), 1);
        assert_eq!(probe_requests[0].filters().len(), 1);
        assert_eq!(ctx.cached_scans(), 1);
    }

    #[test]
    fn cursor_only_mode_never_caches() {
        let scans = AtomicUsize::new(0);
        let counting = |name: &str, request: &ScanRequest| {
            scans.fetch_add(1, Ordering::SeqCst);
            source(name, request)
        };
        let ctx = ExecContext::new();
        let policy = ExecPolicy {
            scan_cache: ScanCache::Never,
            ..ExecPolicy::default()
        };
        let plan = w1_w3_join();
        let reference = execute_plan(&plan, &source).unwrap();
        let first = execute_plan_in_with(&plan, &ctx, &counting, policy).unwrap();
        assert_eq!(first.rows(), reference.rows());
        assert_eq!(ctx.cached_scans(), 0);
        let scans_after_first = scans.load(Ordering::SeqCst);
        assert_eq!(scans_after_first, 2);
        // A second execution re-reads the sources — nothing was cached.
        let second = execute_plan_in_with(&plan, &ctx, &counting, policy).unwrap();
        assert_eq!(second.rows(), reference.rows());
        assert_eq!(scans.load(Ordering::SeqCst), 2 * scans_after_first);
        assert_eq!(ctx.cached_builds(), 0); // no version → no build caching
    }

    #[test]
    fn auto_mode_gates_on_value_cap_and_hint() {
        // w1's hint (3 rows) exceeds a cap of 2 → cursor-only under Auto.
        let src = Hinted::new(true);
        let capped = ExecContext::new().with_value_cap(2);
        let plan = scan_all("w1", &w1());
        let out = execute_plan_in_with(&plan, &capped, &src, ExecPolicy::default()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(capped.cached_scans(), 0);
        // An uncapped context caches as before.
        let uncapped = ExecContext::new();
        execute_plan_in_with(&plan, &uncapped, &src, ExecPolicy::default()).unwrap();
        assert_eq!(uncapped.cached_scans(), 1);
        // A hintless source always caches under Auto, capped or not.
        let hintless = ExecContext::new().with_value_cap(2);
        execute_plan_in_with(&plan, &hintless, &source, ExecPolicy::default()).unwrap();
        assert_eq!(hintless.cached_scans(), 1);
    }

    #[test]
    fn cursor_mode_peaks_below_cached_mode() {
        // A 5000-row scan over a 16-value domain: the cached interned table
        // dominates the resident estimate; cursor-only holds one batch.
        let schema = Schema::from_parts::<&str>(&["id"], &[]).unwrap();
        let big = Relation::new(
            schema.clone(),
            (0..5000).map(|i| vec![Value::Int(i % 16)]).collect(),
        )
        .unwrap();
        let src = move |_: &str, request: &ScanRequest| request.apply(&big);
        let plan = PhysicalPlan::scan("big", ScanRequest::full(&schema));

        let cached_ctx = ExecContext::new();
        let cached = execute_plan_in(&plan, &cached_ctx, &src).unwrap();
        let cursor_ctx = ExecContext::new();
        let policy = ExecPolicy {
            scan_cache: ScanCache::Never,
            ..ExecPolicy::default()
        };
        let streamed = execute_plan_in_with(&plan, &cursor_ctx, &src, policy).unwrap();
        assert_eq!(streamed.rows(), cached.rows());
        assert!(cursor_ctx.peak_bytes() > 0);
        assert!(
            cursor_ctx.peak_bytes() < cached_ctx.peak_bytes(),
            "cursor peak {} >= cached peak {}",
            cursor_ctx.peak_bytes(),
            cached_ctx.peak_bytes()
        );
    }
}
