//! # bdi-relational — the mediator-layer relational algebra engine
//!
//! Implements the restricted relational constructs of the paper's §2.2:
//!
//! * [`Schema`]s partitioned into **ID** and **non-ID** attributes,
//! * the restricted projection **Π̃** (never drops IDs) and ID-restricted
//!   equi-join **⋈̃** ([`ops`]),
//! * scalar [`expr`]essions for wrapper-computed attributes (`lagRatio =
//!   waitTime / watchTime`),
//! * the [`algebra::RelExpr`] expression tree that walks compile to, with a
//!   paper-notation pretty printer and an evaluator,
//! * the [`plan`] module: compiled [`plan::PhysicalPlan`]s and the streaming
//!   batch executor over interned values — the engine production queries run
//!   on, with the eager [`ops`] kept as its executable reference,
//! * the [`stats`] module: per-column sketches ([`stats::TableStats`])
//!   wrappers maintain at write time and the planner uses for selectivity
//!   estimates, bloom semi-joins and adaptive scan modes.

pub mod algebra;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;

pub use algebra::{AlgebraError, RelExpr, SourceResolver};
pub use expr::{Expr, ExprError};
pub use plan::{
    BatchIter, Bound, ColumnFilter, ExecContext, ExecPolicy, PhysicalPlan, PlanError, PlanSource,
    Predicate, ScanCache, ScanRequest,
};
pub use relation::{Relation, RelationError, Tuple};
pub use schema::{Attribute, Schema, SchemaError};
pub use stats::{BloomFilter, ColumnStats, DistinctSketch, StatsBuilder, TableStats};
pub use value::Value;
