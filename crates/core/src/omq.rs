//! Ontology-mediated queries: `Q_G = ⟨π, φ⟩` (§2.2).
//!
//! Analysts pose OMQs in the restricted SPARQL template of Code 3. An OMQ is
//! internally the pair of the projected attribute IRIs `π` and the constant
//! basic graph pattern `φ` (a connected subgraph of `G`). This module parses
//! the template into that pair and provides the graph utilities Algorithms
//! 2–3 need: topological sorting (DAG check) and connectivity.

use bdi_rdf::model::{Iri, Term, Triple};
use bdi_rdf::sparql::{self, GraphSpec, SelectQuery, TermOrVar};
use bdi_rdf::turtle::PrefixMap;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Errors raised while interpreting an OMQ.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum OmqError {
    #[error("SPARQL parse error: {0}")]
    Parse(String),
    #[error("OMQ template requires a VALUES clause binding each projected variable to an attribute IRI (Code 3)")]
    MissingValues,
    #[error("VALUES must bind projection variables to IRIs; found {0}")]
    NonIriValue(String),
    #[error("the template accepts only constant triple patterns in the WHERE clause; found a variable in `{0}`")]
    VariableInPattern(String),
    #[error("OMQ graph pattern must be connected; {0} component(s) found")]
    Disconnected(usize),
    #[error("projected attribute {0} does not occur in the graph pattern")]
    ProjectionNotInPattern(String),
}

/// An ontology-mediated query `⟨π, φ⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Omq {
    /// π — the projected attribute IRIs.
    pub pi: Vec<Iri>,
    /// φ — the constant graph pattern (a subgraph of `G`).
    pub phi: Vec<Triple>,
}

impl Omq {
    /// Builds an OMQ directly from `π` and `φ` (the programmatic path; the
    /// well-formedness of the pair is checked by Algorithm 2, not here).
    pub fn new(pi: Vec<Iri>, phi: Vec<Triple>) -> Self {
        Self { pi, phi }
    }

    /// Parses the SPARQL template of Code 3 into an OMQ.
    pub fn parse(query: &str, prefixes: &PrefixMap) -> Result<Self, OmqError> {
        let parsed =
            sparql::parse_query(query, prefixes).map_err(|e| OmqError::Parse(e.to_string()))?;
        Self::from_select(&parsed)
    }

    /// Interprets an already-parsed SPARQL query as an OMQ.
    pub fn from_select(query: &SelectQuery) -> Result<Self, OmqError> {
        let values = query.values.as_ref().ok_or(OmqError::MissingValues)?;
        let mut pi = Vec::new();
        for row in &values.rows {
            for term in row {
                match term {
                    Term::Iri(iri) => pi.push(iri.clone()),
                    other => return Err(OmqError::NonIriValue(other.to_string())),
                }
            }
        }

        let mut phi = Vec::new();
        for qp in &query.patterns {
            if !matches!(qp.graph, GraphSpec::Active) {
                return Err(OmqError::VariableInPattern(qp.pattern.to_string()));
            }
            let (s, p, o) = (
                &qp.pattern.subject,
                &qp.pattern.predicate,
                &qp.pattern.object,
            );
            let (TermOrVar::Term(s), TermOrVar::Term(Term::Iri(p)), TermOrVar::Term(o)) = (s, p, o)
            else {
                return Err(OmqError::VariableInPattern(qp.pattern.to_string()));
            };
            phi.push(Triple {
                subject: s.clone(),
                predicate: p.clone(),
                object: o.clone(),
            });
        }

        let omq = Self { pi, phi };
        omq.check_connected()?;
        omq.check_projection()?;
        Ok(omq)
    }

    /// The vertex set `V(φ)`.
    pub fn vertices(&self) -> BTreeSet<Term> {
        let mut v = BTreeSet::new();
        for t in &self.phi {
            v.insert(t.subject.clone());
            v.insert(t.object.clone());
        }
        v
    }

    /// Ensures every projected attribute occurs in `φ` (`π ⊆ V(φ)`).
    fn check_projection(&self) -> Result<(), OmqError> {
        let vertices = self.vertices();
        for p in &self.pi {
            if !vertices.contains(&Term::Iri(p.clone())) {
                return Err(OmqError::ProjectionNotInPattern(p.as_str().to_owned()));
            }
        }
        Ok(())
    }

    /// Ensures `φ` defines one connected subgraph (Code 3's requirement).
    fn check_connected(&self) -> Result<(), OmqError> {
        let vertices = self.vertices();
        if vertices.len() <= 1 {
            return Ok(());
        }
        let mut adjacency: BTreeMap<&Term, Vec<&Term>> = BTreeMap::new();
        for t in &self.phi {
            adjacency.entry(&t.subject).or_default().push(&t.object);
            adjacency.entry(&t.object).or_default().push(&t.subject);
        }
        let start = vertices.iter().next().expect("non-empty");
        let mut seen: BTreeSet<&Term> = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for next in adjacency.get(v).into_iter().flatten() {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        if seen.len() != vertices.len() {
            // Count components for the error message.
            let mut components = 1;
            let mut covered: BTreeSet<&Term> = seen;
            for v in &vertices {
                if !covered.contains(v) {
                    components += 1;
                    let mut queue = VecDeque::from([v]);
                    covered.insert(v);
                    while let Some(x) = queue.pop_front() {
                        for next in adjacency.get(x).into_iter().flatten() {
                            if covered.insert(next) {
                                queue.push_back(next);
                            }
                        }
                    }
                }
            }
            return Err(OmqError::Disconnected(components));
        }
        Ok(())
    }

    /// Kahn topological sort of `φ` viewed as a directed graph. Returns
    /// `None` when the pattern is cyclic (Algorithm 2 rejects such queries).
    pub fn topological_sort(&self) -> Option<Vec<Term>> {
        let vertices = self.vertices();
        let mut in_degree: BTreeMap<&Term, usize> = vertices.iter().map(|v| (v, 0usize)).collect();
        let mut out_edges: BTreeMap<&Term, Vec<&Term>> = BTreeMap::new();
        for t in &self.phi {
            out_edges.entry(&t.subject).or_default().push(&t.object);
            *in_degree.get_mut(&t.object).expect("vertex present") += 1;
        }
        let mut queue: VecDeque<&Term> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&v, _)| v)
            .collect();
        let mut order = Vec::with_capacity(vertices.len());
        while let Some(v) = queue.pop_front() {
            order.push(v.clone());
            for next in out_edges.get(v).into_iter().flatten() {
                let d = in_degree.get_mut(next).expect("vertex present");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(next);
                }
            }
        }
        (order.len() == vertices.len()).then_some(order)
    }

    /// All triples of `φ` with the given subject.
    pub fn triples_from<'a>(&'a self, subject: &'a Term) -> impl Iterator<Item = &'a Triple> {
        self.phi.iter().filter(move |t| &t.subject == subject)
    }

    /// Adds a triple to `φ` if absent (query expansion, Algorithm 3 l. 12).
    pub fn extend_phi(&mut self, triple: Triple) -> bool {
        if self.phi.contains(&triple) {
            return false;
        }
        self.phi.push(triple);
        true
    }
}

impl std::fmt::Display for Omq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "π = {{")?;
        for (i, p) in self.pi.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(p.local_name())?;
        }
        writeln!(f, "}}")?;
        writeln!(f, "φ =")?;
        for t in &self.phi {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefixes() -> PrefixMap {
        let mut p = PrefixMap::with_common_vocabularies();
        p.insert("sup", "http://e/sup/");
        p.insert("G", crate::vocab::g::NS);
        p
    }

    const CODE8: &str = "
        SELECT ?x ?y
        FROM <http://www.essi.upc.edu/~snadal/BDIOntology/graphs/G>
        WHERE {
            VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
            sup:SoftwareApplication G:hasFeature sup:applicationId .
            sup:SoftwareApplication sup:hasMonitor sup:Monitor .
            sup:Monitor sup:generatesQoS sup:InfoMonitor .
            sup:InfoMonitor G:hasFeature sup:lagRatio
        }";

    #[test]
    fn parses_code8_into_pi_and_phi() {
        let omq = Omq::parse(CODE8, &prefixes()).unwrap();
        assert_eq!(omq.pi.len(), 2);
        assert_eq!(omq.pi[0].local_name(), "applicationId");
        assert_eq!(omq.phi.len(), 4);
        assert_eq!(omq.vertices().len(), 5);
    }

    #[test]
    fn topological_sort_of_code8_is_a_dag() {
        let omq = Omq::parse(CODE8, &prefixes()).unwrap();
        let order = omq.topological_sort().unwrap();
        assert_eq!(order.len(), 5);
        // SoftwareApplication precedes Monitor precedes InfoMonitor.
        let pos = |name: &str| {
            order
                .iter()
                .position(|t| matches!(t, Term::Iri(i) if i.local_name() == name))
                .unwrap()
        };
        assert!(pos("SoftwareApplication") < pos("Monitor"));
        assert!(pos("Monitor") < pos("InfoMonitor"));
    }

    #[test]
    fn cycles_have_no_topological_sort() {
        let a = Triple::new(
            Iri::new("http://e/A"),
            Iri::new("http://e/p"),
            Iri::new("http://e/B"),
        );
        let b = Triple::new(
            Iri::new("http://e/B"),
            Iri::new("http://e/q"),
            Iri::new("http://e/A"),
        );
        let omq = Omq::new(vec![], vec![a, b]);
        assert!(omq.topological_sort().is_none());
    }

    #[test]
    fn missing_values_is_rejected() {
        let q = "SELECT ?x WHERE { sup:A G:hasFeature sup:f . }";
        assert!(matches!(
            Omq::parse(q, &prefixes()),
            Err(OmqError::MissingValues)
        ));
    }

    #[test]
    fn variables_in_patterns_are_rejected() {
        let q = "SELECT ?x WHERE {
            VALUES (?x) { (sup:f) }
            ?c G:hasFeature sup:f .
        }";
        assert!(matches!(
            Omq::parse(q, &prefixes()),
            Err(OmqError::VariableInPattern(_))
        ));
    }

    #[test]
    fn disconnected_patterns_are_rejected() {
        let q = "SELECT ?x ?y WHERE {
            VALUES (?x ?y) { (sup:f sup:g) }
            sup:A G:hasFeature sup:f .
            sup:B G:hasFeature sup:g .
        }";
        assert!(matches!(
            Omq::parse(q, &prefixes()),
            Err(OmqError::Disconnected(2))
        ));
    }

    #[test]
    fn projection_must_occur_in_pattern() {
        let q = "SELECT ?x WHERE {
            VALUES (?x) { (sup:elsewhere) }
            sup:A G:hasFeature sup:f .
        }";
        assert!(matches!(
            Omq::parse(q, &prefixes()),
            Err(OmqError::ProjectionNotInPattern(_))
        ));
    }

    #[test]
    fn extend_phi_is_idempotent() {
        let mut omq = Omq::parse(CODE8, &prefixes()).unwrap();
        let t = omq.phi[0].clone();
        assert!(!omq.extend_phi(t));
        assert_eq!(omq.phi.len(), 4);
        let fresh = Triple::new(
            Iri::new("http://e/sup/Monitor"),
            Iri::new(crate::vocab::g::HAS_FEATURE.as_str()),
            Iri::new("http://e/sup/monitorId"),
        );
        assert!(omq.extend_phi(fresh));
        assert_eq!(omq.phi.len(), 5);
    }

    #[test]
    fn display_renders_pi_and_phi() {
        let omq = Omq::parse(CODE8, &prefixes()).unwrap();
        let text = omq.to_string();
        assert!(text.contains("applicationId"));
        assert!(text.contains("φ ="));
    }
}
