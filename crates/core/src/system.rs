//! The assembled BDI system: ontology + wrapper registry + query answering.
//!
//! This corresponds to the paper's Metadata Management System (MDM, §6.1):
//! the data steward registers releases; analysts pose OMQs which are
//! rewritten (Algorithms 2–5) and executed over the wrappers.
//!
//! Query answering is **shared-read**: [`BdiSystem::serve`] takes `&self`,
//! and concurrent callers do not convoy behind a single lock. The compiled
//! plan cache is sharded by key hash (each shard its own mutex, held only
//! for a lookup or insert), the validity stamp is checked lock-free through
//! an atomic tag, and each query that reuses scans checks a persistent
//! [`ExecContext`] out of a pool instead of sharing one context — readers
//! proceed against immutable shared state while mutation installs a new
//! validity epoch (the snapshot-read discipline of the NVRAM tree
//! literature; see PAPERS.md).

use crate::exec::{
    self, CompiledQuery, ExecError, ExecOptions, PlanNote, QueryAnswer, SourceFailure,
};
use crate::omq::{Omq, OmqError};
use crate::ontology::BdiOntology;
use crate::release::{self, Release, ReleaseError, ReleaseStats};
use crate::rewrite::{self, RewriteError, Rewriting};
use crate::vocab;
use bdi_relational::ExecContext;
use bdi_wrappers::WrapperRegistry;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Errors surfaced by the system facade.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SystemError {
    #[error(transparent)]
    Omq(#[from] OmqError),
    #[error(transparent)]
    Rewrite(#[from] RewriteError),
    #[error(transparent)]
    Exec(#[from] ExecError),
    #[error(transparent)]
    Release(#[from] ReleaseError),
}

/// One entry of the system's release log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseLogEntry {
    /// Monotonic sequence number (0-based registration order).
    pub seq: usize,
    pub wrapper: String,
    pub source: String,
}

/// Which schema versions a query should range over.
///
/// The rewriting always *finds* every wrapper that can answer; the scope
/// then filters the union — this is how the paper's "correctness in
/// historical queries" (§1) and most-recent-version queries coexist.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum VersionScope {
    /// All registered versions (the paper's default union semantics).
    #[default]
    All,
    /// Only each source's most recently registered wrapper.
    Latest,
    /// Only wrappers registered with `seq <= n` — the system as it existed
    /// after the `n`-th release (historical point-in-time queries).
    UpToRelease(usize),
    /// An explicit wrapper allow-list (by wrapper name).
    Only(BTreeSet<String>),
}

/// Upper bound on cached compiled queries across all shards; beyond it each
/// shard evicts its least-recently-hit entry.
const PLAN_CACHE_ENTRIES: usize = 64;

/// Shards of the plan-cache map. Each shard is its own mutex, held only for
/// the duration of one lookup or insert, so concurrent callers of distinct
/// queries proceed in parallel and callers of the *same* query contend only
/// with each other.
const PLAN_SHARDS: usize = 8;

/// Per-shard entry cap (the global cap split evenly).
const PLAN_SHARD_ENTRIES: usize = PLAN_CACHE_ENTRIES / PLAN_SHARDS;

/// Idle contexts the pool keeps warm; a context returning to a full pool is
/// retired instead (its peaks fold into the lifetime counters).
const CTX_POOL_IDLE: usize = 16;

/// What the compiled-plan cache (and the persistent contexts) are valid
/// against: the release log length (bumped by every
/// [`BdiSystem::register_release`]), the ontology store's monotonic
/// mutation stamp (catching direct [`BdiSystem::ontology_mut`] edits,
/// including count-neutral remove+insert pairs), and the registry's
/// **capability fingerprint** — a hash of every wrapper's
/// [`claims_filter`](bdi_wrappers::Wrapper::claims_filter) answers
/// ([`bdi_wrappers::WrapperRegistry::capabilities_fingerprint`]). Plans
/// depend on the ontology and wrapper *capabilities* (claims decide the
/// pushed-vs-residual filter split compiled into each plan) — never on
/// wrapper data — plus, fourth, the registry's **stats epoch**
/// ([`bdi_wrappers::WrapperRegistry::stats_epoch`], a digest of every
/// wrapper's `data_version`): since cost-based join ordering compiles
/// sketch-derived estimates *into* the plan shape, a wrapper-data mutation
/// must recompile plans even though their answers would still be correct
/// (only possibly slower).
///
/// The two halves invalidate differently ([`ExecCache::ensure_valid`]): a
/// change in the leading triple flushes the plans **and** retires the
/// pooled contexts, while a stats-epoch-only change flushes just the
/// plans — every cached scan is keyed by its wrapper's live
/// [`data_version`](bdi_wrappers::Wrapper::data_version) at scan time, so a
/// mutation makes the stale entry unreachable and the next query re-scans
/// just the mutated wrapper — sibling wrappers' (and sibling docstore
/// collections') cached scans survive. Stale entries age out through each
/// context's LRU caps, and the value-cap watermark retires a context whose
/// pool has outgrown its bound ([`BdiSystem::set_context_value_cap`] — the
/// context-retirement tier). This is what lets
/// [`ExecOptions::reuse_scans`] default on without one wrapper's appends
/// flushing every other wrapper's interned scans.
///
/// Changes to the leading triple only happen through `&mut self` methods,
/// so they can never race an in-flight `&self` query; a stats-epoch change
/// *can* race one (wrapper data mutates through shared handles), but that
/// race is performance-only — answers stay correct through the
/// `data_version` keying one level down.
type CacheValidity = (usize, u64, u64, u64);

/// Default watermark on each pooled context's interned-value pool; past it
/// the context is retired when checked back in (see
/// [`BdiSystem::set_context_value_cap`]).
const DEFAULT_CTX_VALUE_CAP: usize = 1 << 20;

/// Cache key: the full query identity — OMQ fingerprint, version scope and
/// execution options (engine, pushdown, filters all shape the plan).
type PlanKey = (Omq, VersionScope, ExecOptions);

const POISONED: &str = "plan cache poisoned";

/// The atomic tag a [`CacheValidity`] publishes: a mix-hash of the 4-tuple
/// (two of whose components are already u64 hashes, so this adds no new
/// collision class). `0` is reserved as the never-valid initial tag.
fn validity_tag(validity: &CacheValidity) -> u64 {
    let mut hasher = DefaultHasher::new();
    validity.hash(&mut hasher);
    hasher.finish().max(1)
}

fn shard_of(key: &PlanKey) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % PLAN_SHARDS
}

/// One shard of the compiled-plan map, with its own LRU clock.
#[derive(Default)]
struct PlanShard {
    tick: u64,
    plans: HashMap<PlanKey, (Arc<CompiledQuery>, u64)>,
}

/// The pool of persistent execution contexts. A query that reuses scans
/// checks a context out ([`ExecCache::checkout`]) and its guard checks it
/// back in on drop; sequential queries therefore keep hitting the same
/// warm context (interned scans, join build sides), while concurrent
/// queries each get their own and none serializes behind another's
/// execution.
struct CtxPool {
    /// Pool watermark handed to every fresh context (see
    /// [`BdiSystem::set_context_value_cap`]).
    value_cap: usize,
    /// Bumped by [`CtxPool::retire_all`]; a context checked out under an
    /// older generation is retired when it returns instead of rejoining the
    /// idle list.
    generation: u64,
    idle: Vec<Arc<ExecContext>>,
    /// Every non-retired context (idle or checked out), for stats
    /// aggregation. Dead weaks are pruned opportunistically.
    live: Vec<Weak<ExecContext>>,
    /// High-water marks carried across retired contexts, so
    /// [`BdiSystem::context_stats`] reports lifetime streaming peaks even
    /// after the watermark (or a release) retired the context they occurred
    /// in.
    retired_peak_values: usize,
    retired_peak_bytes: usize,
    /// Semi-join pass counters folded out of retired contexts, so
    /// [`BdiSystem::planner_stats`] reports lifetime totals.
    retired_semijoin_insets: u64,
    retired_semijoin_blooms: u64,
}

impl CtxPool {
    fn new(value_cap: usize) -> Self {
        Self {
            value_cap,
            generation: 0,
            idle: Vec::new(),
            live: Vec::new(),
            retired_peak_values: 0,
            retired_peak_bytes: 0,
            retired_semijoin_insets: 0,
            retired_semijoin_blooms: 0,
        }
    }

    /// Folds a retiring context's peaks and counters into the lifetime
    /// totals and forgets it.
    fn retire(&mut self, ctx: &Arc<ExecContext>) {
        self.retired_peak_values = self.retired_peak_values.max(ctx.pooled_values());
        self.retired_peak_bytes = self.retired_peak_bytes.max(ctx.peak_bytes());
        self.retired_semijoin_insets += ctx.semijoin_insets();
        self.retired_semijoin_blooms += ctx.semijoin_blooms();
        let ptr = Arc::as_ptr(ctx);
        self.live.retain(|weak| weak.as_ptr() != ptr);
    }

    /// Retires every idle context now and marks checked-out ones (if any)
    /// for retirement on return, by bumping the pool generation.
    fn retire_all(&mut self) {
        self.generation += 1;
        let idle = std::mem::take(&mut self.idle);
        for ctx in &idle {
            self.retire(ctx);
        }
    }

    fn checkout(&mut self) -> (Arc<ExecContext>, u64) {
        let ctx = self.idle.pop().unwrap_or_else(|| {
            let ctx = Arc::new(ExecContext::new().with_value_cap(self.value_cap));
            self.live.push(Arc::downgrade(&ctx));
            ctx
        });
        (ctx, self.generation)
    }

    /// Returns a context to the idle list — unless the pool moved on
    /// (generation bump, watermark change) or the context outgrew its
    /// value-cap watermark, in which case it is retired: queries in flight
    /// elsewhere keep their own contexts, and the next checkout starts
    /// fresh. This is the per-handle successor of the old shared-context
    /// `recycle_if_over_cap`.
    fn check_in(&mut self, ctx: Arc<ExecContext>, generation: u64) {
        let stale = generation != self.generation
            || ctx.value_cap() != Some(self.value_cap)
            || ctx.over_value_cap()
            || self.idle.len() >= CTX_POOL_IDLE;
        if stale {
            self.retire(&ctx);
        } else {
            self.idle.push(ctx);
        }
    }

    /// Upgraded handles to every live (non-retired) context.
    fn contexts(&mut self) -> Vec<Arc<ExecContext>> {
        self.live.retain(|weak| weak.strong_count() > 0);
        self.live.iter().filter_map(Weak::upgrade).collect()
    }
}

/// A checked-out pooled context; checks itself back in on drop.
struct PooledCtx<'a> {
    pool: &'a Mutex<CtxPool>,
    generation: u64,
    ctx: Option<Arc<ExecContext>>,
}

impl PooledCtx<'_> {
    fn get(&self) -> &ExecContext {
        self.ctx
            .as_deref()
            .expect("pooled context already returned")
    }
}

impl Drop for PooledCtx<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            if let Ok(mut pool) = self.pool.lock() {
                pool.check_in(ctx, self.generation);
            }
        }
    }
}

/// Cross-query compiled-plan cache + pooled persistent execution contexts.
///
/// Concurrency shape: the validity stamp is published as an atomic tag, so
/// the common case — nothing changed since the last query — is a single
/// atomic load with no lock. The plan map is sharded ([`PLAN_SHARDS`]
/// mutexes, each held only for one lookup/insert, never during rewriting,
/// compilation or execution), counters are atomics, and contexts come from
/// a pool ([`CtxPool`]) so no two in-flight queries share mutable state.
/// Flushes bump an epoch *before* clearing the shards; an insert re-checks
/// the epoch under its shard lock and drops the plan if a flush slipped in
/// while it compiled.
struct ExecCache {
    /// Tag of the validity the cache currently reflects (0 = never valid).
    validity_tag: AtomicU64,
    /// Bumped on every flush; plan inserts are stamped with the epoch read
    /// at lookup time and discarded if it moved.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fresh compiles by planning kind (cache hits don't recount).
    cost_based_plans: AtomicU64,
    syntactic_plans: AtomicU64,
    /// The full validity tuple behind the tag, for the core-vs-stats flush
    /// decision. Locked only while flushing.
    flush: Mutex<CacheValidity>,
    shards: [Mutex<PlanShard>; PLAN_SHARDS],
    pool: Mutex<CtxPool>,
}

impl Default for ExecCache {
    fn default() -> Self {
        Self {
            validity_tag: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cost_based_plans: AtomicU64::new(0),
            syntactic_plans: AtomicU64::new(0),
            // Never matches a real validity → first use flushes.
            flush: Mutex::new((usize::MAX, u64::MAX, u64::MAX, u64::MAX)),
            shards: std::array::from_fn(|_| Mutex::new(PlanShard::default())),
            pool: Mutex::new(CtxPool::new(DEFAULT_CTX_VALUE_CAP)),
        }
    }
}

impl std::fmt::Debug for ExecCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: usize = self
            .shards
            .iter()
            .map(|shard| shard.lock().expect(POISONED).plans.len())
            .sum();
        f.debug_struct("ExecCache")
            .field("entries", &entries)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecCache {
    /// Brings the cache up to `validity`. The fast path — the tag already
    /// matches — is one atomic load. On a mismatch, a change in the leading
    /// triple (release registered, ontology edited, wrapper capabilities
    /// moved) flushes the plans and retires the pooled contexts; a
    /// **stats-epoch-only** change — wrapper data mutated — flushes just
    /// the plans: cost-based join orders compiled from the old sketches may
    /// no longer be the cheapest, but each context's cached scans are keyed
    /// by live `data_version` one level down and stay valid for every
    /// unmutated sibling wrapper.
    fn ensure_valid(&self, validity: CacheValidity) {
        let tag = validity_tag(&validity);
        if self.validity_tag.load(Ordering::Acquire) == tag {
            return;
        }
        self.flush_to(validity, tag, false);
    }

    /// Unconditionally flushes plans and retires contexts — for `&mut self`
    /// mutations ([`BdiSystem::register_release`],
    /// [`BdiSystem::set_release_log`]) whose effect may not register in the
    /// validity tuple (e.g. a restored release log of the same length).
    fn invalidate(&self, validity: CacheValidity) {
        self.flush_to(validity, validity_tag(&validity), true);
    }

    fn flush_to(&self, validity: CacheValidity, tag: u64, force_retire: bool) {
        let mut current = self.flush.lock().expect(POISONED);
        if !force_retire && *current == validity {
            // Another caller installed this validity while we waited.
            self.validity_tag.store(tag, Ordering::Release);
            return;
        }
        let core_changed = force_retire
            || (current.0, current.1, current.2) != (validity.0, validity.1, validity.2);
        *current = validity;
        // Epoch first, then clear: an insert that read the old epoch either
        // lands before its shard is cleared (and is cleared with it) or
        // re-reads the bumped epoch under its shard lock and drops itself.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            shard.lock().expect(POISONED).plans.clear();
        }
        if core_changed {
            self.pool.lock().expect(POISONED).retire_all();
        }
        self.validity_tag.store(tag, Ordering::Release);
    }

    /// The cached compiled query for `key`, if present, plus the flush
    /// epoch the lookup ran under (to stamp a later insert). The caller
    /// must have called [`ExecCache::ensure_valid`] first.
    fn lookup(&self, key: &PlanKey) -> (Option<Arc<CompiledQuery>>, u64) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let hit = {
            let mut shard = self.shards[shard_of(key)].lock().expect(POISONED);
            shard.tick += 1;
            let tick = shard.tick;
            shard.plans.get_mut(key).map(|(compiled, last_used)| {
                *last_used = tick;
                compiled.clone()
            })
        };
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        (hit, epoch)
    }

    /// Inserts a freshly compiled query, evicting the shard's
    /// least-recently-hit entry at capacity. Racing compilers of the same
    /// key both insert; the loser's entry simply replaces an identical one.
    /// A flush that slipped in while compiling (epoch moved past
    /// `at_epoch`) discards the plan instead — it was compiled against a
    /// superseded system state.
    fn insert(&self, at_epoch: u64, key: PlanKey, compiled: Arc<CompiledQuery>) {
        let mut shard = self.shards[shard_of(&key)].lock().expect(POISONED);
        if self.epoch.load(Ordering::Acquire) != at_epoch {
            return;
        }
        if shard.plans.len() >= PLAN_SHARD_ENTRIES && !shard.plans.contains_key(&key) {
            if let Some(oldest) = shard
                .plans
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                shard.plans.remove(&oldest);
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.plans.insert(key, (compiled, tick));
    }

    /// Checks a persistent context out of the pool; the guard returns it on
    /// drop.
    fn checkout(&self) -> PooledCtx<'_> {
        let (ctx, generation) = self.pool.lock().expect(POISONED).checkout();
        PooledCtx {
            pool: &self.pool,
            generation,
            ctx: Some(ctx),
        }
    }

    /// Tallies a fresh compile's planning kinds (one count per walk) for
    /// [`BdiSystem::planner_stats`].
    fn record_compile(&self, notes: &[PlanNote]) {
        for note in notes {
            if note.cost_based {
                self.cost_based_plans.fetch_add(1, Ordering::Relaxed);
            } else {
                self.syntactic_plans.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Plan-cache observability (tests, benches, ops dashboards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
}

/// Planner observability (see [`BdiSystem::planner_stats`]): how walks were
/// planned and how often the semi-join pass fired, lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Walks whose join order was chosen by estimated cardinality
    /// (fresh compiles only — plan-cache hits don't recount).
    pub cost_based_plans: u64,
    /// Walks planned in syntactic join order (knob off, single unfiltered
    /// walk, or a wrapper without estimates).
    pub syntactic_plans: u64,
    /// Semi-join reductions shipped as exact IN-set filters, through the
    /// pooled persistent contexts (queries run with
    /// [`ExecOptions::reuse_scans`]` = false` execute against a private
    /// context and don't register).
    pub semijoin_insets: u64,
    /// Semi-join reductions shipped as Bloom filters (build side too large
    /// for an IN-set), same caveat.
    pub semijoin_blooms: u64,
}

/// Pooled-context size observability (see [`BdiSystem::context_stats`]).
/// Current figures sum over every live pooled context (idle or serving a
/// query right now); peaks fold retired contexts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextStats {
    /// Distinct values interned, summed across live pooled contexts.
    pub pooled_values: usize,
    /// Rough resident bytes: pools + cached interned scans + cached join
    /// build sides, summed across live pooled contexts.
    pub approx_bytes: usize,
    /// Cached interned-scan entries currently held (semi-join-reduced probe
    /// scans and cursor-only scans never appear here).
    pub cached_scans: usize,
    /// Batch-granular high-water mark of a single context's resident
    /// estimate, across retired contexts too — cursor-only streaming peaks
    /// register here even though nothing of them remains cached after the
    /// query.
    pub peak_bytes: usize,
    /// High-water mark of a single context's `pooled_values`, across
    /// retired contexts too.
    pub peak_pooled_values: usize,
}

/// A complete, queryable BDI deployment.
#[derive(Debug, Default)]
pub struct BdiSystem {
    ontology: BdiOntology,
    registry: WrapperRegistry,
    release_log: Vec<ReleaseLogEntry>,
    cache: ExecCache,
}

/// A query answer together with the rewriting that produced it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result relation (feature-named columns, π order).
    pub relation: bdi_relational::Relation,
    /// The rewriting artefacts (walks, expansion, candidates). Shared with
    /// the plan cache, so repeated queries don't deep-clone the walks.
    pub rewriting: Arc<Rewriting>,
    /// Rendered relational algebra per executed walk.
    pub walk_exprs: Vec<String>,
    /// Sources degraded around under
    /// [`crate::exec::SourceFailurePolicy::Degrade`], one report per failed
    /// wrapper. Non-empty means [`Answer::relation`] is a partial answer —
    /// exactly the surviving walks' rows (see
    /// [`crate::exec::QueryAnswer::source_failures`]).
    pub source_failures: Vec<SourceFailure>,
    /// One planner note per walk — chosen join order, whether it was
    /// cost-based, estimated vs. actual rows (see
    /// [`crate::exec::QueryAnswer::plan_notes`]).
    pub plan_notes: Vec<PlanNote>,
    /// Whether [`Answer::relation`] was cut down to the request's
    /// [`ExecOptions::max_rows`] row limit. `false` means the relation is
    /// the complete answer (of the surviving walks, under a degraded
    /// answer).
    pub truncated: bool,
}

/// One query, fully described: what to ask (SPARQL text or a built
/// [`Omq`]), which schema versions to range over, and how to execute it.
/// Built fluently and executed by [`BdiSystem::serve`]:
///
/// ```ignore
/// let answer = system.serve(
///     AnswerRequest::sparql("SELECT ?lagRatio WHERE { ... }")
///         .scope(VersionScope::Latest)
///         .deadline(Duration::from_millis(250))
///         .max_rows(1_000),
/// )?;
/// ```
///
/// This is the one entry point the legacy `answer*` convenience methods
/// (and the HTTP front end) all funnel through.
#[derive(Debug, Clone)]
pub struct AnswerRequest {
    query: QueryText,
    scope: VersionScope,
    options: ExecOptions,
}

#[derive(Debug, Clone)]
enum QueryText {
    /// SPARQL in the paper's Code 3 template, parsed against the system's
    /// registered prefixes at serve time.
    Sparql(String),
    Omq(Omq),
}

impl AnswerRequest {
    /// A request from SPARQL text (the paper's Code 3 template); parsing
    /// happens in [`BdiSystem::serve`], against the system's prefixes.
    pub fn sparql(query: impl Into<String>) -> Self {
        Self {
            query: QueryText::Sparql(query.into()),
            scope: VersionScope::All,
            options: ExecOptions::default(),
        }
    }

    /// A request from an already-built OMQ.
    pub fn omq(query: Omq) -> Self {
        Self {
            query: QueryText::Omq(query),
            scope: VersionScope::All,
            options: ExecOptions::default(),
        }
    }

    /// Restricts the answer to walks whose wrappers all fall inside
    /// `scope` (default: [`VersionScope::All`]).
    pub fn scope(mut self, scope: VersionScope) -> Self {
        self.scope = scope;
        self
    }

    /// Replaces the execution options wholesale (engine, pushdown,
    /// filters, …). Compose with the knob shortcuts below by calling this
    /// first.
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Per-query wall-clock budget, measured from when execution starts
    /// (sets [`ExecOptions::deadline`]).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(budget);
        self
    }

    /// Per-query row limit (sets [`ExecOptions::max_rows`]): answers larger
    /// than this come back truncated, flagged [`Answer::truncated`].
    pub fn max_rows(mut self, limit: usize) -> Self {
        self.options.max_rows = Some(limit);
        self
    }
}

impl BdiSystem {
    /// An empty system (metamodel preloaded, no sources).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (or cold-starts) a *durable* deployment persisted at `dir` —
    /// a convenience for [`crate::durable::DurableSystem::open`], which
    /// recovers the snapshot image, replays the WAL and restores every
    /// cache-validity counter bit-exact.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
    ) -> Result<crate::durable::DurableSystem, crate::durable::DurableError> {
        crate::durable::DurableSystem::open(dir)
    }

    /// Builds from an existing ontology and registry. Wrappers already in
    /// the registry are entered into the release log in name order.
    pub fn from_parts(ontology: BdiOntology, registry: WrapperRegistry) -> Self {
        let release_log = registry
            .iter()
            .enumerate()
            .map(|(seq, w)| ReleaseLogEntry {
                seq,
                wrapper: w.name().to_owned(),
                source: w.source().to_owned(),
            })
            .collect();
        Self {
            ontology,
            registry,
            release_log,
            cache: ExecCache::default(),
        }
    }

    /// The cache validity stamp for the system's current state: release
    /// seq, ontology mutation stamp, the registry's wrapper-capability
    /// fingerprint, and the registry's stats epoch (see [`CacheValidity`]
    /// for how the halves invalidate differently).
    fn cache_validity(&self) -> CacheValidity {
        (
            self.release_log.len(),
            self.ontology.store().mutation_count(),
            self.registry.capabilities_fingerprint(),
            self.registry.stats_epoch(),
        )
    }

    pub fn ontology(&self) -> &BdiOntology {
        &self.ontology
    }

    pub fn ontology_mut(&mut self) -> &mut BdiOntology {
        &mut self.ontology
    }

    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// Applies Algorithm 1 for a new release and registers its wrapper.
    /// Every registration bumps the release sequence, which invalidates the
    /// cross-query plan cache and retires the pooled execution contexts —
    /// the new wrapper changes what queries rewrite to, and its data was
    /// never scanned.
    pub fn register_release(&mut self, release: Release) -> Result<ReleaseStats, SystemError> {
        let stats = release::apply_release(&self.ontology, &mut self.registry, release)?;
        self.release_log.push(ReleaseLogEntry {
            seq: self.release_log.len(),
            wrapper: stats.wrapper.clone(),
            source: stats.source.clone(),
        });
        self.cache.invalidate(self.cache_validity());
        Ok(stats)
    }

    /// The registration-ordered release log.
    pub fn release_log(&self) -> &[ReleaseLogEntry] {
        &self.release_log
    }

    /// Replaces the release log — used when restoring a persisted
    /// deployment whose log must survive verbatim.
    pub fn set_release_log(&mut self, log: Vec<ReleaseLogEntry>) {
        self.release_log = log;
        self.cache.invalidate(self.cache_validity());
    }

    /// Plan-cache counters (entries reflect the current validity window;
    /// hits/misses accumulate over the system's lifetime).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let entries = self
            .cache
            .shards
            .iter()
            .map(|shard| shard.lock().expect(POISONED).plans.len())
            .sum();
        PlanCacheStats {
            entries,
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
        }
    }

    /// Sets the watermark on each pooled execution context's
    /// interned-value pool (default 2²⁰ distinct values). When a query
    /// leaves its context's pool above the watermark the context is retired
    /// at check-in and the next query starts against a fresh one, so a
    /// long-lived system's memory stays bounded however much distinct data
    /// flows through it. Takes effect immediately: idle contexts are
    /// retired now, checked-out ones when their query finishes (cached
    /// scans flush; compiled plans survive).
    pub fn set_context_value_cap(&self, cap: usize) {
        let mut pool = self.cache.pool.lock().expect(POISONED);
        pool.value_cap = cap.max(1);
        pool.retire_all();
    }

    /// Size diagnostics of the pooled execution contexts (pools +
    /// scan/build caches) — what [`BdiSystem::set_context_value_cap`]
    /// bounds — plus lifetime high-water marks that survive context
    /// retirement, so streaming (cursor-only) peaks are observable after
    /// the fact.
    pub fn context_stats(&self) -> ContextStats {
        let (contexts, retired_peak_values, retired_peak_bytes) = {
            let mut pool = self.cache.pool.lock().expect(POISONED);
            (
                pool.contexts(),
                pool.retired_peak_values,
                pool.retired_peak_bytes,
            )
        };
        let mut stats = ContextStats {
            pooled_values: 0,
            approx_bytes: 0,
            cached_scans: 0,
            peak_bytes: retired_peak_bytes,
            peak_pooled_values: retired_peak_values,
        };
        for ctx in &contexts {
            stats.pooled_values += ctx.pooled_values();
            stats.approx_bytes += ctx.memory_estimate();
            stats.cached_scans += ctx.cached_scans();
            stats.peak_bytes = stats.peak_bytes.max(ctx.peak_bytes());
            stats.peak_pooled_values = stats.peak_pooled_values.max(ctx.pooled_values());
        }
        stats
    }

    /// The wrapper names admitted by a scope.
    pub fn wrappers_in_scope(&self, scope: &VersionScope) -> BTreeSet<String> {
        match scope {
            VersionScope::All => self.release_log.iter().map(|e| e.wrapper.clone()).collect(),
            VersionScope::UpToRelease(n) => self
                .release_log
                .iter()
                .filter(|e| e.seq <= *n)
                .map(|e| e.wrapper.clone())
                .collect(),
            VersionScope::Latest => {
                let mut latest: std::collections::BTreeMap<&str, &str> =
                    std::collections::BTreeMap::new();
                for entry in &self.release_log {
                    latest.insert(&entry.source, &entry.wrapper); // later wins
                }
                latest.values().map(|w| (*w).to_owned()).collect()
            }
            VersionScope::Only(names) => names.clone(),
        }
    }

    /// Rewrites an OMQ without executing it.
    pub fn rewrite(&self, query: Omq) -> Result<Rewriting, SystemError> {
        Ok(rewrite::rewrite(&self.ontology, query)?)
    }

    /// Parses (Code 3 template), rewrites and executes a SPARQL OMQ.
    /// Convenience for [`BdiSystem::serve`] with an
    /// [`AnswerRequest::sparql`] request.
    pub fn answer(&self, sparql: &str) -> Result<Answer, SystemError> {
        self.serve(AnswerRequest::sparql(sparql))
    }

    /// Rewrites and executes an already-built OMQ over all versions.
    /// Convenience for [`BdiSystem::serve`] with an
    /// [`AnswerRequest::omq`] request.
    pub fn answer_omq(&self, omq: Omq) -> Result<Answer, SystemError> {
        self.serve(AnswerRequest::omq(omq))
    }

    /// Rewrites and executes an OMQ, keeping only walks whose wrappers all
    /// fall inside `scope` — e.g. `VersionScope::Latest` for
    /// most-recent-schema answers, or `UpToRelease(n)` for historical
    /// point-in-time answers. Convenience for [`BdiSystem::serve`].
    pub fn answer_scoped(&self, omq: Omq, scope: &VersionScope) -> Result<Answer, SystemError> {
        self.serve(AnswerRequest::omq(omq).scope(scope.clone()))
    }

    /// Rewrites and executes an OMQ with explicit [`ExecOptions`].
    /// Convenience for [`BdiSystem::serve`]; see there for caching and
    /// concurrency behaviour.
    pub fn answer_with(
        &self,
        omq: Omq,
        scope: &VersionScope,
        options: &ExecOptions,
    ) -> Result<Answer, SystemError> {
        self.serve(
            AnswerRequest::omq(omq)
                .scope(scope.clone())
                .options(options.clone()),
        )
    }

    /// Executes one [`AnswerRequest`] — the single entry point every query
    /// takes (the `answer*` conveniences and the HTTP front end all build a
    /// request and call this). Takes `&self` and is safe to call from many
    /// threads at once: concurrent callers share compiled plans through the
    /// sharded cache but never an execution lock.
    ///
    /// Repeated queries skip the rewriting-to-plan pipeline entirely: the
    /// compiled form is cached under `(OMQ, scope, options)` and stays
    /// valid until the next [`BdiSystem::register_release`] (or other
    /// visible metadata change). With [`ExecOptions::reuse_scans`] the
    /// query also checks a persistent [`ExecContext`] out of the system's
    /// pool, carrying interned wrapper scans and join build sides across
    /// queries within that validity window.
    pub fn serve(&self, request: AnswerRequest) -> Result<Answer, SystemError> {
        let AnswerRequest {
            query,
            scope,
            options,
        } = request;
        let omq = match query {
            QueryText::Sparql(text) => Omq::parse(&text, self.ontology.prefixes())?,
            QueryText::Omq(omq) => omq,
        };
        self.cache.ensure_valid(self.cache_validity());
        // Normalize the key to the plan-shaping options: `cache_plans` and
        // `reuse_scans` steer *this* method, and `semijoin_max_keys` /
        // `bloom_semijoins` / `scan_cache` / `deadline` /
        // `on_source_failure` / `max_rows` steer only the executor — never
        // the compiled plan — so queries differing only in them share one
        // cache entry (and each execution reads those knobs from the
        // caller's options, below). The rest stay in the key: `engine`,
        // `pushdown`, `parallel`, `filters`, and `cost_based_joins` all
        // shape the compiled plan. `cargo xtask analyze` enforces that
        // every ExecOptions field is classified one way or the other
        // (normalized-out fields are ledgered in
        // analysis/normalized_out.txt; in-key fields must be named here).
        let key_options = ExecOptions {
            cache_plans: true,
            reuse_scans: false,
            semijoin_max_keys: bdi_relational::plan::DEFAULT_SEMIJOIN_MAX_KEYS,
            bloom_semijoins: true,
            scan_cache: bdi_relational::ScanCache::Auto,
            deadline: None,
            on_source_failure: exec::SourceFailurePolicy::Fail,
            max_rows: None,
            ..options.clone()
        };
        let key = (omq, scope, key_options);
        let (cached, at_epoch) = if options.cache_plans {
            self.cache.lookup(&key)
        } else {
            (None, 0)
        };
        let compiled = match cached {
            Some(compiled) => compiled,
            None => {
                let (omq, scope, key_options) = &key;
                let mut rewriting = rewrite::rewrite(&self.ontology, omq.clone())?;
                if !matches!(scope, VersionScope::All) {
                    let allowed = self.wrappers_in_scope(scope);
                    rewriting.walks.retain(|walk| {
                        walk.wrappers().iter().all(|uri| {
                            vocab::wrapper_name_of(uri)
                                .map(|name| allowed.contains(name))
                                .unwrap_or(false)
                        })
                    });
                }
                let compiled = Arc::new(exec::compile_query(
                    &self.ontology,
                    &self.registry,
                    rewriting,
                    key_options,
                )?);
                self.cache.record_compile(compiled.plan_notes());
                if options.cache_plans {
                    self.cache.insert(at_epoch, key.clone(), compiled.clone());
                }
                compiled
            }
        };
        // A context from the pool (checked back in when `pooled` drops,
        // including on error), or none: `reuse_scans: false` executes
        // against a fresh private context inside the executor.
        let pooled = options.reuse_scans.then(|| self.cache.checkout());
        let QueryAnswer {
            relation,
            walk_exprs,
            source_failures,
            plan_notes,
            truncated,
        } = exec::execute_compiled_with(
            &self.ontology,
            &self.registry,
            &compiled,
            pooled.as_ref().map(|p| p.get()),
            options.runtime(),
        )?;
        drop(pooled);
        Ok(Answer {
            relation,
            rewriting: compiled.rewriting.clone(),
            walk_exprs,
            source_failures,
            plan_notes,
            truncated,
        })
    }

    /// Planner observability: walks compiled cost-based vs. syntactically
    /// (lifetime, fresh compiles only) and semi-join reductions shipped as
    /// IN-sets vs. Bloom filters through the pooled persistent contexts
    /// (retired contexts' counts are folded in; `reuse_scans: false`
    /// queries run on private contexts and don't register). Per-query
    /// detail — the chosen join order and estimated-vs-actual rows — rides
    /// on each answer as [`Answer::plan_notes`].
    pub fn planner_stats(&self) -> PlannerStats {
        let (contexts, retired_insets, retired_blooms) = {
            let mut pool = self.cache.pool.lock().expect(POISONED);
            (
                pool.contexts(),
                pool.retired_semijoin_insets,
                pool.retired_semijoin_blooms,
            )
        };
        let mut stats = PlannerStats {
            cost_based_plans: self.cache.cost_based_plans.load(Ordering::Relaxed),
            syntactic_plans: self.cache.syntactic_plans.load(Ordering::Relaxed),
            semijoin_insets: retired_insets,
            semijoin_blooms: retired_blooms,
        };
        for ctx in &contexts {
            stats.semijoin_insets += ctx.semijoin_insets();
            stats.semijoin_blooms += ctx.semijoin_blooms();
        }
        stats
    }

    /// Aggregated retry/fault counters across every registered wrapper that
    /// reports them (today the fault-tolerant
    /// [`bdi_wrappers::RemoteWrapper`]; wrappers without a retry loop
    /// contribute nothing) — the system-level observability for the
    /// fault-tolerance layer, alongside [`BdiSystem::context_stats`].
    pub fn retry_stats(&self) -> bdi_wrappers::RetryStats {
        self.registry.retry_stats()
    }
}
