//! The assembled BDI system: ontology + wrapper registry + query answering.
//!
//! This corresponds to the paper's Metadata Management System (MDM, §6.1):
//! the data steward registers releases; analysts pose OMQs which are
//! rewritten (Algorithms 2–5) and executed over the wrappers.

use crate::exec::{
    self, CompiledQuery, ExecError, ExecOptions, PlanNote, QueryAnswer, SourceFailure,
};
use crate::omq::{Omq, OmqError};
use crate::ontology::BdiOntology;
use crate::release::{self, Release, ReleaseError, ReleaseStats};
use crate::rewrite::{self, RewriteError, Rewriting};
use crate::vocab;
use bdi_relational::ExecContext;
use bdi_wrappers::WrapperRegistry;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Errors surfaced by the system facade.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SystemError {
    #[error(transparent)]
    Omq(#[from] OmqError),
    #[error(transparent)]
    Rewrite(#[from] RewriteError),
    #[error(transparent)]
    Exec(#[from] ExecError),
    #[error(transparent)]
    Release(#[from] ReleaseError),
}

/// One entry of the system's release log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseLogEntry {
    /// Monotonic sequence number (0-based registration order).
    pub seq: usize,
    pub wrapper: String,
    pub source: String,
}

/// Which schema versions a query should range over.
///
/// The rewriting always *finds* every wrapper that can answer; the scope
/// then filters the union — this is how the paper's "correctness in
/// historical queries" (§1) and most-recent-version queries coexist.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum VersionScope {
    /// All registered versions (the paper's default union semantics).
    #[default]
    All,
    /// Only each source's most recently registered wrapper.
    Latest,
    /// Only wrappers registered with `seq <= n` — the system as it existed
    /// after the `n`-th release (historical point-in-time queries).
    UpToRelease(usize),
    /// An explicit wrapper allow-list (by wrapper name).
    Only(BTreeSet<String>),
}

/// Upper bound on cached compiled queries; beyond it the least-recently-hit
/// entry is evicted.
const PLAN_CACHE_ENTRIES: usize = 64;

/// What the compiled-plan cache (and the persistent context) is valid
/// against: the release log length (bumped by every
/// [`BdiSystem::register_release`]), the ontology store's monotonic
/// mutation stamp (catching direct [`BdiSystem::ontology_mut`] edits,
/// including count-neutral remove+insert pairs), and the registry's
/// **capability fingerprint** — a hash of every wrapper's
/// [`claims_filter`](bdi_wrappers::Wrapper::claims_filter) answers
/// ([`bdi_wrappers::WrapperRegistry::capabilities_fingerprint`]). Plans
/// depend on the ontology and wrapper *capabilities* (claims decide the
/// pushed-vs-residual filter split compiled into each plan) — never on
/// wrapper data — plus, fourth, the registry's **stats epoch**
/// ([`bdi_wrappers::WrapperRegistry::stats_epoch`], a digest of every
/// wrapper's `data_version`): since cost-based join ordering compiles
/// sketch-derived estimates *into* the plan shape, a wrapper-data mutation
/// must recompile plans even though their answers would still be correct
/// (only possibly slower).
///
/// The two halves invalidate differently ([`ExecCacheState::revalidate`]):
/// a change in the leading triple flushes the plans **and** retires the
/// persistent context, while a stats-epoch-only change flushes just the
/// plans — every cached scan is keyed by its wrapper's live
/// [`data_version`](bdi_wrappers::Wrapper::data_version) at scan time, so a
/// mutation makes the stale entry unreachable and the next query re-scans
/// just the mutated wrapper — sibling wrappers' (and sibling docstore
/// collections') cached scans survive. Stale entries age out through the
/// context's LRU caps, and the value-cap watermark retires a context whose
/// pool has outgrown its bound ([`BdiSystem::set_context_value_cap`] — the
/// context-retirement tier). This is what lets
/// [`ExecOptions::reuse_scans`] default on without one wrapper's appends
/// flushing every other wrapper's interned scans.
type CacheValidity = (usize, u64, u64, u64);

/// Default watermark on the persistent context's interned-value pool; past
/// it the context is retired after the current query (see
/// [`BdiSystem::set_context_value_cap`]).
const DEFAULT_CTX_VALUE_CAP: usize = 1 << 20;

/// Cache key: the full query identity — OMQ fingerprint, version scope and
/// execution options (engine, pushdown, filters all shape the plan).
type PlanKey = (Omq, VersionScope, ExecOptions);

/// Cross-query compiled-plan cache + persistent execution context. Interior
/// mutability (a mutex held only for lookups/inserts, never during
/// execution) keeps [`BdiSystem::answer_with`] callable through `&self`.
struct ExecCache {
    inner: Mutex<ExecCacheState>,
}

struct ExecCacheState {
    validity: CacheValidity,
    tick: u64,
    hits: u64,
    misses: u64,
    plans: HashMap<PlanKey, (Arc<CompiledQuery>, u64)>,
    /// Pool watermark handed to every fresh context (see
    /// [`BdiSystem::set_context_value_cap`]).
    value_cap: usize,
    ctx: Arc<ExecContext>,
    /// High-water marks carried across retired contexts, so
    /// [`BdiSystem::context_stats`] reports lifetime streaming peaks even
    /// after the watermark (or a release) replaced the context they
    /// occurred in.
    retired_peak_values: usize,
    retired_peak_bytes: usize,
    /// Semi-join pass counters folded out of retired contexts, so
    /// [`BdiSystem::planner_stats`] reports lifetime totals.
    retired_semijoin_insets: u64,
    retired_semijoin_blooms: u64,
    /// Fresh compiles by planning kind (cache hits don't recount).
    cost_based_plans: u64,
    syntactic_plans: u64,
}

impl ExecCacheState {
    /// Replaces the shared context with a fresh one, folding the retiring
    /// context's peaks into the lifetime high-water marks.
    fn replace_ctx(&mut self) {
        self.retired_peak_values = self.retired_peak_values.max(self.ctx.pooled_values());
        self.retired_peak_bytes = self.retired_peak_bytes.max(self.ctx.peak_bytes());
        self.retired_semijoin_insets += self.ctx.semijoin_insets();
        self.retired_semijoin_blooms += self.ctx.semijoin_blooms();
        self.ctx = Arc::new(ExecContext::new().with_value_cap(self.value_cap));
    }

    /// Brings the cache up to `validity`. A change in the leading triple
    /// (release registered, ontology edited, wrapper capabilities moved)
    /// flushes the plans and retires the context. A **stats-epoch-only**
    /// change — wrapper data mutated — flushes just the plans: cost-based
    /// join orders compiled from the old sketches may no longer be the
    /// cheapest, but the context's cached scans are keyed by live
    /// `data_version` one level down and stay valid for every unmutated
    /// sibling wrapper.
    fn revalidate(&mut self, validity: CacheValidity) {
        if self.validity == validity {
            return;
        }
        let core_changed = (self.validity.0, self.validity.1, self.validity.2)
            != (validity.0, validity.1, validity.2);
        self.validity = validity;
        self.plans.clear();
        if core_changed {
            self.replace_ctx();
        }
    }
}

impl Default for ExecCache {
    fn default() -> Self {
        Self {
            inner: Mutex::new(ExecCacheState {
                // Never matches → first use invalidates.
                validity: (usize::MAX, u64::MAX, u64::MAX, u64::MAX),
                tick: 0,
                hits: 0,
                misses: 0,
                plans: HashMap::new(),
                value_cap: DEFAULT_CTX_VALUE_CAP,
                ctx: Arc::new(ExecContext::new().with_value_cap(DEFAULT_CTX_VALUE_CAP)),
                retired_peak_values: 0,
                retired_peak_bytes: 0,
                retired_semijoin_insets: 0,
                retired_semijoin_blooms: 0,
                cost_based_plans: 0,
                syntactic_plans: 0,
            }),
        }
    }
}

impl std::fmt::Debug for ExecCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock().expect("plan cache poisoned");
        f.debug_struct("ExecCache")
            .field("entries", &state.plans.len())
            .field("hits", &state.hits)
            .field("misses", &state.misses)
            .finish()
    }
}

impl ExecCache {
    /// Drops every cached plan and the shared context (release registered,
    /// or ontology visibly changed).
    fn invalidate(&self, validity: CacheValidity) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.validity = validity;
        state.plans.clear();
        state.replace_ctx();
    }

    /// Retires the shared context when its value pool has outgrown the
    /// watermark — queries in flight keep the old context alive through
    /// their `Arc` until they finish; new queries intern into the fresh
    /// pool and re-scan on demand.
    fn recycle_if_over_cap(&self) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        if state.ctx.over_value_cap() {
            state.replace_ctx();
        }
    }

    /// The cached compiled query for `key`, if still valid, plus the shared
    /// context. A stale validity stamp flushes everything first.
    fn lookup(
        &self,
        validity: CacheValidity,
        key: &PlanKey,
    ) -> (Option<Arc<CompiledQuery>>, Arc<ExecContext>) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.revalidate(validity);
        state.tick += 1;
        let tick = state.tick;
        let hit = match state.plans.get_mut(key) {
            Some((compiled, last_used)) => {
                *last_used = tick;
                Some(compiled.clone())
            }
            None => None,
        };
        if hit.is_some() {
            state.hits += 1;
        } else {
            state.misses += 1;
        }
        (hit, state.ctx.clone())
    }

    /// The shared context alone (revalidating first), without touching the
    /// hit/miss counters — for `cache_plans: false` queries.
    fn context(&self, validity: CacheValidity) -> Arc<ExecContext> {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.revalidate(validity);
        state.ctx.clone()
    }

    /// Inserts a freshly compiled query, evicting the least-recently-hit
    /// entry at capacity. Racing compilers of the same key both insert; the
    /// loser's entry simply replaces an identical one.
    fn insert(&self, validity: CacheValidity, key: PlanKey, compiled: Arc<CompiledQuery>) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        // A release, ontology edit or capability change slipping in while
        // compiling must discard the plan (data mutations don't appear in
        // the validity at all — plans are data-independent).
        if state.validity != validity {
            return;
        }
        if state.plans.len() >= PLAN_CACHE_ENTRIES && !state.plans.contains_key(&key) {
            if let Some(oldest) = state
                .plans
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                state.plans.remove(&oldest);
            }
        }
        state.tick += 1;
        let tick = state.tick;
        state.plans.insert(key, (compiled, tick));
    }

    /// Tallies a fresh compile's planning kinds (one count per walk) for
    /// [`BdiSystem::planner_stats`].
    fn record_compile(&self, notes: &[PlanNote]) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        for note in notes {
            if note.cost_based {
                state.cost_based_plans += 1;
            } else {
                state.syntactic_plans += 1;
            }
        }
    }
}

/// Plan-cache observability (tests, benches, ops dashboards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
}

/// Planner observability (see [`BdiSystem::planner_stats`]): how walks were
/// planned and how often the semi-join pass fired, lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Walks whose join order was chosen by estimated cardinality
    /// (fresh compiles only — plan-cache hits don't recount).
    pub cost_based_plans: u64,
    /// Walks planned in syntactic join order (knob off, single unfiltered
    /// walk, or a wrapper without estimates).
    pub syntactic_plans: u64,
    /// Semi-join reductions shipped as exact IN-set filters, through the
    /// persistent context (queries run with
    /// [`ExecOptions::reuse_scans`]` = false` execute against a private
    /// context and don't register).
    pub semijoin_insets: u64,
    /// Semi-join reductions shipped as Bloom filters (build side too large
    /// for an IN-set), same caveat.
    pub semijoin_blooms: u64,
}

/// Persistent-context size observability (see
/// [`BdiSystem::context_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextStats {
    /// Distinct values interned into the shared pool.
    pub pooled_values: usize,
    /// Rough resident bytes: pool + cached interned scans + cached join
    /// build sides.
    pub approx_bytes: usize,
    /// Cached interned-scan entries currently held (semi-join-reduced probe
    /// scans and cursor-only scans never appear here).
    pub cached_scans: usize,
    /// Batch-granular high-water mark of the resident estimate, across
    /// retired contexts too — cursor-only streaming peaks register here
    /// even though nothing of them remains cached after the query.
    pub peak_bytes: usize,
    /// High-water mark of `pooled_values`, across retired contexts too.
    pub peak_pooled_values: usize,
}

/// A complete, queryable BDI deployment.
#[derive(Debug, Default)]
pub struct BdiSystem {
    ontology: BdiOntology,
    registry: WrapperRegistry,
    release_log: Vec<ReleaseLogEntry>,
    cache: ExecCache,
}

/// A query answer together with the rewriting that produced it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result relation (feature-named columns, π order).
    pub relation: bdi_relational::Relation,
    /// The rewriting artefacts (walks, expansion, candidates). Shared with
    /// the plan cache, so repeated queries don't deep-clone the walks.
    pub rewriting: Arc<Rewriting>,
    /// Rendered relational algebra per executed walk.
    pub walk_exprs: Vec<String>,
    /// Sources degraded around under
    /// [`crate::exec::SourceFailurePolicy::Degrade`], one report per failed
    /// wrapper. Non-empty means [`Answer::relation`] is a partial answer —
    /// exactly the surviving walks' rows (see
    /// [`crate::exec::QueryAnswer::source_failures`]).
    pub source_failures: Vec<SourceFailure>,
    /// One planner note per walk — chosen join order, whether it was
    /// cost-based, estimated vs. actual rows (see
    /// [`crate::exec::QueryAnswer::plan_notes`]).
    pub plan_notes: Vec<PlanNote>,
}

impl BdiSystem {
    /// An empty system (metamodel preloaded, no sources).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an existing ontology and registry. Wrappers already in
    /// the registry are entered into the release log in name order.
    pub fn from_parts(ontology: BdiOntology, registry: WrapperRegistry) -> Self {
        let release_log = registry
            .iter()
            .enumerate()
            .map(|(seq, w)| ReleaseLogEntry {
                seq,
                wrapper: w.name().to_owned(),
                source: w.source().to_owned(),
            })
            .collect();
        Self {
            ontology,
            registry,
            release_log,
            cache: ExecCache::default(),
        }
    }

    /// The cache validity stamp for the system's current state: release
    /// seq, ontology mutation stamp, the registry's wrapper-capability
    /// fingerprint, and the registry's stats epoch (see [`CacheValidity`]
    /// for how the halves invalidate differently).
    fn cache_validity(&self) -> CacheValidity {
        (
            self.release_log.len(),
            self.ontology.store().mutation_count(),
            self.registry.capabilities_fingerprint(),
            self.registry.stats_epoch(),
        )
    }

    pub fn ontology(&self) -> &BdiOntology {
        &self.ontology
    }

    pub fn ontology_mut(&mut self) -> &mut BdiOntology {
        &mut self.ontology
    }

    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// Applies Algorithm 1 for a new release and registers its wrapper.
    /// Every registration bumps the release sequence, which invalidates the
    /// cross-query plan cache and the persistent execution context — the
    /// new wrapper changes what queries rewrite to, and its data was never
    /// scanned.
    pub fn register_release(&mut self, release: Release) -> Result<ReleaseStats, SystemError> {
        let stats = release::apply_release(&self.ontology, &mut self.registry, release)?;
        self.release_log.push(ReleaseLogEntry {
            seq: self.release_log.len(),
            wrapper: stats.wrapper.clone(),
            source: stats.source.clone(),
        });
        self.cache.invalidate(self.cache_validity());
        Ok(stats)
    }

    /// The registration-ordered release log.
    pub fn release_log(&self) -> &[ReleaseLogEntry] {
        &self.release_log
    }

    /// Replaces the release log — used when restoring a persisted
    /// deployment whose log must survive verbatim.
    pub fn set_release_log(&mut self, log: Vec<ReleaseLogEntry>) {
        self.release_log = log;
        self.cache.invalidate(self.cache_validity());
    }

    /// Plan-cache counters (entries reflect the current validity window;
    /// hits/misses accumulate over the system's lifetime).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let state = self.cache.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            entries: state.plans.len(),
            hits: state.hits,
            misses: state.misses,
        }
    }

    /// Sets the watermark on the persistent execution context's
    /// interned-value pool (default 2²⁰ distinct values). When a query
    /// leaves the pool above the watermark the context is retired and the
    /// next query starts against a fresh one, so a long-lived system's
    /// memory stays bounded however much distinct data flows through it.
    /// Takes effect immediately: the current context is replaced (cached
    /// scans flush; compiled plans survive).
    pub fn set_context_value_cap(&self, cap: usize) {
        let mut state = self.cache.inner.lock().expect("plan cache poisoned");
        state.value_cap = cap.max(1);
        state.replace_ctx();
    }

    /// Size diagnostics of the persistent execution context (pool +
    /// scan/build caches) — what [`BdiSystem::set_context_value_cap`]
    /// bounds — plus lifetime high-water marks that survive context
    /// retirement, so streaming (cursor-only) peaks are observable after
    /// the fact.
    pub fn context_stats(&self) -> ContextStats {
        let (ctx, retired_peak_values, retired_peak_bytes) = {
            let state = self.cache.inner.lock().expect("plan cache poisoned");
            (
                state.ctx.clone(),
                state.retired_peak_values,
                state.retired_peak_bytes,
            )
        };
        ContextStats {
            pooled_values: ctx.pooled_values(),
            approx_bytes: ctx.memory_estimate(),
            cached_scans: ctx.cached_scans(),
            peak_bytes: retired_peak_bytes.max(ctx.peak_bytes()),
            peak_pooled_values: retired_peak_values.max(ctx.pooled_values()),
        }
    }

    /// The wrapper names admitted by a scope.
    pub fn wrappers_in_scope(&self, scope: &VersionScope) -> BTreeSet<String> {
        match scope {
            VersionScope::All => self.release_log.iter().map(|e| e.wrapper.clone()).collect(),
            VersionScope::UpToRelease(n) => self
                .release_log
                .iter()
                .filter(|e| e.seq <= *n)
                .map(|e| e.wrapper.clone())
                .collect(),
            VersionScope::Latest => {
                let mut latest: std::collections::BTreeMap<&str, &str> =
                    std::collections::BTreeMap::new();
                for entry in &self.release_log {
                    latest.insert(&entry.source, &entry.wrapper); // later wins
                }
                latest.values().map(|w| (*w).to_owned()).collect()
            }
            VersionScope::Only(names) => names.clone(),
        }
    }

    /// Rewrites an OMQ without executing it.
    pub fn rewrite(&self, query: Omq) -> Result<Rewriting, SystemError> {
        Ok(rewrite::rewrite(&self.ontology, query)?)
    }

    /// Parses (Code 3 template), rewrites and executes a SPARQL OMQ.
    pub fn answer(&self, sparql: &str) -> Result<Answer, SystemError> {
        let omq = Omq::parse(sparql, self.ontology.prefixes())?;
        self.answer_omq(omq)
    }

    /// Rewrites and executes an already-built OMQ over all versions.
    pub fn answer_omq(&self, omq: Omq) -> Result<Answer, SystemError> {
        self.answer_scoped(omq, &VersionScope::All)
    }

    /// Rewrites and executes an OMQ, keeping only walks whose wrappers all
    /// fall inside `scope` — e.g. `VersionScope::Latest` for
    /// most-recent-schema answers, or `UpToRelease(n)` for historical
    /// point-in-time answers.
    pub fn answer_scoped(&self, omq: Omq, scope: &VersionScope) -> Result<Answer, SystemError> {
        self.answer_with(omq, scope, &ExecOptions::default())
    }

    /// Rewrites and executes an OMQ with explicit [`ExecOptions`]: engine
    /// selection (streaming plans vs the eager reference), projection
    /// pushdown, parallel walk execution, and pushed-down predicate
    /// filters. Scope filtering is identical to
    /// [`BdiSystem::answer_scoped`].
    ///
    /// Repeated queries skip the rewriting-to-plan pipeline entirely: the
    /// compiled form is cached under `(OMQ, scope, options)` and stays
    /// valid until the next [`BdiSystem::register_release`]. With
    /// [`ExecOptions::reuse_scans`] the persistent [`ExecContext`] also
    /// carries interned wrapper scans and join build sides across queries
    /// within that validity window.
    pub fn answer_with(
        &self,
        omq: Omq,
        scope: &VersionScope,
        options: &ExecOptions,
    ) -> Result<Answer, SystemError> {
        let validity = self.cache_validity();
        // Normalize the key to the plan-shaping options: `cache_plans` and
        // `reuse_scans` steer *this* method, and `semijoin_max_keys` /
        // `bloom_semijoins` / `scan_cache` / `deadline` /
        // `on_source_failure` steer only the executor — never the compiled
        // plan — so queries differing only in them share one cache entry
        // (and each execution reads those knobs from the caller's options,
        // below). `cost_based_joins` is *not* normalized: it shapes the
        // compiled join tree.
        let key_options = ExecOptions {
            cache_plans: true,
            reuse_scans: false,
            semijoin_max_keys: bdi_relational::plan::DEFAULT_SEMIJOIN_MAX_KEYS,
            bloom_semijoins: true,
            scan_cache: bdi_relational::ScanCache::Auto,
            deadline: None,
            on_source_failure: exec::SourceFailurePolicy::Fail,
            ..options.clone()
        };
        let key = (omq, scope.clone(), key_options);
        let (cached, ctx) = if options.cache_plans {
            self.cache.lookup(validity, &key)
        } else {
            (None, self.cache.context(validity))
        };
        let compiled = match cached {
            Some(compiled) => compiled,
            None => {
                let (omq, scope, key_options) = &key;
                let mut rewriting = rewrite::rewrite(&self.ontology, omq.clone())?;
                if !matches!(scope, VersionScope::All) {
                    let allowed = self.wrappers_in_scope(scope);
                    rewriting.walks.retain(|walk| {
                        walk.wrappers().iter().all(|uri| {
                            vocab::wrapper_name_of(uri)
                                .map(|name| allowed.contains(name))
                                .unwrap_or(false)
                        })
                    });
                }
                let compiled = Arc::new(exec::compile_query(
                    &self.ontology,
                    &self.registry,
                    rewriting,
                    key_options,
                )?);
                self.cache.record_compile(compiled.plan_notes());
                if options.cache_plans {
                    self.cache.insert(validity, key.clone(), compiled.clone());
                }
                compiled
            }
        };
        let shared_ctx = options.reuse_scans.then_some(ctx);
        let QueryAnswer {
            relation,
            walk_exprs,
            source_failures,
            plan_notes,
        } = exec::execute_compiled_with(
            &self.ontology,
            &self.registry,
            &compiled,
            shared_ctx.as_deref(),
            options.policy(),
            options.on_source_failure,
        )?;
        // Bound the long-lived pool: if this query pushed it past the
        // watermark, retire the context before the next query reuses it.
        if options.reuse_scans {
            self.cache.recycle_if_over_cap();
        }
        Ok(Answer {
            relation,
            rewriting: compiled.rewriting.clone(),
            walk_exprs,
            source_failures,
            plan_notes,
        })
    }

    /// Planner observability: walks compiled cost-based vs. syntactically
    /// (lifetime, fresh compiles only) and semi-join reductions shipped as
    /// IN-sets vs. Bloom filters through the persistent context (retired
    /// contexts' counts are folded in; `reuse_scans: false` queries run on
    /// private contexts and don't register). Per-query detail — the chosen
    /// join order and estimated-vs-actual rows — rides on each answer as
    /// [`Answer::plan_notes`].
    pub fn planner_stats(&self) -> PlannerStats {
        let state = self.cache.inner.lock().expect("plan cache poisoned");
        PlannerStats {
            cost_based_plans: state.cost_based_plans,
            syntactic_plans: state.syntactic_plans,
            semijoin_insets: state.retired_semijoin_insets + state.ctx.semijoin_insets(),
            semijoin_blooms: state.retired_semijoin_blooms + state.ctx.semijoin_blooms(),
        }
    }

    /// Aggregated retry/fault counters across every registered wrapper that
    /// reports them (today the fault-tolerant
    /// [`bdi_wrappers::RemoteWrapper`]; wrappers without a retry loop
    /// contribute nothing) — the system-level observability for the
    /// fault-tolerance layer, alongside [`BdiSystem::context_stats`].
    pub fn retry_stats(&self) -> bdi_wrappers::RetryStats {
        self.registry.retry_stats()
    }
}
