//! The assembled BDI system: ontology + wrapper registry + query answering.
//!
//! This corresponds to the paper's Metadata Management System (MDM, §6.1):
//! the data steward registers releases; analysts pose OMQs which are
//! rewritten (Algorithms 2–5) and executed over the wrappers.

use crate::exec::{self, ExecError, ExecOptions, QueryAnswer};
use crate::omq::{Omq, OmqError};
use crate::ontology::BdiOntology;
use crate::release::{self, Release, ReleaseError, ReleaseStats};
use crate::rewrite::{self, RewriteError, Rewriting};
use crate::vocab;
use bdi_wrappers::WrapperRegistry;
use std::collections::BTreeSet;

/// Errors surfaced by the system facade.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SystemError {
    #[error(transparent)]
    Omq(#[from] OmqError),
    #[error(transparent)]
    Rewrite(#[from] RewriteError),
    #[error(transparent)]
    Exec(#[from] ExecError),
    #[error(transparent)]
    Release(#[from] ReleaseError),
}

/// One entry of the system's release log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseLogEntry {
    /// Monotonic sequence number (0-based registration order).
    pub seq: usize,
    pub wrapper: String,
    pub source: String,
}

/// Which schema versions a query should range over.
///
/// The rewriting always *finds* every wrapper that can answer; the scope
/// then filters the union — this is how the paper's "correctness in
/// historical queries" (§1) and most-recent-version queries coexist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum VersionScope {
    /// All registered versions (the paper's default union semantics).
    #[default]
    All,
    /// Only each source's most recently registered wrapper.
    Latest,
    /// Only wrappers registered with `seq <= n` — the system as it existed
    /// after the `n`-th release (historical point-in-time queries).
    UpToRelease(usize),
    /// An explicit wrapper allow-list (by wrapper name).
    Only(BTreeSet<String>),
}

/// A complete, queryable BDI deployment.
#[derive(Debug, Default)]
pub struct BdiSystem {
    ontology: BdiOntology,
    registry: WrapperRegistry,
    release_log: Vec<ReleaseLogEntry>,
}

/// A query answer together with the rewriting that produced it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result relation (feature-named columns, π order).
    pub relation: bdi_relational::Relation,
    /// The rewriting artefacts (walks, expansion, candidates).
    pub rewriting: Rewriting,
    /// Rendered relational algebra per executed walk.
    pub walk_exprs: Vec<String>,
}

impl BdiSystem {
    /// An empty system (metamodel preloaded, no sources).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an existing ontology and registry. Wrappers already in
    /// the registry are entered into the release log in name order.
    pub fn from_parts(ontology: BdiOntology, registry: WrapperRegistry) -> Self {
        let release_log = registry
            .iter()
            .enumerate()
            .map(|(seq, w)| ReleaseLogEntry {
                seq,
                wrapper: w.name().to_owned(),
                source: w.source().to_owned(),
            })
            .collect();
        Self {
            ontology,
            registry,
            release_log,
        }
    }

    pub fn ontology(&self) -> &BdiOntology {
        &self.ontology
    }

    pub fn ontology_mut(&mut self) -> &mut BdiOntology {
        &mut self.ontology
    }

    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// Applies Algorithm 1 for a new release and registers its wrapper.
    pub fn register_release(&mut self, release: Release) -> Result<ReleaseStats, SystemError> {
        let stats = release::apply_release(&self.ontology, &mut self.registry, release)?;
        self.release_log.push(ReleaseLogEntry {
            seq: self.release_log.len(),
            wrapper: stats.wrapper.clone(),
            source: stats.source.clone(),
        });
        Ok(stats)
    }

    /// The registration-ordered release log.
    pub fn release_log(&self) -> &[ReleaseLogEntry] {
        &self.release_log
    }

    /// Replaces the release log — used when restoring a persisted
    /// deployment whose log must survive verbatim.
    pub fn set_release_log(&mut self, log: Vec<ReleaseLogEntry>) {
        self.release_log = log;
    }

    /// The wrapper names admitted by a scope.
    pub fn wrappers_in_scope(&self, scope: &VersionScope) -> BTreeSet<String> {
        match scope {
            VersionScope::All => self.release_log.iter().map(|e| e.wrapper.clone()).collect(),
            VersionScope::UpToRelease(n) => self
                .release_log
                .iter()
                .filter(|e| e.seq <= *n)
                .map(|e| e.wrapper.clone())
                .collect(),
            VersionScope::Latest => {
                let mut latest: std::collections::BTreeMap<&str, &str> =
                    std::collections::BTreeMap::new();
                for entry in &self.release_log {
                    latest.insert(&entry.source, &entry.wrapper); // later wins
                }
                latest.values().map(|w| (*w).to_owned()).collect()
            }
            VersionScope::Only(names) => names.clone(),
        }
    }

    /// Rewrites an OMQ without executing it.
    pub fn rewrite(&self, query: Omq) -> Result<Rewriting, SystemError> {
        Ok(rewrite::rewrite(&self.ontology, query)?)
    }

    /// Parses (Code 3 template), rewrites and executes a SPARQL OMQ.
    pub fn answer(&self, sparql: &str) -> Result<Answer, SystemError> {
        let omq = Omq::parse(sparql, self.ontology.prefixes())?;
        self.answer_omq(omq)
    }

    /// Rewrites and executes an already-built OMQ over all versions.
    pub fn answer_omq(&self, omq: Omq) -> Result<Answer, SystemError> {
        self.answer_scoped(omq, &VersionScope::All)
    }

    /// Rewrites and executes an OMQ, keeping only walks whose wrappers all
    /// fall inside `scope` — e.g. `VersionScope::Latest` for
    /// most-recent-schema answers, or `UpToRelease(n)` for historical
    /// point-in-time answers.
    pub fn answer_scoped(&self, omq: Omq, scope: &VersionScope) -> Result<Answer, SystemError> {
        self.answer_with(omq, scope, &ExecOptions::default())
    }

    /// Rewrites and executes an OMQ with explicit [`ExecOptions`]: engine
    /// selection (streaming plans vs the eager reference), projection
    /// pushdown, parallel walk execution, and an optional pushed-down
    /// ID-equality filter. Scope filtering is identical to
    /// [`BdiSystem::answer_scoped`].
    pub fn answer_with(
        &self,
        omq: Omq,
        scope: &VersionScope,
        options: &ExecOptions,
    ) -> Result<Answer, SystemError> {
        let mut rewriting = rewrite::rewrite(&self.ontology, omq)?;
        if !matches!(scope, VersionScope::All) {
            let allowed = self.wrappers_in_scope(scope);
            rewriting.walks.retain(|walk| {
                walk.wrappers().iter().all(|uri| {
                    vocab::wrapper_name_of(uri)
                        .map(|name| allowed.contains(name))
                        .unwrap_or(false)
                })
            });
        }
        let QueryAnswer {
            relation,
            walk_exprs,
        } = exec::execute_with(&self.ontology, &self.registry, &rewriting, options)?;
        Ok(Answer {
            relation,
            rewriting,
            walk_exprs,
        })
    }
}
