//! The assembled BDI system: ontology + wrapper registry + query answering.
//!
//! This corresponds to the paper's Metadata Management System (MDM, §6.1):
//! the data steward registers releases; analysts pose OMQs which are
//! rewritten (Algorithms 2–5) and executed over the wrappers.

use crate::exec::{self, CompiledQuery, ExecError, ExecOptions, QueryAnswer};
use crate::omq::{Omq, OmqError};
use crate::ontology::BdiOntology;
use crate::release::{self, Release, ReleaseError, ReleaseStats};
use crate::rewrite::{self, RewriteError, Rewriting};
use crate::vocab;
use bdi_relational::ExecContext;
use bdi_wrappers::WrapperRegistry;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Errors surfaced by the system facade.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SystemError {
    #[error(transparent)]
    Omq(#[from] OmqError),
    #[error(transparent)]
    Rewrite(#[from] RewriteError),
    #[error(transparent)]
    Exec(#[from] ExecError),
    #[error(transparent)]
    Release(#[from] ReleaseError),
}

/// One entry of the system's release log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseLogEntry {
    /// Monotonic sequence number (0-based registration order).
    pub seq: usize,
    pub wrapper: String,
    pub source: String,
}

/// Which schema versions a query should range over.
///
/// The rewriting always *finds* every wrapper that can answer; the scope
/// then filters the union — this is how the paper's "correctness in
/// historical queries" (§1) and most-recent-version queries coexist.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum VersionScope {
    /// All registered versions (the paper's default union semantics).
    #[default]
    All,
    /// Only each source's most recently registered wrapper.
    Latest,
    /// Only wrappers registered with `seq <= n` — the system as it existed
    /// after the `n`-th release (historical point-in-time queries).
    UpToRelease(usize),
    /// An explicit wrapper allow-list (by wrapper name).
    Only(BTreeSet<String>),
}

/// Upper bound on cached compiled queries; beyond it the least-recently-hit
/// entry is evicted.
const PLAN_CACHE_ENTRIES: usize = 64;

/// What the cache is valid against, in two tiers.
///
/// The first element guards the **compiled plans**: the release log length
/// (bumped by every [`BdiSystem::register_release`]) and the ontology
/// store's monotonic mutation stamp (catching direct
/// [`BdiSystem::ontology_mut`] edits, including count-neutral
/// remove+insert pairs). Plans depend only on the ontology and wrapper
/// *capabilities* — never on wrapper data — so this is exactly the
/// compiled-plan lifetime.
///
/// The second element additionally guards the **persistent
/// [`ExecContext`]**: the registry's *data fingerprint* — the sum of every
/// wrapper's [`data_version`](bdi_wrappers::Wrapper::data_version), which
/// moves on every wrapper-data mutation between releases
/// (`TableWrapper::push`, document inserts). A fingerprint change retires
/// the context (whose interned scans *are* data snapshots) while the
/// compiled plans survive, so append-heavy workloads keep their plan-cache
/// hits; the per-scan `data_version` cache keys catch the same staleness
/// one level down. This two-tier stamp is what lets
/// [`ExecOptions::reuse_scans`] default on.
type CacheValidity = ((usize, u64), u64);

/// Default watermark on the persistent context's interned-value pool; past
/// it the context is retired after the current query (see
/// [`BdiSystem::set_context_value_cap`]).
const DEFAULT_CTX_VALUE_CAP: usize = 1 << 20;

/// Cache key: the full query identity — OMQ fingerprint, version scope and
/// execution options (engine, pushdown, filters all shape the plan).
type PlanKey = (Omq, VersionScope, ExecOptions);

/// Cross-query compiled-plan cache + persistent execution context. Interior
/// mutability (a mutex held only for lookups/inserts, never during
/// execution) keeps [`BdiSystem::answer_with`] callable through `&self`.
struct ExecCache {
    inner: Mutex<ExecCacheState>,
}

struct ExecCacheState {
    validity: CacheValidity,
    tick: u64,
    hits: u64,
    misses: u64,
    plans: HashMap<PlanKey, (Arc<CompiledQuery>, u64)>,
    /// Pool watermark handed to every fresh context (see
    /// [`BdiSystem::set_context_value_cap`]).
    value_cap: usize,
    ctx: Arc<ExecContext>,
}

impl ExecCacheState {
    fn fresh_ctx(&self) -> Arc<ExecContext> {
        Arc::new(ExecContext::new().with_value_cap(self.value_cap))
    }

    /// Brings the cache up to `validity`: a plan-tier change flushes plans
    /// and context; a data-fingerprint-only change retires just the
    /// context (compiled plans never depend on wrapper data).
    fn revalidate(&mut self, validity: CacheValidity) {
        if self.validity.0 != validity.0 {
            self.validity = validity;
            self.plans.clear();
            self.ctx = self.fresh_ctx();
        } else if self.validity.1 != validity.1 {
            self.validity = validity;
            self.ctx = self.fresh_ctx();
        }
    }
}

impl Default for ExecCache {
    fn default() -> Self {
        Self {
            inner: Mutex::new(ExecCacheState {
                validity: ((usize::MAX, u64::MAX), u64::MAX), // never matches → first use invalidates
                tick: 0,
                hits: 0,
                misses: 0,
                plans: HashMap::new(),
                value_cap: DEFAULT_CTX_VALUE_CAP,
                ctx: Arc::new(ExecContext::new().with_value_cap(DEFAULT_CTX_VALUE_CAP)),
            }),
        }
    }
}

impl std::fmt::Debug for ExecCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock().expect("plan cache poisoned");
        f.debug_struct("ExecCache")
            .field("entries", &state.plans.len())
            .field("hits", &state.hits)
            .field("misses", &state.misses)
            .finish()
    }
}

impl ExecCache {
    /// Drops every cached plan and the shared context (release registered,
    /// or ontology visibly changed).
    fn invalidate(&self, validity: CacheValidity) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.validity = validity;
        state.plans.clear();
        state.ctx = state.fresh_ctx();
    }

    /// Retires the shared context when its value pool has outgrown the
    /// watermark — queries in flight keep the old context alive through
    /// their `Arc` until they finish; new queries intern into the fresh
    /// pool and re-scan on demand.
    fn recycle_if_over_cap(&self) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        if state.ctx.over_value_cap() {
            state.ctx = state.fresh_ctx();
        }
    }

    /// The cached compiled query for `key`, if still valid, plus the shared
    /// context. A stale validity stamp flushes everything first.
    fn lookup(
        &self,
        validity: CacheValidity,
        key: &PlanKey,
    ) -> (Option<Arc<CompiledQuery>>, Arc<ExecContext>) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.revalidate(validity);
        state.tick += 1;
        let tick = state.tick;
        let hit = match state.plans.get_mut(key) {
            Some((compiled, last_used)) => {
                *last_used = tick;
                Some(compiled.clone())
            }
            None => None,
        };
        if hit.is_some() {
            state.hits += 1;
        } else {
            state.misses += 1;
        }
        (hit, state.ctx.clone())
    }

    /// The shared context alone (revalidating first), without touching the
    /// hit/miss counters — for `cache_plans: false` queries.
    fn context(&self, validity: CacheValidity) -> Arc<ExecContext> {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        state.revalidate(validity);
        state.ctx.clone()
    }

    /// Inserts a freshly compiled query, evicting the least-recently-hit
    /// entry at capacity. Racing compilers of the same key both insert; the
    /// loser's entry simply replaces an identical one.
    fn insert(&self, validity: CacheValidity, key: PlanKey, compiled: Arc<CompiledQuery>) {
        let mut state = self.inner.lock().expect("plan cache poisoned");
        // Compare the plan tier only: a release or ontology edit slipping
        // in while compiling must discard the plan, but a mere data
        // mutation cannot stale it (plans are data-independent).
        if state.validity.0 != validity.0 {
            return;
        }
        if state.plans.len() >= PLAN_CACHE_ENTRIES && !state.plans.contains_key(&key) {
            if let Some(oldest) = state
                .plans
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                state.plans.remove(&oldest);
            }
        }
        state.tick += 1;
        let tick = state.tick;
        state.plans.insert(key, (compiled, tick));
    }
}

/// Plan-cache observability (tests, benches, ops dashboards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
}

/// Persistent-context size observability (see
/// [`BdiSystem::context_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextStats {
    /// Distinct values interned into the shared pool.
    pub pooled_values: usize,
    /// Rough resident bytes: pool + cached interned scans + cached join
    /// build sides.
    pub approx_bytes: usize,
}

/// A complete, queryable BDI deployment.
#[derive(Debug, Default)]
pub struct BdiSystem {
    ontology: BdiOntology,
    registry: WrapperRegistry,
    release_log: Vec<ReleaseLogEntry>,
    cache: ExecCache,
}

/// A query answer together with the rewriting that produced it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result relation (feature-named columns, π order).
    pub relation: bdi_relational::Relation,
    /// The rewriting artefacts (walks, expansion, candidates). Shared with
    /// the plan cache, so repeated queries don't deep-clone the walks.
    pub rewriting: Arc<Rewriting>,
    /// Rendered relational algebra per executed walk.
    pub walk_exprs: Vec<String>,
}

impl BdiSystem {
    /// An empty system (metamodel preloaded, no sources).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an existing ontology and registry. Wrappers already in
    /// the registry are entered into the release log in name order.
    pub fn from_parts(ontology: BdiOntology, registry: WrapperRegistry) -> Self {
        let release_log = registry
            .iter()
            .enumerate()
            .map(|(seq, w)| ReleaseLogEntry {
                seq,
                wrapper: w.name().to_owned(),
                source: w.source().to_owned(),
            })
            .collect();
        Self {
            ontology,
            registry,
            release_log,
            cache: ExecCache::default(),
        }
    }

    /// The cache validity stamp for the system's current state. The data
    /// fingerprint sums per-wrapper data versions — each counter only ever
    /// grows, so any wrapper-data mutation strictly advances the sum.
    fn cache_validity(&self) -> CacheValidity {
        let data_fingerprint = self
            .registry
            .iter()
            .fold(0u64, |acc, w| acc.wrapping_add(w.data_version()));
        (
            (
                self.release_log.len(),
                self.ontology.store().mutation_count(),
            ),
            data_fingerprint,
        )
    }

    pub fn ontology(&self) -> &BdiOntology {
        &self.ontology
    }

    pub fn ontology_mut(&mut self) -> &mut BdiOntology {
        &mut self.ontology
    }

    pub fn registry(&self) -> &WrapperRegistry {
        &self.registry
    }

    /// Applies Algorithm 1 for a new release and registers its wrapper.
    /// Every registration bumps the release sequence, which invalidates the
    /// cross-query plan cache and the persistent execution context — the
    /// new wrapper changes what queries rewrite to, and its data was never
    /// scanned.
    pub fn register_release(&mut self, release: Release) -> Result<ReleaseStats, SystemError> {
        let stats = release::apply_release(&self.ontology, &mut self.registry, release)?;
        self.release_log.push(ReleaseLogEntry {
            seq: self.release_log.len(),
            wrapper: stats.wrapper.clone(),
            source: stats.source.clone(),
        });
        self.cache.invalidate(self.cache_validity());
        Ok(stats)
    }

    /// The registration-ordered release log.
    pub fn release_log(&self) -> &[ReleaseLogEntry] {
        &self.release_log
    }

    /// Replaces the release log — used when restoring a persisted
    /// deployment whose log must survive verbatim.
    pub fn set_release_log(&mut self, log: Vec<ReleaseLogEntry>) {
        self.release_log = log;
        self.cache.invalidate(self.cache_validity());
    }

    /// Plan-cache counters (entries reflect the current validity window;
    /// hits/misses accumulate over the system's lifetime).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let state = self.cache.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            entries: state.plans.len(),
            hits: state.hits,
            misses: state.misses,
        }
    }

    /// Sets the watermark on the persistent execution context's
    /// interned-value pool (default 2²⁰ distinct values). When a query
    /// leaves the pool above the watermark the context is retired and the
    /// next query starts against a fresh one, so a long-lived system's
    /// memory stays bounded however much distinct data flows through it.
    /// Takes effect immediately: the current context is replaced (cached
    /// scans flush; compiled plans survive).
    pub fn set_context_value_cap(&self, cap: usize) {
        let mut state = self.cache.inner.lock().expect("plan cache poisoned");
        state.value_cap = cap.max(1);
        state.ctx = state.fresh_ctx();
    }

    /// Size diagnostics of the persistent execution context (pool +
    /// scan/build caches) — what [`BdiSystem::set_context_value_cap`]
    /// bounds.
    pub fn context_stats(&self) -> ContextStats {
        let ctx = {
            let state = self.cache.inner.lock().expect("plan cache poisoned");
            state.ctx.clone()
        };
        ContextStats {
            pooled_values: ctx.pooled_values(),
            approx_bytes: ctx.memory_estimate(),
        }
    }

    /// The wrapper names admitted by a scope.
    pub fn wrappers_in_scope(&self, scope: &VersionScope) -> BTreeSet<String> {
        match scope {
            VersionScope::All => self.release_log.iter().map(|e| e.wrapper.clone()).collect(),
            VersionScope::UpToRelease(n) => self
                .release_log
                .iter()
                .filter(|e| e.seq <= *n)
                .map(|e| e.wrapper.clone())
                .collect(),
            VersionScope::Latest => {
                let mut latest: std::collections::BTreeMap<&str, &str> =
                    std::collections::BTreeMap::new();
                for entry in &self.release_log {
                    latest.insert(&entry.source, &entry.wrapper); // later wins
                }
                latest.values().map(|w| (*w).to_owned()).collect()
            }
            VersionScope::Only(names) => names.clone(),
        }
    }

    /// Rewrites an OMQ without executing it.
    pub fn rewrite(&self, query: Omq) -> Result<Rewriting, SystemError> {
        Ok(rewrite::rewrite(&self.ontology, query)?)
    }

    /// Parses (Code 3 template), rewrites and executes a SPARQL OMQ.
    pub fn answer(&self, sparql: &str) -> Result<Answer, SystemError> {
        let omq = Omq::parse(sparql, self.ontology.prefixes())?;
        self.answer_omq(omq)
    }

    /// Rewrites and executes an already-built OMQ over all versions.
    pub fn answer_omq(&self, omq: Omq) -> Result<Answer, SystemError> {
        self.answer_scoped(omq, &VersionScope::All)
    }

    /// Rewrites and executes an OMQ, keeping only walks whose wrappers all
    /// fall inside `scope` — e.g. `VersionScope::Latest` for
    /// most-recent-schema answers, or `UpToRelease(n)` for historical
    /// point-in-time answers.
    pub fn answer_scoped(&self, omq: Omq, scope: &VersionScope) -> Result<Answer, SystemError> {
        self.answer_with(omq, scope, &ExecOptions::default())
    }

    /// Rewrites and executes an OMQ with explicit [`ExecOptions`]: engine
    /// selection (streaming plans vs the eager reference), projection
    /// pushdown, parallel walk execution, and pushed-down predicate
    /// filters. Scope filtering is identical to
    /// [`BdiSystem::answer_scoped`].
    ///
    /// Repeated queries skip the rewriting-to-plan pipeline entirely: the
    /// compiled form is cached under `(OMQ, scope, options)` and stays
    /// valid until the next [`BdiSystem::register_release`]. With
    /// [`ExecOptions::reuse_scans`] the persistent [`ExecContext`] also
    /// carries interned wrapper scans and join build sides across queries
    /// within that validity window.
    pub fn answer_with(
        &self,
        omq: Omq,
        scope: &VersionScope,
        options: &ExecOptions,
    ) -> Result<Answer, SystemError> {
        let validity = self.cache_validity();
        // Normalize the key to the plan-shaping options: `cache_plans` and
        // `reuse_scans` steer *this* method, never the compiled plan, so
        // queries differing only in them share one cache entry.
        let key_options = ExecOptions {
            cache_plans: true,
            reuse_scans: false,
            ..options.clone()
        };
        let key = (omq, scope.clone(), key_options);
        let (cached, ctx) = if options.cache_plans {
            self.cache.lookup(validity, &key)
        } else {
            (None, self.cache.context(validity))
        };
        let compiled = match cached {
            Some(compiled) => compiled,
            None => {
                let (omq, scope, key_options) = &key;
                let mut rewriting = rewrite::rewrite(&self.ontology, omq.clone())?;
                if !matches!(scope, VersionScope::All) {
                    let allowed = self.wrappers_in_scope(scope);
                    rewriting.walks.retain(|walk| {
                        walk.wrappers().iter().all(|uri| {
                            vocab::wrapper_name_of(uri)
                                .map(|name| allowed.contains(name))
                                .unwrap_or(false)
                        })
                    });
                }
                let compiled = Arc::new(exec::compile_query(
                    &self.ontology,
                    &self.registry,
                    rewriting,
                    key_options,
                )?);
                if options.cache_plans {
                    self.cache.insert(validity, key.clone(), compiled.clone());
                }
                compiled
            }
        };
        let shared_ctx = options.reuse_scans.then_some(ctx);
        let QueryAnswer {
            relation,
            walk_exprs,
        } = exec::execute_compiled(
            &self.ontology,
            &self.registry,
            &compiled,
            shared_ctx.as_deref(),
        )?;
        // Bound the long-lived pool: if this query pushed it past the
        // watermark, retire the context before the next query reuses it.
        if options.reuse_scans {
            self.cache.recycle_if_over_cap();
        }
        Ok(Answer {
            relation,
            rewriting: compiled.rewriting.clone(),
            walk_exprs,
        })
    }
}
