//! The durable storage tier: WAL + snapshot recovery over a [`BdiSystem`].
//!
//! [`DurableSystem`] wraps a system and its backing [`DocStore`] with the
//! `bdi_durability` substrate. Every mutation to the three mutable stores
//! — the ontology's quad store, the document collections and the
//! table-wrapper rows — goes through one `log_then_apply` funnel:
//! the op is encoded, appended to the WAL and **fsynced before** it
//! touches any in-memory state, so a mutation is acknowledged if and only
//! if it is on stable storage. [`DurableSystem::checkpoint`] writes a
//! [`DurableImage`] (the deployment snapshot *plus* every cache-validity
//! counter) via tmp-file → fsync → atomic rename, then truncates the log;
//! [`DurableSystem::open`] loads the image, restores the counters
//! bit-exact, and replays only the log records with `seq` greater than
//! the image's — exactly-once replay even when a crash landed between the
//! snapshot rename and the log truncation.
//!
//! # Counter restoration
//!
//! The plan/scan-cache validity scheme hangs off monotonic counters
//! (`QuadStore::mutation_count`, `DocStore::collection_version`,
//! `TableWrapper::data_version`). A reboot that restarted them at 0 would
//! let a stamp taken before the crash collide with a *different*
//! post-restart state. Recovery therefore restores the persisted values
//! first and then replays through the normal bump paths; since replayed
//! ops bump exactly as the originals did, the recovered counters equal
//! the pre-crash ones — and "equal counter ⇒ equal contents" survives the
//! process boundary.
//!
//! # Poisoning
//!
//! Any journal or checkpoint failure leaves memory and disk potentially
//! divergent, so it *poisons* the handle: every further mutation fails
//! with [`DurableError::Poisoned`] until the directory is reopened (which
//! recovers from what actually reached the disk). Reads keep working.

use crate::release::{Release, ReleaseStats};
use crate::snapshot::{SnapshotError, SystemSnapshot};
use crate::system::{Answer, AnswerRequest, BdiSystem, SystemError};
use bdi_docstore::{DocStore, StoreError};
use bdi_durability::{Snapshotter, StdVfs, Vfs, Wal, WalStats};
pub use bdi_durability::{SNAPSHOT_FILE, WAL_FILE};
use bdi_rdf::model::{BlankNode, GraphName, Iri, Literal, Quad, Term};
use bdi_wrappers::spec::{json_to_value, value_to_json};
use bdi_wrappers::{Wrapper, WrapperError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Store id journaled with every quad-store op.
pub const STORE_QUAD: u32 = 1;
/// Store id journaled with every document-store op.
pub const STORE_DOC: u32 = 2;
/// Store id journaled with every table-wrapper op.
pub const STORE_TABLE: u32 = 3;

/// Errors raised by the durable tier.
#[derive(Debug, thiserror::Error)]
pub enum DurableError {
    /// An I/O failure from the WAL, snapshot or directory handling.
    #[error("durability io error: {0}")]
    Io(#[from] std::io::Error),
    /// A previous journal/checkpoint failure left memory and disk
    /// potentially divergent; reopen the directory to recover.
    #[error("durable system poisoned by an earlier failure: {0}")]
    Poisoned(String),
    /// Snapshot capture or restore failed.
    #[error("snapshot error: {0}")]
    Snapshot(#[from] SnapshotError),
    /// A document-store rejection (surfaced before journaling).
    #[error("document store error: {0}")]
    Store(#[from] StoreError),
    /// A wrapper rejection (surfaced before journaling).
    #[error("wrapper error: {0}")]
    Wrapper(#[from] WrapperError),
    /// A release registration failure (surfaced before checkpointing).
    #[error("system error: {0}")]
    System(#[from] SystemError),
    /// A WAL record that decoded to nonsense — disk corruption beyond
    /// what the CRC framing already amputates.
    #[error("corrupt log record at seq {seq}: {reason}")]
    Corrupt {
        /// The corrupt record's sequence number.
        seq: u64,
        /// What failed to decode.
        reason: String,
    },
    /// [`DurableSystem::create`] refused to clobber an existing image.
    #[error("data directory already initialised: {0}")]
    AlreadyInitialised(String),
    /// A journaled table push names a wrapper the registry does not have
    /// (or has as a non-table kind).
    #[error("unknown table wrapper: {0}")]
    UnknownWrapper(String),
}

/// The persisted image: the deployment snapshot plus everything the
/// cache-validity scheme needs restored bit-exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurableImage {
    /// Image format version (currently 1).
    pub format: u32,
    /// The last WAL seq reflected in this image; recovery replays only
    /// records with a greater seq.
    pub seq: u64,
    /// The deployment itself (ontology TriG, wrapper specs, collections,
    /// release log).
    pub snapshot: SystemSnapshot,
    /// `QuadStore::mutation_count` at capture time.
    pub quad_mutations: u64,
    /// `DocStore::data_version` at capture time.
    pub doc_data_version: u64,
    /// Every collection's `DocStore::collection_version` at capture time.
    pub collection_versions: BTreeMap<String, u64>,
    /// Every table wrapper's `data_version` at capture time.
    pub table_versions: BTreeMap<String, u64>,
}

/// What [`DurableSystem::open`] found and did while recovering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Whether a snapshot image was loaded (`false` = cold, empty start
    /// or replay-only recovery of a never-checkpointed directory).
    pub snapshot_loaded: bool,
    /// The image's covered seq (0 without an image).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the image.
    pub replayed: u64,
    /// Byte offset the WAL's torn tail was amputated at, if one existed.
    pub wal_truncated_at: Option<u64>,
}

/// Counters surfaced by [`DurableSystem::durability_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// The last seq appended (0 when nothing ever was).
    pub last_seq: u64,
    /// WAL write-path counters for this handle's lifetime.
    pub wal: WalStats,
    /// Checkpoints completed by this handle.
    pub checkpoints: u64,
    /// Whether the handle is poisoned (see [`DurableError::Poisoned`]).
    pub poisoned: bool,
}

/// The journaled mutation ops. Quads and rows are carried through the
/// same JSON value mapping `WrapperSpec` uses, so the encoding has one
/// source of truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Op {
    InsertQuad {
        q: serde_json::Value,
    },
    RemoveQuad {
        q: serde_json::Value,
    },
    ExtendQuads {
        qs: Vec<serde_json::Value>,
    },
    ClearGraph {
        g: Option<String>,
    },
    InsertDoc {
        c: String,
        d: serde_json::Value,
    },
    InsertDocs {
        c: String,
        ds: Vec<serde_json::Value>,
    },
    ClearCollection {
        c: String,
    },
    PushRow {
        w: String,
        r: Vec<serde_json::Value>,
    },
}

impl Op {
    fn store_id(&self) -> u32 {
        match self {
            Op::InsertQuad { .. }
            | Op::RemoveQuad { .. }
            | Op::ExtendQuads { .. }
            | Op::ClearGraph { .. } => STORE_QUAD,
            Op::InsertDoc { .. } | Op::InsertDocs { .. } | Op::ClearCollection { .. } => STORE_DOC,
            Op::PushRow { .. } => STORE_TABLE,
        }
    }
}

struct Journal {
    wal: Wal,
    poisoned: Option<String>,
    checkpoints: u64,
    /// Test hook: fail (and poison) after the Nth successful append+fsync,
    /// *before* the apply — the "crash between log and apply" matrix cell.
    crash_before_apply: Option<u64>,
}

/// A [`BdiSystem`] + [`DocStore`] pair whose mutations survive `kill -9`.
pub struct DurableSystem {
    system: BdiSystem,
    store: DocStore,
    dir: PathBuf,
    snapshotter: Snapshotter,
    journal: Mutex<Journal>,
    recovery: RecoveryInfo,
}

impl DurableSystem {
    /// Opens (or cold-starts) the durable deployment at `dir` on the real
    /// filesystem: loads the snapshot image if one exists, restores every
    /// cache-validity counter, replays the WAL's uncovered suffix, and
    /// amputates any torn log tail.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DurableError> {
        Self::open_with(dir, Arc::new(StdVfs))
    }

    /// [`DurableSystem::open`] over an explicit [`Vfs`] (the crash-matrix
    /// tests recover through `CrashyVfs`-damaged directories with a clean
    /// `StdVfs`, and crash *during* recovery with another `CrashyVfs`).
    pub fn open_with(dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let snapshotter = Snapshotter::new(Arc::clone(&vfs), dir.clone());

        let mut recovery = RecoveryInfo::default();
        let (system, store) = match snapshotter.load()? {
            Some(bytes) => {
                let image: DurableImage = serde_json::from_str(
                    std::str::from_utf8(&bytes).unwrap_or_default(),
                )
                .map_err(|e| DurableError::Corrupt {
                    seq: 0,
                    reason: format!("snapshot image: {e}"),
                })?;
                let (system, store) = crate::snapshot::restore(&image.snapshot)?;
                // Counters first, replay second: the bumps replay performs
                // on top of these exact values reproduce the pre-crash
                // stamps (see the module docs).
                system
                    .ontology()
                    .store()
                    .restore_mutation_count(image.quad_mutations);
                for (name, version) in &image.collection_versions {
                    store.restore_collection_version(name, *version);
                }
                store.restore_data_version(image.doc_data_version);
                for (name, version) in &image.table_versions {
                    if let Some(table) = system.registry().get(name).and_then(|w| w.as_table()) {
                        table.restore_data_version(*version);
                    }
                }
                recovery.snapshot_loaded = true;
                recovery.snapshot_seq = image.seq;
                (system, store)
            }
            None => (BdiSystem::new(), DocStore::new()),
        };

        // The image's seq floors the WAL's next seq: after a checkpoint
        // truncated the log, the records alone would restart seqs below
        // the covered point and the replay filter below would silently
        // drop those acknowledged writes on the *next* open.
        let opened = Wal::open(Arc::clone(&vfs), dir.join(WAL_FILE), recovery.snapshot_seq)?;
        recovery.wal_truncated_at = opened.truncated_at;

        let durable = DurableSystem {
            system,
            store,
            dir,
            snapshotter,
            journal: Mutex::new(Journal {
                wal: opened.wal,
                poisoned: None,
                checkpoints: 0,
                crash_before_apply: None,
            }),
            recovery,
        };
        for record in &opened.records {
            if record.seq <= durable.recovery.snapshot_seq {
                continue; // already inside the image
            }
            let op: Op = serde_json::from_str(std::str::from_utf8(&record.op).unwrap_or_default())
                .map_err(|e| DurableError::Corrupt {
                    seq: record.seq,
                    reason: e.to_string(),
                })?;
            durable.apply_op(&op)?;
        }
        let replayed = opened
            .records
            .iter()
            .filter(|r| r.seq > durable.recovery.snapshot_seq)
            .count() as u64;
        let mut durable = durable;
        durable.recovery.replayed = replayed;
        Ok(durable)
    }

    /// Adopts an already-built in-memory deployment as the initial state
    /// of a fresh data directory, writing its first snapshot image.
    /// Refuses to clobber a directory that already holds an image — or a
    /// WAL with journaled records (a never-checkpointed deployment that
    /// [`DurableSystem::open`] would recover).
    pub fn create(
        dir: impl AsRef<Path>,
        system: BdiSystem,
        store: DocStore,
    ) -> Result<Self, DurableError> {
        Self::create_with(dir, Arc::new(StdVfs), system, store)
    }

    /// [`DurableSystem::create`] over an explicit [`Vfs`].
    pub fn create_with(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        system: BdiSystem,
        store: DocStore,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let snapshotter = Snapshotter::new(Arc::clone(&vfs), dir.clone());
        if vfs.exists(&snapshotter.image_path()) {
            return Err(DurableError::AlreadyInitialised(dir.display().to_string()));
        }
        let opened = Wal::open(Arc::clone(&vfs), dir.join(WAL_FILE), 0)?;
        if !opened.records.is_empty() {
            // A WAL with journaled records but no snapshot image is a
            // recoverable directory (cold start + replay), not a fresh
            // one: adopting it would checkpoint an image whose seq covers
            // records that were never applied, permanently discarding
            // them.
            return Err(DurableError::AlreadyInitialised(format!(
                "{} ({} holds {} journaled record(s); open the directory instead)",
                dir.display(),
                WAL_FILE,
                opened.records.len()
            )));
        }
        let durable = DurableSystem {
            system,
            store,
            dir,
            snapshotter,
            journal: Mutex::new(Journal {
                wal: opened.wal,
                poisoned: None,
                checkpoints: 0,
                crash_before_apply: None,
            }),
            recovery: RecoveryInfo::default(),
        };
        durable.checkpoint()?;
        Ok(durable)
    }

    /// The wrapped (read-only from here) system.
    pub fn system(&self) -> &BdiSystem {
        &self.system
    }

    /// The backing document store. Mutate it only through
    /// [`DurableSystem::insert_doc`]-family methods, or the writes will
    /// not survive a crash.
    pub fn store(&self) -> &DocStore {
        &self.store
    }

    /// The data directory this deployment persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Answers a request — a passthrough to [`BdiSystem::serve`].
    pub fn serve(&self, request: AnswerRequest) -> Result<Answer, SystemError> {
        self.system.serve(request)
    }

    /// Answers a SPARQL OMQ — a passthrough to [`BdiSystem::answer`].
    pub fn answer(&self, sparql: &str) -> Result<Answer, SystemError> {
        self.system.answer(sparql)
    }

    fn lock_journal(&self) -> MutexGuard<'_, Journal> {
        self.journal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The one write path: encode, append, fsync, *then* apply — all under
    /// the journal lock, so log order equals apply order. Any failure
    /// poisons the handle. Returns the op's numeric outcome (see
    /// [`DurableSystem::apply_op`]).
    fn log_then_apply(&self, op: Op) -> Result<u64, DurableError> {
        let mut journal = self.lock_journal();
        if let Some(reason) = &journal.poisoned {
            return Err(DurableError::Poisoned(reason.clone()));
        }
        let encoded = serde_json::to_string(&op)
            .map(String::into_bytes)
            .map_err(|e| DurableError::Corrupt {
                seq: journal.wal.next_seq(),
                reason: format!("encode: {e}"),
            })?;
        let append = journal
            .wal
            .append(op.store_id(), &encoded)
            .and_then(|_| journal.wal.commit());
        if let Err(e) = append {
            journal.poisoned = Some(format!("journal append failed: {e}"));
            return Err(DurableError::Io(e));
        }
        if let Some(countdown) = journal.crash_before_apply {
            if countdown <= 1 {
                journal.crash_before_apply = None;
                journal.poisoned = Some("injected crash between log and apply".to_owned());
                return Err(DurableError::Io(std::io::Error::other(
                    bdi_durability::SIMULATED_CRASH,
                )));
            }
            journal.crash_before_apply = Some(countdown - 1);
        }
        match self.apply_op(&op) {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                // Journaled but not (fully) applied: memory may diverge
                // from what replay will reconstruct. Only reopen recovers.
                journal.poisoned = Some(format!("apply failed after journaling: {e}"));
                Err(e)
            }
        }
    }

    /// Applies a decoded op to the in-memory stores — shared by the live
    /// write path and recovery replay, so both bump the same counters the
    /// same way. Ops are validated *before* journaling, so apply errors
    /// here mean a corrupt log or a registry that no longer matches it.
    fn apply_op(&self, op: &Op) -> Result<u64, DurableError> {
        match op {
            Op::InsertQuad { q } => {
                let quad = decode_quad(q).map_err(corrupt)?;
                Ok(u64::from(self.system.ontology().store().insert(&quad)))
            }
            Op::RemoveQuad { q } => {
                let quad = decode_quad(q).map_err(corrupt)?;
                Ok(u64::from(self.system.ontology().store().remove(&quad)))
            }
            Op::ExtendQuads { qs } => {
                let quads = qs
                    .iter()
                    .map(decode_quad)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(corrupt)?;
                Ok(self.system.ontology().store().extend(quads) as u64)
            }
            Op::ClearGraph { g } => {
                let graph = decode_graph(g);
                Ok(self.system.ontology().store().clear_graph(&graph) as u64)
            }
            Op::InsertDoc { c, d } => {
                self.store.insert(c, d.clone())?;
                Ok(1)
            }
            Op::InsertDocs { c, ds } => Ok(self.store.insert_many(c, ds.clone())? as u64),
            Op::ClearCollection { c } => Ok(self.store.clear(c) as u64),
            Op::PushRow { w, r } => {
                let table = self
                    .system
                    .registry()
                    .get(w)
                    .and_then(|wrapper| wrapper.as_table())
                    .ok_or_else(|| DurableError::UnknownWrapper(w.clone()))?;
                table.push(r.iter().map(json_to_value).collect())?;
                Ok(1)
            }
        }
    }

    /// Durably inserts a quad into the ontology's store. Returns whether
    /// it was new (duplicates are journaled and replay as the same no-op).
    pub fn insert_quad(&self, quad: &Quad) -> Result<bool, DurableError> {
        let op = Op::InsertQuad {
            q: encode_quad(quad),
        };
        Ok(self.log_then_apply(op)? != 0)
    }

    /// Durably removes a quad. Returns whether it was present.
    pub fn remove_quad(&self, quad: &Quad) -> Result<bool, DurableError> {
        let op = Op::RemoveQuad {
            q: encode_quad(quad),
        };
        Ok(self.log_then_apply(op)? != 0)
    }

    /// Durably inserts a batch of quads under **one** fsync, returning how
    /// many were new.
    pub fn extend_quads(&self, quads: &[Quad]) -> Result<usize, DurableError> {
        let op = Op::ExtendQuads {
            qs: quads.iter().map(encode_quad).collect(),
        };
        Ok(self.log_then_apply(op)? as usize)
    }

    /// Durably clears a graph, returning how many quads it held.
    pub fn clear_graph(&self, graph: &GraphName) -> Result<usize, DurableError> {
        let op = Op::ClearGraph {
            g: encode_graph(graph),
        };
        Ok(self.log_then_apply(op)? as usize)
    }

    /// Durably inserts one document. Unlike the raw [`DocStore::insert`],
    /// a rejected document (non-object) fails *before* journaling and
    /// mutates nothing — the journal only ever holds applicable ops.
    pub fn insert_doc(&self, collection: &str, doc: serde_json::Value) -> Result<(), DurableError> {
        if !doc.is_object() {
            return Err(StoreError::NotAnObject(doc.to_string()).into());
        }
        let op = Op::InsertDoc {
            c: collection.to_owned(),
            d: doc,
        };
        self.log_then_apply(op).map(|_| ())
    }

    /// Durably inserts a batch of documents under one fsync. The batch is
    /// validated up front and rejected whole if any document is not an
    /// object (stricter than the raw store's partial append, for the same
    /// reason as [`DurableSystem::insert_doc`]).
    pub fn insert_docs(
        &self,
        collection: &str,
        docs: Vec<serde_json::Value>,
    ) -> Result<usize, DurableError> {
        if let Some(bad) = docs.iter().find(|d| !d.is_object()) {
            return Err(StoreError::NotAnObject(bad.to_string()).into());
        }
        let op = Op::InsertDocs {
            c: collection.to_owned(),
            ds: docs,
        };
        Ok(self.log_then_apply(op)? as usize)
    }

    /// Durably clears a collection, returning how many documents it held.
    pub fn clear_collection(&self, collection: &str) -> Result<usize, DurableError> {
        let op = Op::ClearCollection {
            c: collection.to_owned(),
        };
        Ok(self.log_then_apply(op)? as usize)
    }

    /// Durably appends a row to a registered table wrapper. The wrapper
    /// must exist, be a table, and the row must match its arity — all
    /// checked *before* journaling.
    pub fn push_row(
        &self,
        wrapper: &str,
        row: Vec<bdi_relational::Value>,
    ) -> Result<(), DurableError> {
        let table = self
            .system
            .registry()
            .get(wrapper)
            .and_then(|w| w.as_table())
            .ok_or_else(|| DurableError::UnknownWrapper(wrapper.to_owned()))?;
        if row.len() != table.schema().len() {
            return Err(
                WrapperError::Relation(bdi_relational::RelationError::Arity {
                    expected: table.schema().len(),
                    found: row.len(),
                })
                .into(),
            );
        }
        let op = Op::PushRow {
            w: wrapper.to_owned(),
            r: row.iter().map(value_to_json).collect(),
        };
        self.log_then_apply(op).map(|_| ())
    }

    /// Durably registers a release. Schema evolution is rare and reshapes
    /// the wrapper registry, so instead of journaling it the release is
    /// applied in memory and then made durable by a synchronous
    /// [`DurableSystem::checkpoint`] — the call only returns Ok once the
    /// new deployment image is on disk. A checkpoint failure poisons the
    /// handle (memory has the release, disk does not).
    // analyze: allow(durability, releases are apply-then-checkpoint: the synchronous checkpoint below is the durability barrier, and a failure before it returns poisons the handle instead of acknowledging)
    pub fn register_release(&mut self, release: Release) -> Result<ReleaseStats, DurableError> {
        {
            let journal = self.lock_journal();
            if let Some(reason) = &journal.poisoned {
                return Err(DurableError::Poisoned(reason.clone()));
            }
        }
        let stats = self.system.register_release(release)?;
        if let Err(e) = self.checkpoint() {
            let mut journal = self.lock_journal();
            journal.poisoned = Some(format!("release checkpoint failed: {e}"));
            return Err(e);
        }
        Ok(stats)
    }

    /// Captures and atomically installs a new snapshot image, then
    /// truncates the WAL it covers. Returns the covered seq. Held under
    /// the journal lock, so no mutation can slip between the image
    /// capture and the log truncation.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        let mut journal = self.lock_journal();
        if let Some(reason) = &journal.poisoned {
            return Err(DurableError::Poisoned(reason.clone()));
        }
        let seq = journal.wal.last_seq();
        let image = DurableImage {
            format: 1,
            seq,
            snapshot: crate::snapshot::snapshot(&self.system, &self.store)?,
            quad_mutations: self.system.ontology().store().mutation_count(),
            doc_data_version: self.store.data_version(),
            collection_versions: self.store.collection_versions(),
            table_versions: self
                .system
                .registry()
                .iter()
                .filter_map(|w| {
                    w.as_table()
                        .map(|t| (t.name().to_owned(), t.data_version()))
                })
                .collect(),
        };
        let bytes = serde_json::to_string_pretty(&image)
            .map(String::into_bytes)
            .map_err(|e| DurableError::Corrupt {
                seq,
                reason: format!("encode image: {e}"),
            })?;
        let result = self
            .snapshotter
            .save(&bytes)
            .and_then(|()| journal.wal.reset());
        if let Err(e) = result {
            journal.poisoned = Some(format!("checkpoint failed: {e}"));
            return Err(DurableError::Io(e));
        }
        journal.checkpoints += 1;
        Ok(seq)
    }

    /// Write-path and checkpoint counters.
    pub fn durability_stats(&self) -> DurabilityStats {
        let journal = self.lock_journal();
        DurabilityStats {
            last_seq: journal.wal.last_seq(),
            wal: journal.wal.stats(),
            checkpoints: journal.checkpoints,
            poisoned: journal.poisoned.is_some(),
        }
    }

    /// Test hook for the crash matrix: the `nth` (1-based) subsequent
    /// mutation is journaled and fsynced, then fails — and poisons the
    /// handle — *before* applying, emulating a crash between log and
    /// apply. The recovered system must include that mutation (it was on
    /// disk) even though the crashed process never saw it applied.
    #[doc(hidden)]
    pub fn inject_crash_before_apply(&self, nth: u64) {
        self.lock_journal().crash_before_apply = Some(nth.max(1));
    }
}

fn corrupt(reason: String) -> DurableError {
    DurableError::Corrupt { seq: 0, reason }
}

// ---------------------------------------------------------------------------
// Term/quad JSON encoding
// ---------------------------------------------------------------------------

fn one_key(key: &str, value: serde_json::Value) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert(key.to_owned(), value);
    serde_json::Value::Object(m)
}

fn encode_term(term: &Term) -> serde_json::Value {
    match term {
        Term::Iri(iri) => one_key("i", serde_json::Value::String(iri.as_str().to_owned())),
        Term::Blank(b) => one_key("b", serde_json::Value::String(b.label().to_owned())),
        Term::Literal(l) => {
            let mut m = serde_json::Map::new();
            m.insert(
                "lex".to_owned(),
                serde_json::Value::String(l.lexical().to_owned()),
            );
            if let Some(lang) = l.lang() {
                m.insert(
                    "lang".to_owned(),
                    serde_json::Value::String(lang.to_owned()),
                );
            } else if let Some(dt) = l.datatype() {
                m.insert(
                    "dt".to_owned(),
                    serde_json::Value::String(dt.as_str().to_owned()),
                );
            }
            one_key("l", serde_json::Value::Object(m))
        }
    }
}

fn decode_term(value: &serde_json::Value) -> Result<Term, String> {
    let obj = value
        .as_object()
        .ok_or_else(|| format!("term not an object: {value}"))?;
    if let Some(iri) = obj.get("i").and_then(|v| v.as_str()) {
        return Ok(Term::Iri(Iri::new(iri)));
    }
    if let Some(label) = obj.get("b").and_then(|v| v.as_str()) {
        return Ok(Term::Blank(BlankNode::new(label)));
    }
    if let Some(lit) = obj.get("l").and_then(|v| v.as_object()) {
        let lex = lit
            .get("lex")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("literal without lexical form: {value}"))?;
        if let Some(lang) = lit.get("lang").and_then(|v| v.as_str()) {
            return Ok(Term::Literal(Literal::lang_string(lex, lang)));
        }
        if let Some(dt) = lit.get("dt").and_then(|v| v.as_str()) {
            return Ok(Term::Literal(Literal::typed(lex, Iri::new(dt))));
        }
        return Ok(Term::Literal(Literal::string(lex)));
    }
    Err(format!("unrecognised term encoding: {value}"))
}

fn encode_graph(graph: &GraphName) -> Option<String> {
    match graph {
        GraphName::Default => None,
        GraphName::Named(iri) => Some(iri.as_str().to_owned()),
    }
}

fn decode_graph(graph: &Option<String>) -> GraphName {
    match graph {
        None => GraphName::Default,
        Some(iri) => GraphName::Named(Iri::new(iri)),
    }
}

fn encode_quad(quad: &Quad) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert("s".to_owned(), encode_term(&quad.subject));
    m.insert(
        "p".to_owned(),
        serde_json::Value::String(quad.predicate.as_str().to_owned()),
    );
    m.insert("o".to_owned(), encode_term(&quad.object));
    m.insert(
        "g".to_owned(),
        match encode_graph(&quad.graph) {
            Some(iri) => serde_json::Value::String(iri),
            None => serde_json::Value::Null,
        },
    );
    serde_json::Value::Object(m)
}

fn decode_quad(value: &serde_json::Value) -> Result<Quad, String> {
    let obj = value
        .as_object()
        .ok_or_else(|| format!("quad not an object: {value}"))?;
    let subject = decode_term(obj.get("s").ok_or("quad missing subject")?)?;
    let predicate = obj
        .get("p")
        .and_then(|v| v.as_str())
        .ok_or("quad missing predicate")?;
    let object = decode_term(obj.get("o").ok_or("quad missing object")?)?;
    let graph = match obj.get("g") {
        None | Some(serde_json::Value::Null) => GraphName::Default,
        Some(serde_json::Value::String(iri)) => GraphName::Named(Iri::new(iri)),
        Some(other) => return Err(format!("bad graph encoding: {other}")),
    };
    Ok(Quad {
        subject,
        predicate: Iri::new(predicate),
        object,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supersede;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bdi-durable-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn probe_quad(n: i64) -> Quad {
        Quad::new(
            Iri::new(format!("http://example.org/data/e{n}")),
            Iri::new("http://example.org/data/value"),
            Term::Literal(Literal::typed(
                n.to_string(),
                Iri::new("http://www.w3.org/2001/XMLSchema#integer"),
            )),
            GraphName::Named(Iri::new("http://example.org/data/graph")),
        )
    }

    #[test]
    fn term_and_quad_encoding_round_trips() {
        let terms = [
            Term::Iri(Iri::new("http://example.org/x")),
            Term::Blank(BlankNode::new("b0")),
            Term::Literal(Literal::string("plain")),
            Term::Literal(Literal::lang_string("hola", "es")),
            Term::Literal(Literal::typed(
                "4.2",
                Iri::new("http://www.w3.org/2001/XMLSchema#double"),
            )),
        ];
        for term in &terms {
            assert_eq!(&decode_term(&encode_term(term)).unwrap(), term);
        }
        let quad = probe_quad(7);
        assert_eq!(decode_quad(&encode_quad(&quad)).unwrap(), quad);
        let default_graph = Quad::new(
            Iri::new("http://example.org/s"),
            Iri::new("http://example.org/p"),
            Term::Iri(Iri::new("http://example.org/o")),
            GraphName::Default,
        );
        assert_eq!(
            decode_quad(&encode_quad(&default_graph)).unwrap(),
            default_graph
        );
    }

    #[test]
    fn create_then_reopen_preserves_answers_and_recovers_writes() {
        let dir = tmp("reopen");
        let (system, store) = supersede::build_running_example_with_store();
        let expected = system.answer(&supersede::exemplary_query()).unwrap();

        let durable = DurableSystem::create(&dir, system, store).unwrap();
        durable.insert_quad(&probe_quad(1)).unwrap();
        durable
            .insert_doc("extra", serde_json::json!({"k": 1}))
            .unwrap();
        drop(durable);

        let reopened = DurableSystem::open(&dir).unwrap();
        assert!(reopened.recovery().snapshot_loaded);
        assert_eq!(reopened.recovery().replayed, 2);
        assert_eq!(
            reopened
                .answer(&supersede::exemplary_query())
                .unwrap()
                .relation,
            expected.relation
        );
        assert!(reopened
            .system()
            .ontology()
            .store()
            .contains(&probe_quad(1)));
        assert_eq!(reopened.store().count("extra"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_counters_survive_bit_exact() {
        let dir = tmp("counters");
        let (system, store) = supersede::build_running_example_with_store();
        let durable = DurableSystem::create(&dir, system, store).unwrap();
        durable
            .insert_doc("c", serde_json::json!({"n": 1}))
            .unwrap();
        durable.insert_quad(&probe_quad(1)).unwrap();
        durable.checkpoint().unwrap();
        durable
            .insert_doc("c", serde_json::json!({"n": 2}))
            .unwrap();

        let quad_muts = durable.system().ontology().store().mutation_count();
        let doc_version = durable.store().data_version();
        let coll_version = durable.store().collection_version("c");
        let validity_sensitive = (quad_muts, doc_version, coll_version);
        drop(durable);

        let reopened = DurableSystem::open(&dir).unwrap();
        assert_eq!(reopened.recovery().replayed, 1); // only the post-checkpoint insert
        assert_eq!(
            (
                reopened.system().ontology().store().mutation_count(),
                reopened.store().data_version(),
                reopened.store().collection_version("c"),
            ),
            validity_sensitive
        );
        assert_eq!(reopened.store().count("c"), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_after_checkpoint_and_reopen_survive_the_next_reopen() {
        let dir = tmp("post-ckpt");
        let (system, store) = supersede::build_running_example_with_store();
        let durable = DurableSystem::create(&dir, system, store).unwrap();
        durable.insert_quad(&probe_quad(1)).unwrap(); // seq 1
        durable.checkpoint().unwrap(); // image.seq = 1, WAL truncated
        drop(durable);

        // The reopened handle must seed its seqs above the image's, or
        // this acknowledged write lands at seq 1 <= image.seq and the
        // next open's replay filter silently discards it.
        let reopened = DurableSystem::open(&dir).unwrap();
        reopened.insert_quad(&probe_quad(2)).unwrap();
        drop(reopened);

        let again = DurableSystem::open(&dir).unwrap();
        assert_eq!(again.recovery().replayed, 1);
        assert!(again.system().ontology().store().contains(&probe_quad(1)));
        assert!(again.system().ontology().store().contains(&probe_quad(2)));

        // And a checkpoint over the recovered handle must cover that
        // write, never regress below the image's seq.
        assert!(again.checkpoint().unwrap() >= 2);
        drop(again);
        let final_open = DurableSystem::open(&dir).unwrap();
        assert!(final_open
            .system()
            .ontology()
            .store()
            .contains(&probe_quad(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_a_directory_with_journaled_records() {
        let dir = tmp("refuse-wal");
        // A never-checkpointed deployment: cold open + journaled writes,
        // so the directory holds a WAL with records but no snapshot.
        let cold = DurableSystem::open(&dir).unwrap();
        cold.insert_quad(&probe_quad(1)).unwrap();
        drop(cold);

        let (system, store) = supersede::build_running_example_with_store();
        assert!(matches!(
            DurableSystem::create(&dir, system, store),
            Err(DurableError::AlreadyInitialised(_))
        ));
        // The refused create must not have eaten the records.
        let recovered = DurableSystem::open(&dir).unwrap();
        assert!(recovered
            .system()
            .ontology()
            .store()
            .contains(&probe_quad(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_an_initialised_directory() {
        let dir = tmp("refuse");
        let (system, store) = supersede::build_running_example_with_store();
        let durable = DurableSystem::create(&dir, system, store).unwrap();
        drop(durable);
        let (system, store) = supersede::build_running_example_with_store();
        assert!(matches!(
            DurableSystem::create(&dir, system, store),
            Err(DurableError::AlreadyInitialised(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_mutations_do_not_journal_or_mutate() {
        let dir = tmp("reject");
        let (system, store) = supersede::build_running_example_with_store();
        let durable = DurableSystem::create(&dir, system, store).unwrap();
        let before = durable.durability_stats();
        assert!(durable.insert_doc("c", serde_json::json!([1])).is_err());
        assert!(durable
            .insert_docs(
                "c",
                vec![serde_json::json!({"ok": 1}), serde_json::json!(2)]
            )
            .is_err());
        assert!(durable.push_row("no-such-wrapper", vec![]).is_err());
        let after = durable.durability_stats();
        assert_eq!(before.wal.records_appended, after.wal.records_appended);
        assert!(!after.poisoned);
        assert_eq!(durable.store().count("c"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_log_and_apply_poisons_then_recovery_applies() {
        let dir = tmp("between");
        let (system, store) = supersede::build_running_example_with_store();
        let durable = DurableSystem::create(&dir, system, store).unwrap();
        durable.inject_crash_before_apply(1);
        let err = durable.insert_quad(&probe_quad(9)).unwrap_err();
        assert!(matches!(err, DurableError::Io(_)));
        // The crashed process never saw the apply…
        assert!(!durable.system().ontology().store().contains(&probe_quad(9)));
        // …and is poisoned for further writes.
        assert!(matches!(
            durable.insert_quad(&probe_quad(10)),
            Err(DurableError::Poisoned(_))
        ));
        assert!(durable.checkpoint().is_err());
        drop(durable);
        // But the op was on disk, so recovery must surface it.
        let reopened = DurableSystem::open(&dir).unwrap();
        assert!(reopened
            .system()
            .ontology()
            .store()
            .contains(&probe_quad(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
