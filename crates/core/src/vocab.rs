//! The BDI ontology vocabulary (Codes 6 and 7) and URI-minting helpers.
//!
//! Namespaces follow the paper exactly:
//! * `G:` — `http://www.essi.upc.edu/~snadal/BDIOntology/Global/`
//! * `S:` — `http://www.essi.upc.edu/~snadal/BDIOntology/Source/`
//! * `M:` — `http://www.essi.upc.edu/~snadal/BDIOntology/Mapping/`
//!
//! The three graphs of `T = ⟨G, S, M⟩` are RDF *named graphs*; their graph
//! IRIs are exposed here too. Source-level URIs are minted the way
//! Algorithm 1 does: `S:DataSource/<source>`, `S:Wrapper/<wrapper>`, and
//! attribute URIs prefixed by their source (`Sourceuri + "/" + attribute`) so
//! that attributes are only ever reused *within* one source (§3.2).

use bdi_rdf::model::{GraphName, Iri};
use bdi_rdf::vocab::LazyIri;

/// `G:` namespace — the Global graph vocabulary (Code 6).
pub mod g {
    use super::*;
    pub const NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/Global/";
    /// `G:Concept` — metaclass of domain concepts (UML classes).
    pub static CONCEPT: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Global/Concept");
    /// `G:Feature` — metaclass of features of analysis (UML attributes).
    pub static FEATURE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Global/Feature");
    /// `G:hasFeature` — links a concept to one of its features.
    pub static HAS_FEATURE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Global/hasFeature");
    /// `G:hasDataType` — links a feature to an `rdfs:Datatype` (§3.1).
    pub static HAS_DATA_TYPE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Global/hasDataType");
}

/// `S:` namespace — the Source graph vocabulary (Code 7).
pub mod s {
    use super::*;
    pub const NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/Source/";
    /// `S:DataSource`.
    pub static DATA_SOURCE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Source/DataSource");
    /// `S:Wrapper` — one schema version of a data source.
    pub static WRAPPER: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Source/Wrapper");
    /// `S:Attribute` — an attribute projected by a wrapper.
    pub static ATTRIBUTE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Source/Attribute");
    /// `S:hasWrapper`.
    pub static HAS_WRAPPER: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Source/hasWrapper");
    /// `S:hasAttribute`.
    pub static HAS_ATTRIBUTE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Source/hasAttribute");
}

/// `M:` namespace — the Mapping graph vocabulary (§3.3).
pub mod m {
    use super::*;
    pub const NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/Mapping/";
    /// `M:mapping` — links a wrapper to the named graph holding its LAV
    /// subgraph of `G`.
    pub static MAPPING: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/Mapping/mapping");
}

/// Graph IRIs for the three graphs of the ontology `T`.
pub mod graphs {
    use super::*;
    pub static GLOBAL: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/graphs/G");
    pub static SOURCE: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/graphs/S");
    pub static MAPPING: LazyIri =
        LazyIri::new("http://www.essi.upc.edu/~snadal/BDIOntology/graphs/M");

    /// The Global graph's name.
    pub fn global() -> GraphName {
        GraphName::Named((*GLOBAL).clone())
    }

    /// The Source graph's name.
    pub fn source() -> GraphName {
        GraphName::Named((*SOURCE).clone())
    }

    /// The Mapping graph's name.
    pub fn mapping() -> GraphName {
        GraphName::Named((*MAPPING).clone())
    }
}

/// `"S:DataSource/" + source` — Algorithm 1, line 2.
pub fn data_source_uri(source: &str) -> Iri {
    Iri::new(format!("{}DataSource/{}", s::NS, source))
}

/// `"S:Wrapper/" + wrapper` — Algorithm 1, line 6.
pub fn wrapper_uri(wrapper: &str) -> Iri {
    Iri::new(format!("{}Wrapper/{}", s::NS, wrapper))
}

/// `Sourceuri + attribute` — Algorithm 1, line 10. Prefixing by source keeps
/// attribute reuse within one source and avoids cross-source semantic
/// clashes (§3.2).
pub fn attribute_uri(source: &str, attribute: &str) -> Iri {
    Iri::new(format!("{}DataSource/{}/{}", s::NS, source, attribute))
}

/// Inverse of [`wrapper_uri`]: the wrapper name of a wrapper URI.
pub fn wrapper_name_of(uri: &Iri) -> Option<&str> {
    uri.as_str().strip_prefix(&format!("{}Wrapper/", s::NS))
}

/// Inverse of [`attribute_uri`]: `(source, attribute)` of an attribute URI.
pub fn attribute_parts_of(uri: &Iri) -> Option<(&str, &str)> {
    let rest = uri
        .as_str()
        .strip_prefix(&format!("{}DataSource/", s::NS))?;
    rest.split_once('/')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uris_follow_algorithm1_shapes() {
        assert_eq!(
            data_source_uri("D1").as_str(),
            "http://www.essi.upc.edu/~snadal/BDIOntology/Source/DataSource/D1"
        );
        assert_eq!(
            wrapper_uri("w1").as_str(),
            "http://www.essi.upc.edu/~snadal/BDIOntology/Source/Wrapper/w1"
        );
        assert_eq!(
            attribute_uri("D1", "lagRatio").as_str(),
            "http://www.essi.upc.edu/~snadal/BDIOntology/Source/DataSource/D1/lagRatio"
        );
    }

    #[test]
    fn inverses_round_trip() {
        assert_eq!(wrapper_name_of(&wrapper_uri("w4")), Some("w4"));
        assert_eq!(
            attribute_parts_of(&attribute_uri("D1", "VoDmonitorId")),
            Some(("D1", "VoDmonitorId"))
        );
        assert_eq!(wrapper_name_of(&data_source_uri("D1")), None);
    }

    #[test]
    fn graph_names_are_distinct() {
        assert_ne!(graphs::global(), graphs::source());
        assert_ne!(graphs::source(), graphs::mapping());
    }
}
