//! Datatype integrity checking (§3.1).
//!
//! Features can be annotated with XSD datatypes via `G:hasDataType`, "widely
//! used in data integrity management". This module puts those annotations to
//! work: given a wrapper and the feature mapping `F`, it validates the
//! wrapper's current output against the declared datatypes and reports every
//! violation — the steward's early-warning signal that a source changed a
//! format *without* announcing a release (the `ChangeFormatOrType` case of
//! Table 5).

use crate::ontology::BdiOntology;
use crate::vocab;
use bdi_rdf::model::Iri;
use bdi_rdf::store::GraphPattern;
use bdi_rdf::vocab::xsd;
use bdi_relational::{Relation, Value};
use bdi_wrappers::{Wrapper, WrapperError};

/// The value kinds a datatype admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedKind {
    Integer,
    Double,
    Boolean,
    String,
    /// Unknown/unmapped datatype: everything is admitted.
    Any,
}

impl ExpectedKind {
    /// Maps an XSD datatype IRI to the relational kind it admits.
    pub fn from_datatype(datatype: &Iri) -> ExpectedKind {
        match datatype.as_str() {
            s if s == xsd::INTEGER.as_str() => ExpectedKind::Integer,
            s if s == xsd::DOUBLE.as_str() => ExpectedKind::Double,
            s if s == xsd::BOOLEAN.as_str() => ExpectedKind::Boolean,
            s if s == xsd::STRING.as_str() || s == xsd::ANY_URI.as_str() => ExpectedKind::String,
            s if s == xsd::DATE_TIME.as_str() => ExpectedKind::Integer, // epoch seconds
            _ => ExpectedKind::Any,
        }
    }

    /// Whether a scalar value conforms. Nulls always conform — absence is a
    /// completeness concern, not a typing one.
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (ExpectedKind::Any, _) => true,
            (ExpectedKind::Integer, Value::Int(_)) => true,
            // Integers widen into doubles (JSON numbers are untyped).
            (ExpectedKind::Double, Value::Float(_) | Value::Int(_)) => true,
            (ExpectedKind::Boolean, Value::Bool(_)) => true,
            (ExpectedKind::String, Value::Str(_)) => true,
            _ => false,
        }
    }
}

/// One typing violation found in a wrapper's output.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeViolation {
    pub wrapper: String,
    /// The physical attribute (local name).
    pub attribute: String,
    /// The feature whose datatype was violated.
    pub feature: Iri,
    pub expected: ExpectedKind,
    /// Kind actually observed.
    pub found: &'static str,
    /// First offending row index.
    pub row: usize,
    /// Number of offending rows in total.
    pub count: usize,
}

/// Errors raised by the validator itself (not violations).
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum TypingError {
    #[error(transparent)]
    Wrapper(#[from] WrapperError),
    #[error("wrapper {0} is not registered in the ontology")]
    UnregisteredWrapper(String),
}

/// The declared datatype of a feature, if any.
pub fn feature_datatype(ontology: &BdiOntology, feature: &Iri) -> Option<Iri> {
    ontology
        .store()
        .iri_objects(
            feature,
            &vocab::g::HAS_DATA_TYPE,
            &GraphPattern::Named((*vocab::graphs::GLOBAL).clone()),
        )
        .into_iter()
        .next()
}

/// Validates one wrapper's *current* output against the datatypes of the
/// features its attributes map to. Returns all violations (empty = clean).
pub fn validate_wrapper(
    ontology: &BdiOntology,
    wrapper: &dyn Wrapper,
) -> Result<Vec<TypeViolation>, TypingError> {
    let wrapper_uri = vocab::wrapper_uri(wrapper.name());
    if !ontology.is_wrapper(&wrapper_uri) {
        return Err(TypingError::UnregisteredWrapper(wrapper.name().to_owned()));
    }
    let relation = wrapper.scan()?;
    Ok(validate_relation(
        ontology,
        wrapper.name(),
        wrapper.source(),
        &relation,
    ))
}

/// Validates an already-scanned relation (useful in tests and pipelines).
pub fn validate_relation(
    ontology: &BdiOntology,
    wrapper_name: &str,
    source: &str,
    relation: &Relation,
) -> Vec<TypeViolation> {
    let mut violations = Vec::new();
    for (col, attr) in relation.schema().attributes().iter().enumerate() {
        let attr_uri = vocab::attribute_uri(source, attr.name());
        let Some(feature) = ontology.feature_of_attribute(&attr_uri) else {
            continue; // unmapped attributes carry no typing contract
        };
        let Some(datatype) = feature_datatype(ontology, &feature) else {
            continue;
        };
        let expected = ExpectedKind::from_datatype(&datatype);
        let mut first_bad: Option<(usize, &'static str)> = None;
        let mut count = 0;
        for (row_idx, row) in relation.rows().iter().enumerate() {
            let value = &row[col];
            if !expected.admits(value) {
                count += 1;
                if first_bad.is_none() {
                    first_bad = Some((row_idx, value.kind()));
                }
            }
        }
        if let Some((row, found)) = first_bad {
            violations.push(TypeViolation {
                wrapper: wrapper_name.to_owned(),
                attribute: attr.name().to_owned(),
                feature: feature.clone(),
                expected,
                found,
                row,
                count,
            });
        }
    }
    violations
}

/// Validates every wrapper in a registry; returns violations grouped.
pub fn validate_all(
    ontology: &BdiOntology,
    registry: &bdi_wrappers::WrapperRegistry,
) -> Result<Vec<TypeViolation>, TypingError> {
    let mut out = Vec::new();
    for wrapper in registry.iter() {
        out.extend(validate_wrapper(ontology, wrapper.as_ref())?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supersede;
    use bdi_relational::Schema;

    #[test]
    fn running_example_is_type_clean() {
        let system = supersede::build_running_example();
        let violations = validate_all(system.ontology(), system.registry()).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn format_drift_is_detected() {
        let system = supersede::build_running_example();
        // Simulate the VoD source silently switching lagRatio to a string.
        let bad = Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![
                vec![Value::Int(12), Value::Str("0.75".into())],
                vec![Value::Int(18), Value::Float(0.1)],
                vec![Value::Int(19), Value::Str("n/a".into())],
            ],
        )
        .unwrap();
        let violations = validate_relation(system.ontology(), "w1", "D1", &bad);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.attribute, "lagRatio");
        assert_eq!(v.expected, ExpectedKind::Double);
        assert_eq!(v.found, "string");
        assert_eq!(v.row, 0);
        assert_eq!(v.count, 2);
    }

    #[test]
    fn integers_widen_into_doubles() {
        let system = supersede::build_running_example();
        let ok = Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![vec![Value::Int(12), Value::Int(1)]], // lagRatio = 1 (int)
        )
        .unwrap();
        assert!(validate_relation(system.ontology(), "w1", "D1", &ok).is_empty());
    }

    #[test]
    fn nulls_always_conform() {
        let system = supersede::build_running_example();
        let with_nulls = Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["lagRatio"]).unwrap(),
            vec![vec![Value::Int(12), Value::Null]],
        )
        .unwrap();
        assert!(validate_relation(system.ontology(), "w1", "D1", &with_nulls).is_empty());
    }

    #[test]
    fn unmapped_attributes_are_skipped() {
        let system = supersede::build_running_example();
        let rel = Relation::new(
            Schema::from_parts(&["VoDmonitorId"], &["unknownAttr"]).unwrap(),
            vec![vec![Value::Int(12), Value::Bool(true)]],
        )
        .unwrap();
        assert!(validate_relation(system.ontology(), "w1", "D1", &rel).is_empty());
    }

    #[test]
    fn unregistered_wrapper_is_an_error() {
        let system = supersede::build_running_example();
        let w = bdi_wrappers::TableWrapper::new(
            "ghost",
            "D9",
            Schema::from_parts::<&str>(&["id"], &[]).unwrap(),
            vec![],
        )
        .unwrap();
        assert!(matches!(
            validate_wrapper(system.ontology(), &w),
            Err(TypingError::UnregisteredWrapper(_))
        ));
    }

    #[test]
    fn expected_kind_mapping() {
        assert_eq!(
            ExpectedKind::from_datatype(&xsd::INTEGER),
            ExpectedKind::Integer
        );
        assert_eq!(
            ExpectedKind::from_datatype(&xsd::DOUBLE),
            ExpectedKind::Double
        );
        assert_eq!(
            ExpectedKind::from_datatype(&xsd::BOOLEAN),
            ExpectedKind::Boolean
        );
        assert_eq!(
            ExpectedKind::from_datatype(&xsd::STRING),
            ExpectedKind::String
        );
        assert_eq!(
            ExpectedKind::from_datatype(&Iri::new("http://custom/dt")),
            ExpectedKind::Any
        );
    }
}
