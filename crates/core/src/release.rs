//! Releases and Algorithm 1 (`NewRelease`) — §4.
//!
//! A **release** `R = ⟨w, G, F⟩` announces a new wrapper `w` (a new schema
//! version of some source), the subgraph `G` of the Global graph the wrapper
//! contributes to (its LAV mapping), and the function `F` mapping each of the
//! wrapper's attributes to a feature. The data steward creates releases;
//! [`apply_release`] adapts the ontology `T` — nothing else in the system
//! (in particular no analyst query) has to change.

use crate::ontology::BdiOntology;
use crate::vocab;
use bdi_rdf::model::{GraphName, Iri, Term, Triple};
use bdi_rdf::vocab::{owl, rdf};
use bdi_wrappers::{Wrapper, WrapperRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors raised when validating or applying a release.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ReleaseError {
    #[error("attribute {0} of wrapper {1} has no feature mapping in F")]
    UnmappedAttribute(String, String),
    #[error("F maps unknown attribute {0} (not in wrapper {1}'s schema)")]
    UnknownAttribute(String, String),
    #[error("feature {0} (mapped by F) is not a G:Feature in the Global graph")]
    UnknownFeature(String),
    #[error("feature {0} (mapped by F) does not appear in the release's LAV subgraph")]
    FeatureNotInLavGraph(String),
    #[error("LAV triple `{0}` is not present in the Global graph; a wrapper's mapping must be a subgraph of G")]
    LavTripleNotInG(String),
}

/// A release `R = ⟨w, G, F⟩`.
pub struct Release {
    /// The new wrapper (`R.w`).
    pub wrapper: Arc<dyn Wrapper>,
    /// The LAV subgraph of the Global graph (`R.G`).
    pub lav_graph: Vec<Triple>,
    /// The attribute → feature function (`R.F`), keyed by the wrapper's
    /// *local* attribute names.
    pub mappings: BTreeMap<String, Iri>,
}

impl Release {
    pub fn new(
        wrapper: Arc<dyn Wrapper>,
        lav_graph: Vec<Triple>,
        mappings: BTreeMap<String, Iri>,
    ) -> Self {
        Self {
            wrapper,
            lav_graph,
            mappings,
        }
    }
}

/// What Algorithm 1 did — the measurements Figure 11 is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseStats {
    pub wrapper: String,
    pub source: String,
    /// Whether a new `S:DataSource` node was created.
    pub new_source: bool,
    /// Triples added to the Source graph `S`.
    pub source_triples_added: usize,
    /// Triples added to the Mapping graph `M` plus the wrapper's LAV named
    /// graph.
    pub mapping_triples_added: usize,
    /// Attributes newly created in `S`.
    pub attributes_created: usize,
    /// Attributes reused from earlier versions of the same source.
    pub attributes_reused: usize,
}

/// Validates a release against the current ontology without applying it.
pub fn validate_release(ontology: &BdiOntology, release: &Release) -> Result<(), ReleaseError> {
    let wrapper_name = release.wrapper.name();
    let schema = release.wrapper.schema();

    // F must be total on the wrapper's attributes and only mention them.
    for attr in schema.names() {
        if !release.mappings.contains_key(attr) {
            return Err(ReleaseError::UnmappedAttribute(
                attr.to_owned(),
                wrapper_name.to_owned(),
            ));
        }
    }
    for attr in release.mappings.keys() {
        if schema.index_of(attr).is_none() {
            return Err(ReleaseError::UnknownAttribute(
                attr.clone(),
                wrapper_name.to_owned(),
            ));
        }
    }

    // Every mapped feature must be a feature of G and a vertex of R.G.
    for feature in release.mappings.values() {
        if !ontology.is_feature(feature) {
            return Err(ReleaseError::UnknownFeature(feature.as_str().to_owned()));
        }
        let in_lav = release.lav_graph.iter().any(|t| {
            t.subject == Term::Iri(feature.clone()) || t.object == Term::Iri(feature.clone())
        });
        if !in_lav {
            return Err(ReleaseError::FeatureNotInLavGraph(
                feature.as_str().to_owned(),
            ));
        }
    }

    // The LAV graph must be a subgraph of G.
    for triple in &release.lav_graph {
        let quad = bdi_rdf::model::Quad {
            subject: triple.subject.clone(),
            predicate: triple.predicate.clone(),
            object: triple.object.clone(),
            graph: vocab::graphs::global(),
        };
        if !ontology.store().contains(&quad) {
            return Err(ReleaseError::LavTripleNotInG(triple.to_string()));
        }
    }
    Ok(())
}

/// Algorithm 1 — adapts `T` to a new release and registers the wrapper.
///
/// Follows the paper line by line: register the data source if new (l. 3–5),
/// register the wrapper and link it (l. 6–8), register each attribute —
/// reusing URIs within the same source (l. 9–15), record the LAV named graph
/// in `M` (l. 16) and serialize `F` as `owl:sameAs` links (l. 17–21).
/// Complexity is linear in `|R|`.
pub fn apply_release(
    ontology: &BdiOntology,
    registry: &mut WrapperRegistry,
    release: Release,
) -> Result<ReleaseStats, ReleaseError> {
    validate_release(ontology, &release)?;

    let store = ontology.store();
    let s_graph = vocab::graphs::source();
    let m_graph = vocab::graphs::mapping();

    let source = release.wrapper.source().to_owned();
    let wrapper_name = release.wrapper.name().to_owned();
    let source_uri = vocab::data_source_uri(&source);
    let wrapper_uri = vocab::wrapper_uri(&wrapper_name);

    let mut source_triples_added = 0;
    let mut mapping_triples_added = 0;

    // Lines 2–5: register the data source if it is new.
    let new_source = !ontology.is_data_source(&source_uri);
    if new_source && store.insert_in(&s_graph, &source_uri, &*rdf::TYPE, &*vocab::s::DATA_SOURCE) {
        source_triples_added += 1;
    }

    // Lines 6–8: register the wrapper and link it to the source.
    if store.insert_in(&s_graph, &wrapper_uri, &*rdf::TYPE, &*vocab::s::WRAPPER) {
        source_triples_added += 1;
    }
    if store.insert_in(&s_graph, &source_uri, &*vocab::s::HAS_WRAPPER, &wrapper_uri) {
        source_triples_added += 1;
    }

    // Lines 9–15: register attributes, reusing within the source.
    let mut attributes_created = 0;
    let mut attributes_reused = 0;
    for attr in release.wrapper.schema().names() {
        let attr_uri = vocab::attribute_uri(&source, attr);
        let exists = store.contains(&bdi_rdf::model::Quad::new(
            attr_uri.clone(),
            (*rdf::TYPE).clone(),
            (*vocab::s::ATTRIBUTE).clone(),
            s_graph.clone(),
        ));
        if exists {
            attributes_reused += 1;
        } else {
            store.insert_in(&s_graph, &attr_uri, &*rdf::TYPE, &*vocab::s::ATTRIBUTE);
            source_triples_added += 1;
            attributes_created += 1;
        }
        if store.insert_in(&s_graph, &wrapper_uri, &*vocab::s::HAS_ATTRIBUTE, &attr_uri) {
            source_triples_added += 1;
        }
    }

    // Line 16: record the LAV mapping — the named graph (identified by the
    // wrapper URI) holding the subgraph of G, plus the M:mapping triple.
    let lav_graph_name = GraphName::Named(wrapper_uri.clone());
    for triple in &release.lav_graph {
        if store.insert_in(
            &lav_graph_name,
            triple.subject.clone(),
            triple.predicate.clone(),
            triple.object.clone(),
        ) {
            mapping_triples_added += 1;
        }
    }
    if store.insert_in(&m_graph, &wrapper_uri, &*vocab::m::MAPPING, &wrapper_uri) {
        mapping_triples_added += 1;
    }

    // Lines 17–21: serialize F as owl:sameAs links in M.
    for (attr, feature) in &release.mappings {
        let attr_uri = vocab::attribute_uri(&source, attr);
        if store.insert_in(&m_graph, &attr_uri, &*owl::SAME_AS, feature) {
            mapping_triples_added += 1;
        }
    }

    registry.register(Arc::clone(&release.wrapper));

    Ok(ReleaseStats {
        wrapper: wrapper_name,
        source,
        new_source,
        source_triples_added,
        mapping_triples_added,
        attributes_created,
        attributes_reused,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_relational::{Schema, Value};
    use bdi_wrappers::TableWrapper;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://e/{s}"))
    }

    fn ontology() -> BdiOntology {
        let o = BdiOntology::new();
        o.add_concept(&iri("Monitor"));
        o.add_id_feature(&iri("monitorId"));
        o.attach_feature(&iri("Monitor"), &iri("monitorId"))
            .unwrap();
        o.add_feature(&iri("lagRatio"));
        o.add_concept(&iri("InfoMonitor"));
        o.attach_feature(&iri("InfoMonitor"), &iri("lagRatio"))
            .unwrap();
        o.add_object_property(&iri("generatesQoS"), &iri("Monitor"), &iri("InfoMonitor"))
            .unwrap();
        o
    }

    fn lav_graph() -> Vec<Triple> {
        vec![
            Triple::new(
                iri("Monitor"),
                (*vocab::g::HAS_FEATURE).clone(),
                iri("monitorId"),
            ),
            Triple::new(iri("Monitor"), iri("generatesQoS"), iri("InfoMonitor")),
            Triple::new(
                iri("InfoMonitor"),
                (*vocab::g::HAS_FEATURE).clone(),
                iri("lagRatio"),
            ),
        ]
    }

    fn wrapper(name: &str, attrs: (&str, &str)) -> Arc<dyn Wrapper> {
        Arc::new(
            TableWrapper::new(
                name,
                "D1",
                Schema::from_parts(&[attrs.0], &[attrs.1]).unwrap(),
                vec![vec![Value::Int(12), Value::Float(0.75)]],
            )
            .unwrap(),
        )
    }

    fn release(name: &str, ratio_attr: &str) -> Release {
        Release::new(
            wrapper(name, ("VoDmonitorId", ratio_attr)),
            lav_graph(),
            BTreeMap::from([
                ("VoDmonitorId".to_owned(), iri("monitorId")),
                (ratio_attr.to_owned(), iri("lagRatio")),
            ]),
        )
    }

    #[test]
    fn first_release_registers_everything() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        let stats = apply_release(&o, &mut reg, release("w1", "lagRatio")).unwrap();
        assert!(stats.new_source);
        assert_eq!(stats.attributes_created, 2);
        assert_eq!(stats.attributes_reused, 0);
        // 1 source + 1 wrapper-type + 1 hasWrapper + 2 attr-type + 2 hasAttribute = 7
        assert_eq!(stats.source_triples_added, 7);
        // 3 LAV triples + 1 M:mapping + 2 sameAs = 6
        assert_eq!(stats.mapping_triples_added, 6);
        assert!(reg.contains("w1"));
        assert!(o.is_wrapper(&vocab::wrapper_uri("w1")));
    }

    #[test]
    fn second_version_reuses_source_and_attributes() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        apply_release(&o, &mut reg, release("w1", "lagRatio")).unwrap();
        // w4 renames lagRatio → bufferingRatio; VoDmonitorId is reused.
        let stats = apply_release(&o, &mut reg, release("w4", "bufferingRatio")).unwrap();
        assert!(!stats.new_source);
        assert_eq!(stats.attributes_reused, 1); // VoDmonitorId
        assert_eq!(stats.attributes_created, 1); // bufferingRatio
                                                 // 1 wrapper-type + 1 hasWrapper + 1 attr-type + 2 hasAttribute = 5
        assert_eq!(stats.source_triples_added, 5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lav_mapping_is_queryable_after_release() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        apply_release(&o, &mut reg, release("w1", "lagRatio")).unwrap();
        let concept = o.concept_of(&iri("lagRatio")).unwrap();
        let wrappers = o.wrappers_providing_feature(&concept, &iri("lagRatio"));
        assert_eq!(wrappers, vec![vocab::wrapper_uri("w1")]);
        let attr = o
            .attribute_for_feature(&vocab::wrapper_uri("w1"), &iri("lagRatio"))
            .unwrap();
        assert_eq!(attr, vocab::attribute_uri("D1", "lagRatio"));
    }

    #[test]
    fn unmapped_attribute_is_rejected() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        let r = Release::new(
            wrapper("w1", ("VoDmonitorId", "lagRatio")),
            lav_graph(),
            BTreeMap::from([("VoDmonitorId".to_owned(), iri("monitorId"))]),
        );
        assert!(matches!(
            apply_release(&o, &mut reg, r),
            Err(ReleaseError::UnmappedAttribute(a, _)) if a == "lagRatio"
        ));
    }

    #[test]
    fn lav_triples_must_exist_in_g() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        let mut bad = lav_graph();
        bad.push(Triple::new(
            iri("Monitor"),
            iri("nonexistent"),
            iri("InfoMonitor"),
        ));
        let r = Release::new(
            wrapper("w1", ("VoDmonitorId", "lagRatio")),
            bad,
            BTreeMap::from([
                ("VoDmonitorId".to_owned(), iri("monitorId")),
                ("lagRatio".to_owned(), iri("lagRatio")),
            ]),
        );
        assert!(matches!(
            apply_release(&o, &mut reg, r),
            Err(ReleaseError::LavTripleNotInG(_))
        ));
    }

    #[test]
    fn unknown_feature_is_rejected() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        let r = Release::new(
            wrapper("w1", ("VoDmonitorId", "lagRatio")),
            lav_graph(),
            BTreeMap::from([
                ("VoDmonitorId".to_owned(), iri("monitorId")),
                ("lagRatio".to_owned(), iri("zzz")),
            ]),
        );
        assert!(matches!(
            apply_release(&o, &mut reg, r),
            Err(ReleaseError::UnknownFeature(_))
        ));
    }

    #[test]
    fn reapplying_a_release_is_idempotent_on_the_store() {
        let o = ontology();
        let mut reg = WrapperRegistry::new();
        apply_release(&o, &mut reg, release("w1", "lagRatio")).unwrap();
        let len = o.store().len();
        let stats = apply_release(&o, &mut reg, release("w1", "lagRatio")).unwrap();
        assert_eq!(o.store().len(), len);
        assert_eq!(stats.source_triples_added, 0);
        assert_eq!(stats.mapping_triples_added, 0);
    }
}
