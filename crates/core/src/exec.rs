//! Execution of rewritten queries against the wrappers.
//!
//! Each walk compiles to a relational expression; results are aligned to a
//! common schema named by the requested **features** (so `w1.lagRatio` and
//! `w4.bufferingRatio` both land in the `lagRatio` column), then unioned.
//! IDs that the rewriting added but the analyst did not request are
//! projected out here — "those can be easily projected out at the final
//! step" (§5.2).

use crate::ontology::BdiOntology;
use crate::rewrite::{walk::prefixed_attr_name, Rewriting, Walk};
use bdi_rdf::model::Iri;
use bdi_relational::{ops, AlgebraError, Attribute, Relation, RelationError, Schema, SourceResolver};

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ExecError {
    #[error(transparent)]
    Algebra(#[from] AlgebraError),
    #[error(transparent)]
    Relation(#[from] RelationError),
    #[error("walk over {{{wrappers}}} does not provide requested feature {feature}")]
    MissingFeature { wrappers: String, feature: String },
    #[error("query projects no features")]
    EmptyProjection,
}

/// The answer to an OMQ.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The result relation; columns are the requested features, in π order,
    /// named by their local names.
    pub relation: Relation,
    /// Rendered relational algebra of each executed walk (diagnostics).
    pub walk_exprs: Vec<String>,
}

/// The output schema for a feature projection: one column per feature,
/// named by local name, flagged ID when the feature is one.
fn target_schema(ontology: &BdiOntology, features: &[Iri]) -> Result<Schema, ExecError> {
    if features.is_empty() {
        return Err(ExecError::EmptyProjection);
    }
    let attrs: Vec<Attribute> = features
        .iter()
        .map(|f| {
            if ontology.is_id_feature(f) {
                Attribute::id(f.local_name())
            } else {
                Attribute::non_id(f.local_name())
            }
        })
        .collect();
    Ok(Schema::new(attrs).map_err(RelationError::Schema)?)
}

/// For one walk, the physical column (prefixed attribute name) providing
/// each requested feature.
fn walk_columns(
    ontology: &BdiOntology,
    walk: &Walk,
    features: &[Iri],
) -> Result<Vec<String>, ExecError> {
    let mut columns = Vec::with_capacity(features.len());
    for feature in features {
        let found = walk
            .all_projections()
            .find(|(_, attr)| ontology.feature_of_attribute(attr).as_ref() == Some(feature));
        match found {
            Some((_, attr)) => columns.push(prefixed_attr_name(attr)),
            None => {
                return Err(ExecError::MissingFeature {
                    wrappers: walk
                        .wrappers()
                        .iter()
                        .map(|w| w.local_name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    feature: feature.as_str().to_owned(),
                })
            }
        }
    }
    Ok(columns)
}

/// Evaluates the rewriting against the wrappers and projects the final
/// feature columns.
pub fn execute(
    ontology: &BdiOntology,
    resolver: &dyn SourceResolver,
    rewriting: &Rewriting,
) -> Result<QueryAnswer, ExecError> {
    let features = &rewriting.well_formed.omq.pi;
    let schema = target_schema(ontology, features)?;

    if rewriting.walks.is_empty() {
        return Ok(QueryAnswer {
            relation: Relation::empty(schema),
            walk_exprs: Vec::new(),
        });
    }

    let mut walk_exprs = Vec::with_capacity(rewriting.walks.len());
    let mut acc: Option<Relation> = None;
    for walk in &rewriting.walks {
        let expr = walk.to_rel_expr_full(ontology);
        walk_exprs.push(expr.to_string());
        let rel = expr.eval(resolver)?;
        let columns = walk_columns(ontology, walk, features)?;
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let aligned = ops::align_to(&rel, &column_refs, &schema)?;
        acc = Some(match acc {
            None => aligned,
            Some(prev) => ops::union(&prev, &aligned)?,
        });
    }

    Ok(QueryAnswer {
        relation: acc.expect("walks is non-empty"),
        walk_exprs,
    })
}
