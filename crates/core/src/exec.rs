//! Execution of rewritten queries against the wrappers.
//!
//! Each walk compiles to a plan; results are aligned to a common schema
//! named by the requested **features** (so `w1.lagRatio` and
//! `w4.bufferingRatio` both land in the `lagRatio` column), then unioned.
//! IDs that the rewriting added but the analyst did not request are
//! projected out here — "those can be easily projected out at the final
//! step" (§5.2).
//!
//! Two engines answer the same [`Rewriting`]:
//!
//! * **Streaming** (the default, [`Engine::Streaming`]): every walk compiles
//!   to a [`PhysicalPlan`] — projection pushdown computed from the walk's
//!   projection sets, renames fused into the [`bdi_relational::ScanRequest`]s,
//!   and each [`FeatureFilter`] predicate (equality, IN-set, range) pushed
//!   to the providing wrapper's scan when the wrapper claims it, or kept as
//!   a mediator-side residual filter directly above that scan when it does
//!   not. At run time, hash joins pass information sideways: a small,
//!   selective build-side key set is injected into the probe wrapper's
//!   scan as an IN-set before that scan is issued
//!   ([`ExecOptions::semijoin_max_keys`]), and scans can run cursor-only
//!   instead of materializing in the scan cache
//!   ([`ExecOptions::scan_cache`]). Wrapper rows arrive through the
//!   streaming batch-scan contract
//!   ([`bdi_relational::plan::PlanSource::scan_batches`]) — interned one
//!   bounded batch at a time, never materialized as a whole value-space
//!   relation. The per-walk plans execute in parallel on `crossbeam` scoped
//!   threads against one shared [`ExecContext`] (so wrappers appearing in
//!   many walks are scanned and interned once, and hash-join build sides are
//!   reused per ID attribute); each walk emits a deduplicated *sorted run*
//!   and the runs are k-way merged into the canonical union. A single-walk
//!   query prefetches its scans concurrently
//!   ([`bdi_relational::plan::execute_plan_prefetched`]) so source reads
//!   overlap each other and the join pipeline.
//! * **Eager** ([`Engine::Eager`]): the original §2.2 operator-at-a-time
//!   evaluation through [`bdi_relational::RelExpr`] / [`ops`]. It stays as
//!   the executable reference the streaming engine is differentially tested
//!   against (`tests/props_exec.rs`): the two produce identical rows in
//!   identical order under `Value` equality (interning canonicalizes each
//!   Eq class of numerics — where `Int(2)` and `Float(2.0)` both occur, the
//!   streaming answer surfaces one representative of that equal pair).
//!
//! Row-order contract (shared by both engines): a single-walk answer keeps
//! the walk's natural evaluation order; a multi-walk answer is the canonical
//! set form — deduplicated and sorted; any answer produced under a
//! [`FeatureFilter`] is always sorted (pushing σ below a join legitimately
//! changes join build-side choices, so natural order is not stable there).

use crate::ontology::BdiOntology;
use crate::rewrite::{walk::prefixed_attr_name, Rewriting, Walk};
use bdi_rdf::model::Iri;
use bdi_relational::plan::{
    self, ColumnFilter, ExecContext, ExecPolicy, Operator, PhysicalPlan, PlanError, Predicate,
    RowSet, ScanCache, DEFAULT_SEMIJOIN_MAX_KEYS,
};
use bdi_relational::{
    ops, AlgebraError, Attribute, PlanSource, Relation, RelationError, ScanRequest, Schema,
    SourceResolver, Tuple, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ExecError {
    #[error(transparent)]
    Algebra(#[from] AlgebraError),
    #[error(transparent)]
    Relation(#[from] RelationError),
    #[error(transparent)]
    Plan(#[from] PlanError),
    #[error("walk over {{{wrappers}}} does not provide requested feature {feature}")]
    MissingFeature { wrappers: String, feature: String },
    #[error("query projects no features")]
    EmptyProjection,
    #[error("filter feature {0} is not in the query's projection π")]
    FilterNotProjected(String),
}

/// Which execution engine answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Compiled physical plans, pushdown, interned batches, parallel walks.
    #[default]
    Streaming,
    /// The §2.2 eager operator evaluation — the reference implementation.
    Eager,
}

/// A selection `predicate(feature)`, pushed down to the wrapper providing
/// the feature in each walk (when that wrapper claims it — otherwise it
/// runs as a mediator-side residual filter directly above the scan). The
/// feature must appear in the query's π; any feature qualifies, ID or not,
/// and any [`Predicate`] (equality, IN-set, range).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeatureFilter {
    pub feature: Iri,
    pub predicate: Predicate,
}

impl FeatureFilter {
    pub fn new(feature: Iri, predicate: Predicate) -> Self {
        Self { feature, predicate }
    }

    /// Equality sugar — the PR 2 `FeatureFilter` shape.
    pub fn eq(feature: Iri, value: Value) -> Self {
        Self {
            feature,
            predicate: Predicate::Eq(value),
        }
    }
}

/// What to do when a source fails permanently mid-query (its wrapper's
/// scan raised a [`RelationError::SourceFailure`] that retries could not
/// cure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourceFailurePolicy {
    /// Abort the query with the source's error (the default — identical to
    /// the pre-fault-tolerance behaviour).
    #[default]
    Fail,
    /// Drop every walk that touches the failed source and answer from the
    /// surviving walks, reporting the degradation through
    /// [`QueryAnswer::source_failures`] — graceful, never silent. Only
    /// source failures degrade; plan bugs, arity violations and deadline
    /// expiry still abort.
    Degrade,
}

/// One degraded source in a partial answer: which wrapper failed, how it
/// was classified, and how many walks the answer lost to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFailure {
    /// The failing wrapper's name.
    pub wrapper: String,
    /// Whether every failure of this wrapper was transient (retryable); a
    /// single permanent failure makes the whole report permanent.
    pub transient: bool,
    /// Human-readable cause of the first failure observed for this wrapper.
    pub cause: String,
    /// Walks dropped from the answer because they touch this wrapper.
    pub walks_dropped: usize,
}

/// Execution knobs. [`ExecOptions::default`] is what [`crate::system`] uses:
/// the streaming engine with projection pushdown and parallel walks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    pub engine: Engine,
    /// Push each walk's projection set into the wrappers' scans. When off,
    /// scans surface every attribute the Source graph records for the
    /// wrapper (the pre-pushdown behaviour, kept measurable for the bench).
    pub pushdown: bool,
    /// Execute per-walk plans on scoped threads (streaming engine only).
    pub parallel: bool,
    /// Selections pushed into the scans (conjunction; empty = unfiltered).
    pub filters: Vec<FeatureFilter>,
    /// Reuse compiled plans across queries through the system's release-seq
    /// keyed cache (default on; plans never depend on wrapper data, so this
    /// is always sound).
    pub cache_plans: bool,
    /// Reuse the system's persistent [`ExecContext`] — interned scans and
    /// join build sides — across queries. On by default: cached scans are
    /// keyed by each wrapper's
    /// [`data_version`](bdi_wrappers::Wrapper::data_version), so
    /// wrapper-data mutations between releases — `TableWrapper::push`,
    /// document inserts — can never be served stale. Turn it off to force a
    /// fresh context per query, e.g. for custom wrapper kinds that mutate
    /// without implementing `data_version`.
    pub reuse_scans: bool,
    /// Semi-join sideways information passing: when a hash join's build
    /// side finishes with at most this many distinct keys, they are
    /// injected as an IN-set filter into the probe wrapper's scan request —
    /// rows the join would discard are never shipped out of the source.
    /// Wrappers that claim the IN-set ([`bdi_wrappers::Wrapper::
    /// claims_filter`]) filter natively (`TableWrapper` in-scan,
    /// `JsonWrapper` through its `$match` translation); for ones that do
    /// not, the join's own hash probe is the residual semi-join, so answers
    /// are engine-independent either way. `0` disables the pass. A
    /// runtime-only knob: it never shapes the compiled plan, so the
    /// system's plan cache normalizes it out of the cache key.
    pub semijoin_max_keys: usize,
    /// Degrade the semi-join pass to a Bloom filter instead of disabling it
    /// when the build side's distinct keys exceed `semijoin_max_keys` (up
    /// to [`bdi_relational::plan::BLOOM_SEMIJOIN_MAX_KEYS`]). False
    /// positives only ship extra probe rows the join then discards, so
    /// answers are identical either way. Runtime-only (normalized out of
    /// the plan-cache key) like `semijoin_max_keys`.
    pub bloom_semijoins: bool,
    /// Order each walk's joins by estimated output cardinality (from the
    /// wrappers' column sketches, [`bdi_wrappers::Wrapper::column_stats`])
    /// instead of their syntactic order. Only engaged where the row-order
    /// contract already sorts the answer (multi-walk rewritings or filtered
    /// queries — a single unfiltered walk keeps its natural order and its
    /// syntactic join tree), and only when every wrapper in the walk offers
    /// a row estimate; otherwise the syntactic order is kept. A
    /// *compile-time* knob: it shapes the plan, so it stays in the
    /// plan-cache key.
    pub cost_based_joins: bool,
    /// How scans materialize through the execution context (see
    /// [`ScanCache`]): `Auto` (default) caches unless a source's size hint
    /// exceeds the context's value-cap watermark, `Always` forces the
    /// pre-cursor behaviour, `Never` pulls every scan cursor-only — the
    /// mode for one-shot queries over sources larger than RAM. Runtime-only
    /// (normalized out of the plan-cache key) like `semijoin_max_keys`.
    pub scan_cache: ScanCache,
    /// Per-query deadline, measured from [`ExecOptions::policy`] (i.e. from
    /// when execution starts). Every operator, scan fill and prefetch queue
    /// wait checks it, so a stalled source aborts the query with
    /// [`bdi_relational::plan::PlanError::DeadlineExceeded`] within one
    /// page-fetch budget of the deadline instead of hanging. `None` (the
    /// default) never expires. Runtime-only (normalized out of the
    /// plan-cache key); the eager reference engine ignores it.
    pub deadline: Option<Duration>,
    /// What a permanently failed source does to the answer: abort
    /// ([`SourceFailurePolicy::Fail`], the default) or drop that source's
    /// walks and return a partial answer with a [`SourceFailure`] report
    /// ([`SourceFailurePolicy::Degrade`]). Runtime-only (normalized out of
    /// the plan-cache key); the eager reference engine ignores it.
    pub on_source_failure: SourceFailurePolicy,
    /// Per-query row limit: an answer holding more rows than this is
    /// truncated to the first `max_rows` (in the answer's contractual row
    /// order) and flagged [`QueryAnswer::truncated`]. `None` (the default)
    /// never truncates. The serving front end maps a client's row budget
    /// onto this knob. Runtime-only (normalized out of the plan-cache key),
    /// and honoured by *both* engines — truncation happens after the answer
    /// relation is assembled, so it can never change which rows exist, only
    /// how many are returned.
    pub max_rows: Option<usize>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            engine: Engine::Streaming,
            pushdown: true,
            parallel: true,
            filters: Vec::new(),
            cache_plans: true,
            reuse_scans: true,
            semijoin_max_keys: DEFAULT_SEMIJOIN_MAX_KEYS,
            bloom_semijoins: true,
            cost_based_joins: true,
            scan_cache: ScanCache::Auto,
            deadline: None,
            on_source_failure: SourceFailurePolicy::Fail,
            max_rows: None,
        }
    }
}

impl ExecOptions {
    /// The relational-layer runtime [`ExecPolicy`] these options select —
    /// read at execution time from the *caller's* options, never from a
    /// cached [`CompiledQuery`] (the plan cache normalizes runtime knobs
    /// out of its keys, so a cached entry's stored options may not carry
    /// them).
    pub fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            semijoin_max_keys: self.semijoin_max_keys,
            bloom_semijoins: self.bloom_semijoins,
            scan_cache: self.scan_cache,
            deadline: self.deadline.and_then(|d| Instant::now().checked_add(d)),
        }
    }

    /// The full bundle of runtime (execution-only) knobs these options
    /// select — the [`ExecPolicy`] plus the knobs resolved at the core
    /// layer (failure policy, row limit). Like [`ExecOptions::policy`],
    /// always derived from the *caller's* options, never from a cached
    /// [`CompiledQuery`].
    pub fn runtime(&self) -> ExecRuntime {
        ExecRuntime {
            policy: self.policy(),
            on_source_failure: self.on_source_failure,
            max_rows: self.max_rows,
        }
    }
}

/// The runtime knobs one execution of a [`CompiledQuery`] runs under: the
/// relational-layer [`ExecPolicy`] (semi-joins, scan-cache mode, deadline)
/// plus the core-layer source-failure policy and row limit. The system's
/// plan cache normalizes all of these out of its keys, so a cached plan is
/// executed under the knobs of whoever *this* call is for — never the knobs
/// it happened to be compiled under.
#[derive(Debug, Clone, Copy)]
pub struct ExecRuntime {
    /// Relational-layer execution policy (see [`ExecOptions::policy`]).
    pub policy: ExecPolicy,
    /// What a permanently failed source does to the answer.
    pub on_source_failure: SourceFailurePolicy,
    /// Per-query row limit (see [`ExecOptions::max_rows`]).
    pub max_rows: Option<usize>,
}

/// The answer to an OMQ.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The result relation; columns are the requested features, in π order,
    /// named by their local names.
    pub relation: Relation,
    /// Rendered relational algebra of each executed walk (diagnostics).
    pub walk_exprs: Vec<String>,
    /// Sources the answer degraded around, one report per failed wrapper
    /// (empty unless the query ran under [`SourceFailurePolicy::Degrade`]
    /// and a source failed). A non-empty list means the relation is a
    /// *partial* answer: exactly the surviving walks' rows.
    pub source_failures: Vec<SourceFailure>,
    /// One planner note per walk (streaming engine only; empty under
    /// [`Engine::Eager`]): the join order chosen, whether it was
    /// cost-based, and the estimated vs. actual row counts — the
    /// observability surface for the statistics layer.
    pub plan_notes: Vec<PlanNote>,
    /// Whether [`QueryAnswer::relation`] was cut down to
    /// [`ExecOptions::max_rows`] rows. `false` means the relation is the
    /// complete answer (of the surviving walks, under a degraded answer).
    pub truncated: bool,
}

/// How one walk was planned and how the estimate compared to reality.
/// Compiled into the plan ([`CompiledQuery::plan_notes`]) with
/// `actual_rows: None`; execution clones the notes into
/// [`QueryAnswer::plan_notes`] with the actuals filled in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNote {
    /// Index of the walk within the rewriting.
    pub walk: usize,
    /// Whether the join order was chosen by estimated cardinality
    /// ([`ExecOptions::cost_based_joins`] engaged and every wrapper
    /// offered an estimate) rather than syntactic order.
    pub cost_based: bool,
    /// Wrapper names in the order they were attached to the join tree.
    pub join_order: Vec<String>,
    /// Estimated output rows of the walk's join tree (`None` when the
    /// walk was planned syntactically without estimates).
    pub estimated_rows: Option<u64>,
    /// Rows the walk actually contributed at run time: the answer's row
    /// count for a single-walk query, the walk's novel (pre-merge) row
    /// count for a multi-walk union. `None` until executed, and for walks
    /// dropped by a degraded answer.
    pub actual_rows: Option<u64>,
}

/// The output schema for a feature projection: one column per feature,
/// named by local name, flagged ID when the feature is one.
fn target_schema(ontology: &BdiOntology, features: &[Iri]) -> Result<Schema, ExecError> {
    if features.is_empty() {
        return Err(ExecError::EmptyProjection);
    }
    let attrs: Vec<Attribute> = features
        .iter()
        .map(|f| {
            if ontology.is_id_feature(f) {
                Attribute::id(f.local_name())
            } else {
                Attribute::non_id(f.local_name())
            }
        })
        .collect();
    Ok(Schema::new(attrs).map_err(RelationError::Schema)?)
}

/// For one walk, the physical column (prefixed attribute name) providing
/// each requested feature.
fn walk_columns(
    ontology: &BdiOntology,
    walk: &Walk,
    features: &[Iri],
) -> Result<Vec<String>, ExecError> {
    let mut columns = Vec::with_capacity(features.len());
    for feature in features {
        match walk_feature_attr(ontology, walk, feature) {
            Some((_, attr)) => columns.push(prefixed_attr_name(attr)),
            None => {
                return Err(ExecError::MissingFeature {
                    wrappers: walk
                        .wrappers()
                        .iter()
                        .map(|w| w.local_name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    feature: feature.as_str().to_owned(),
                })
            }
        }
    }
    Ok(columns)
}

/// The `(wrapper, attribute)` of a walk that provides `feature` — the same
/// choice [`walk_columns`] aligns on, so pushed-down filters land on exactly
/// the column the final answer surfaces.
fn walk_feature_attr<'w>(
    ontology: &BdiOntology,
    walk: &'w Walk,
    feature: &Iri,
) -> Option<(&'w Iri, &'w Iri)> {
    walk.all_projections()
        .find(|(_, attr)| ontology.feature_of_attribute(attr).as_ref() == Some(feature))
}

/// Validates [`FeatureFilter`]s against π, resolving each to the π position
/// it selects on.
fn resolve_filters(
    features: &[Iri],
    filters: &[FeatureFilter],
) -> Result<Vec<(usize, FeatureFilter)>, ExecError> {
    filters
        .iter()
        .map(|filter| {
            let index = features
                .iter()
                .position(|f| f == &filter.feature)
                .ok_or_else(|| ExecError::FilterNotProjected(filter.feature.as_str().to_owned()))?;
            Ok((index, filter.clone()))
        })
        .collect()
}

/// Evaluates the rewriting and projects the final feature columns with the
/// default options (streaming engine, pushdown, parallel walks).
pub fn execute<S>(
    ontology: &BdiOntology,
    source: &S,
    rewriting: &Rewriting,
) -> Result<QueryAnswer, ExecError>
where
    S: SourceResolver + PlanSource,
{
    execute_with(ontology, source, rewriting, &ExecOptions::default())
}

/// Evaluates the rewriting with explicit [`ExecOptions`] (compile +
/// execute, no caching — [`crate::system::BdiSystem::answer_with`] layers
/// the cross-query plan cache on top of [`compile_query`] /
/// [`execute_compiled`]).
pub fn execute_with<S>(
    ontology: &BdiOntology,
    source: &S,
    rewriting: &Rewriting,
    options: &ExecOptions,
) -> Result<QueryAnswer, ExecError>
where
    S: SourceResolver + PlanSource,
{
    let compiled = compile_query(ontology, source, rewriting.clone(), options)?;
    execute_compiled(ontology, source, &compiled, None)
}

// ---------------------------------------------------------------------------
// The eager reference engine
// ---------------------------------------------------------------------------

/// The original eager evaluation through [`bdi_relational::RelExpr`] and the
/// §2.2 [`ops`]: every operator materializes a full relation. Kept as the
/// executable reference the streaming engine is pinned against.
pub fn execute_eager(
    ontology: &BdiOntology,
    resolver: &dyn SourceResolver,
    rewriting: &Rewriting,
    filters: &[FeatureFilter],
) -> Result<QueryAnswer, ExecError> {
    let features = &rewriting.well_formed.omq.pi;
    let schema = target_schema(ontology, features)?;
    let filters = resolve_filters(features, filters)?;

    if rewriting.walks.is_empty() {
        return Ok(QueryAnswer {
            relation: Relation::empty(schema),
            walk_exprs: Vec::new(),
            source_failures: Vec::new(),
            plan_notes: Vec::new(),
            truncated: false,
        });
    }

    let mut walk_exprs = Vec::with_capacity(rewriting.walks.len());
    let mut aligned_walks = Vec::with_capacity(rewriting.walks.len());
    for walk in &rewriting.walks {
        let expr = walk.to_rel_expr_full(ontology);
        walk_exprs.push(expr.to_string());
        let rel = expr.eval(resolver)?;
        let columns = walk_columns(ontology, walk, features)?;
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut aligned = ops::align_to(&rel, &column_refs, &schema)?;
        if !filters.is_empty() {
            aligned = select_where(&aligned, &filters)?;
        }
        aligned_walks.push(aligned);
    }

    let mut relation = if aligned_walks.len() == 1 {
        aligned_walks.pop().expect("walks is non-empty")
    } else {
        ops::union_all(&schema, &aligned_walks)?
    };
    if !filters.is_empty() {
        // Filtered answers are always canonical-sorted (see the module docs'
        // row-order contract): pushing σ below a join legitimately changes
        // build-side choices and thus natural row order, so the order-stable
        // form is the sorted one.
        relation.sort_rows();
    }
    Ok(QueryAnswer {
        relation,
        walk_exprs,
        source_failures: Vec::new(),
        plan_notes: Vec::new(),
        truncated: false,
    })
}

/// Reference semantics of the pushed-down filters: σ over the answer's π
/// columns (conjunction), preserving row order.
fn select_where(
    input: &Relation,
    filters: &[(usize, FeatureFilter)],
) -> Result<Relation, RelationError> {
    let rows: Vec<Tuple> = input
        .rows()
        .iter()
        .filter(|row| {
            filters
                .iter()
                .all(|(index, f)| f.predicate.matches(&row[*index]))
        })
        .cloned()
        .collect();
    Relation::new(input.schema().clone(), rows)
}

// ---------------------------------------------------------------------------
// Walk → physical plan compilation
// ---------------------------------------------------------------------------

/// Cost facts gathered while compiling a leaf: the estimated row count of
/// its (filtered) scan and the distinct-count estimate per output column,
/// keyed by the *prefixed* attribute name the walk's join conditions use.
/// `rows: None` means the source offered neither sketches nor a hint —
/// cost-based ordering stands down for the walk.
struct LeafCost {
    rows: Option<u64>,
    distinct: BTreeMap<String, u64>,
}

/// Compiles one wrapper of a walk to its (pushdown-aware) scan leaf —
/// possibly topped by a residual [`PhysicalPlan::Filter`] holding the
/// predicates the source did not claim — plus the [`LeafCost`] facts the
/// walk's join ordering consumes.
fn leaf_plan(
    ontology: &BdiOntology,
    source: &dyn PlanSource,
    wrapper: &Iri,
    needed: Option<&BTreeSet<&Iri>>,
    filter_targets: &[(&Iri, &Iri, &Predicate)],
) -> Result<(PhysicalPlan, LeafCost), ExecError> {
    let wrapper_name = crate::vocab::wrapper_name_of(wrapper)
        .unwrap_or_else(|| wrapper.as_str())
        .to_owned();
    // Pushdown on (`needed` present): only the columns the plan consumes —
    // the attributes providing requested features plus this wrapper's join
    // keys. IDs the rewriting projected but the query never surfaces are
    // dropped here, at the source, rather than "at the final step" (§5.2).
    // Pushdown off: every attribute the Source graph records for the
    // wrapper, i.e. the full pre-pushdown surface.
    let attrs: Vec<Iri> = match needed {
        Some(set) => set.iter().map(|a| (*a).clone()).collect(),
        None => ontology.attributes_of_wrapper(wrapper),
    };
    let mut columns = Vec::with_capacity(attrs.len());
    let mut out_attrs = Vec::with_capacity(attrs.len());
    // (local, prefixed) column-name pairs — sketches key on local names,
    // join conditions on prefixed ones.
    let mut col_pairs = Vec::with_capacity(attrs.len());
    for attr in &attrs {
        let (local, prefixed) = match crate::vocab::attribute_parts_of(attr) {
            Some((_, local)) => (local.to_owned(), prefixed_attr_name(attr)),
            None => (attr.as_str().to_owned(), attr.as_str().to_owned()),
        };
        let is_id = ontology
            .feature_of_attribute(attr)
            .map(|f| ontology.is_id_feature(&f))
            .unwrap_or(false);
        col_pairs.push((local.clone(), prefixed.clone()));
        columns.push(local);
        out_attrs.push(if is_id {
            Attribute::id(prefixed)
        } else {
            Attribute::non_id(prefixed)
        });
    }
    let schema = Schema::new(out_attrs).map_err(RelationError::Schema)?;
    let mut request = ScanRequest::new(columns, schema)?;
    // Filters on this wrapper: claimed ones ride inside the scan request,
    // the residue becomes a mediator-side Filter over the scan's (prefixed)
    // output columns. Either way the wrapper's answer contribution is
    // identical — only the evaluation site moves.
    let mut residue: Vec<(String, Predicate)> = Vec::new();
    // Residues again under their *local* names, for estimation only.
    let mut residue_cost: Vec<(String, Predicate)> = Vec::new();
    for (target_wrapper, target_attr, predicate) in filter_targets {
        if target_wrapper != &wrapper {
            continue;
        }
        let local = crate::vocab::attribute_parts_of(target_attr)
            .map(|(_, local)| local)
            .unwrap_or_else(|| target_attr.as_str());
        let filter = ColumnFilter::new(local, (*predicate).clone());
        if source.claims(&wrapper_name, &filter) {
            request = request.with_column_filter(filter);
        } else {
            residue_cost.push((local.to_owned(), (*predicate).clone()));
            residue.push((prefixed_attr_name(target_attr), (*predicate).clone()));
        }
    }
    // Cost facts: sketch-estimated rows (claimed filters through
    // `TableStats::estimate_rows`, residues by per-column selectivity —
    // both filter the same rows, only the evaluation site differs), or the
    // source's scan hint when it keeps no sketches.
    let stats = source.stats(&wrapper_name);
    let mut distinct = BTreeMap::new();
    let est_rows = match &stats {
        Some(stats) => {
            let mut est = stats.estimate_rows(request.filters()) as f64;
            for (local, predicate) in &residue_cost {
                if let Some(column) = stats.column(local) {
                    est *= column.selectivity(predicate, stats.rows());
                }
            }
            for (local, prefixed) in &col_pairs {
                if let Some(column) = stats.column(local) {
                    distinct.insert(prefixed.clone(), column.distinct);
                }
            }
            Some(est.round() as u64)
        }
        None => source.scan_hint(&wrapper_name, &request),
    };
    let mut plan = PhysicalPlan::scan(wrapper_name, request);
    if !residue.is_empty() {
        let predicates: Vec<(&str, Predicate)> = residue
            .iter()
            .map(|(column, p)| (column.as_str(), p.clone()))
            .collect();
        plan = plan.filter(predicates)?;
    }
    Ok((
        plan,
        LeafCost {
            rows: est_rows,
            distinct,
        },
    ))
}

/// Compiles a walk to its aligned physical plan: pushdown-aware scans with
/// fused renames, the walk's ⋈̃ conditions as hash joins (the same left-deep
/// construction as [`Walk::to_rel_expr_full`], so row order matches the
/// eager engine — unless cost-based ordering is engaged, see
/// [`ExecOptions::cost_based_joins`]), topped by the projection aligning to
/// the target schema. Also returns the walk's [`PlanNote`] (with
/// `actual_rows` unset). `order_safe` says whether the answer's row-order
/// contract already sorts this walk's output, making join reordering
/// invisible.
#[allow(clippy::too_many_arguments)]
fn compile_walk(
    ontology: &BdiOntology,
    source: &dyn PlanSource,
    walk: &Walk,
    walk_index: usize,
    features: &[Iri],
    columns: &[String],
    target: &Schema,
    options: &ExecOptions,
    order_safe: bool,
) -> Result<(PhysicalPlan, PlanNote), ExecError> {
    // Each filter lands on the (wrapper, attribute) providing its feature
    // in this walk — the same choice `walk_columns` aligns on.
    let filter_targets: Vec<(&Iri, &Iri, &Predicate)> = options
        .filters
        .iter()
        .filter_map(|f| {
            walk_feature_attr(ontology, walk, &f.feature).map(|(w, a)| (w, a, &f.predicate))
        })
        .collect();
    // Per wrapper, the columns the plan actually consumes: the attribute
    // chosen for each requested feature (the one `walk_columns` aligns on)
    // plus both sides of every ⋈̃ condition.
    let needed: Option<BTreeMap<&Iri, BTreeSet<&Iri>>> = options.pushdown.then(|| {
        let mut needed: BTreeMap<&Iri, BTreeSet<&Iri>> = BTreeMap::new();
        for feature in features {
            if let Some((wrapper, attr)) = walk_feature_attr(ontology, walk, feature) {
                needed.entry(wrapper).or_default().insert(attr);
            }
        }
        for join in walk.joins() {
            needed
                .entry(&join.left_wrapper)
                .or_default()
                .insert(&join.left_attribute);
            needed
                .entry(&join.right_wrapper)
                .or_default()
                .insert(&join.right_attribute);
        }
        needed
    });
    let empty = BTreeSet::new();
    let mut leaves: BTreeMap<&Iri, PhysicalPlan> = BTreeMap::new();
    let mut costs: BTreeMap<&Iri, LeafCost> = BTreeMap::new();
    for wrapper in walk.wrappers() {
        let wrapper_needed = needed.as_ref().map(|n| n.get(wrapper).unwrap_or(&empty));
        let (plan, cost) = leaf_plan(ontology, source, wrapper, wrapper_needed, &filter_targets)?;
        leaves.insert(wrapper, plan);
        costs.insert(wrapper, cost);
    }
    let name_of = |w: &Iri| {
        crate::vocab::wrapper_name_of(w)
            .unwrap_or_else(|| w.as_str())
            .to_owned()
    };

    // Cost-based ordering: when engaged (knob on, the answer's row-order
    // contract already sorts this walk — `order_safe` — and every wrapper
    // offers a row estimate), reorder the pending ⋈̃ conditions so the
    // cheapest-estimate pair joins first and every later condition keeps
    // the estimated intermediate result smallest. The join estimate is
    // |L ⋈ R| = |L|·|R| / max(d_L(a), d_R(b)) over the condition
    // attributes' distinct-count sketches (distinct defaulting to the
    // side's row count — unique keys — when unsketched). The reordered
    // list stays connected, so the left-deep growth below consumes it
    // verbatim; a wrong estimate can therefore change only the plan's
    // cost, never its rows.
    let mut cost_based = options.cost_based_joins
        && order_safe
        && !walk.joins().is_empty()
        && walk
            .wrappers()
            .iter()
            .all(|w| costs.get(w).is_some_and(|c| c.rows.is_some()));
    let mut estimated_rows: Option<u64> = None;
    let mut pending: Vec<_> = walk.joins().iter().collect();
    if cost_based {
        let rows_of = |w: &Iri| costs[w].rows.unwrap_or(1).max(1) as f64;
        let distinct_of = |w: &Iri, attr: &Iri| {
            let rows = rows_of(w);
            costs[w]
                .distinct
                .get(&prefixed_attr_name(attr))
                .map_or(rows, |d| (*d as f64).min(rows))
                .max(1.0)
        };
        let mut remaining = pending.clone();
        let mut ordered = Vec::with_capacity(remaining.len());
        let seed = remaining
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let d = distinct_of(&j.left_wrapper, &j.left_attribute)
                    .max(distinct_of(&j.right_wrapper, &j.right_attribute));
                (i, rows_of(&j.left_wrapper) * rows_of(&j.right_wrapper) / d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((seed_index, seed_rows)) = seed {
            let first = remaining.remove(seed_index);
            let mut included: BTreeSet<&Iri> = [&first.left_wrapper, &first.right_wrapper]
                .into_iter()
                .collect();
            let mut sub_rows = seed_rows;
            let mut sub_distinct: BTreeMap<String, f64> = BTreeMap::new();
            for w in [&first.left_wrapper, &first.right_wrapper] {
                for (prefixed, d) in &costs[w].distinct {
                    sub_distinct.entry(prefixed.clone()).or_insert(*d as f64);
                }
            }
            ordered.push(first);
            while !remaining.is_empty() {
                let best = remaining
                    .iter()
                    .enumerate()
                    .filter_map(|(i, j)| {
                        let j = *j;
                        let l_in = included.contains(&j.left_wrapper);
                        let r_in = included.contains(&j.right_wrapper);
                        match (l_in, r_in) {
                            // Redundant condition over already-joined
                            // wrappers (the growth below drops it): free.
                            (true, true) => Some((i, sub_rows, None)),
                            (true, false) => {
                                let d_sub = sub_distinct
                                    .get(&prefixed_attr_name(&j.left_attribute))
                                    .map_or(sub_rows, |d| d.min(sub_rows))
                                    .max(1.0);
                                let d_leaf = distinct_of(&j.right_wrapper, &j.right_attribute);
                                Some((
                                    i,
                                    sub_rows * rows_of(&j.right_wrapper) / d_sub.max(d_leaf),
                                    Some(&j.right_wrapper),
                                ))
                            }
                            (false, true) => {
                                let d_sub = sub_distinct
                                    .get(&prefixed_attr_name(&j.right_attribute))
                                    .map_or(sub_rows, |d| d.min(sub_rows))
                                    .max(1.0);
                                let d_leaf = distinct_of(&j.left_wrapper, &j.left_attribute);
                                Some((
                                    i,
                                    sub_rows * rows_of(&j.left_wrapper) / d_sub.max(d_leaf),
                                    Some(&j.left_wrapper),
                                ))
                            }
                            (false, false) => None,
                        }
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                let Some((index, new_rows, attached)) = best else {
                    // Disconnected join graph — such walks fail coverage
                    // upstream; keep the syntactic order.
                    cost_based = false;
                    break;
                };
                if let Some(wrapper) = attached {
                    for (prefixed, d) in &costs[wrapper].distinct {
                        sub_distinct.entry(prefixed.clone()).or_insert(*d as f64);
                    }
                    included.insert(wrapper);
                    sub_rows = new_rows;
                }
                ordered.push(remaining.remove(index));
            }
            if cost_based {
                estimated_rows = Some(sub_rows.round() as u64);
                pending = ordered;
            }
        }
    }

    // Wrapper names in the order the growth below attaches them.
    let mut attach_order: Vec<String> = Vec::new();
    let joined = if walk.joins().is_empty() {
        // Single-wrapper walk (degenerate multi-wrapper walks without joins
        // are rejected upstream by coverage/minimality filtering).
        attach_order.extend(walk.wrappers().iter().map(|w| name_of(w)));
        estimated_rows = costs.values().next().and_then(|c| c.rows);
        leaves.into_values().next().unwrap_or_else(|| {
            PhysicalPlan::scan(
                "∅",
                ScanRequest::new(Vec::new(), Schema::default())
                    .expect("empty request is well-formed"),
            )
        })
    } else {
        // Mirror of `Walk::build_rel_expr`'s join-tree growth: attach each
        // pending ⋈̃ condition as soon as one side is connected.
        let take_leaf = |leaves: &mut BTreeMap<&Iri, PhysicalPlan>, wrapper: &Iri| {
            leaves.remove(wrapper).unwrap_or_else(|| {
                PhysicalPlan::scan(
                    wrapper.as_str(),
                    ScanRequest::new(Vec::new(), Schema::default())
                        .expect("empty request is well-formed"),
                )
            })
        };
        let mut included: BTreeSet<&Iri> = BTreeSet::new();
        let mut expr: Option<PhysicalPlan> = None;
        while !pending.is_empty() {
            let before = pending.len();
            let mut error: Option<ExecError> = None;
            pending.retain(|j| {
                if error.is_some() {
                    return false;
                }
                let l_in = included.contains(&j.left_wrapper);
                let r_in = included.contains(&j.right_wrapper);
                let result = match (&mut expr, l_in, r_in) {
                    (None, _, _) => {
                        let l = take_leaf(&mut leaves, &j.left_wrapper);
                        let r = take_leaf(&mut leaves, &j.right_wrapper);
                        match l.hash_join(
                            r,
                            &prefixed_attr_name(&j.left_attribute),
                            &prefixed_attr_name(&j.right_attribute),
                        ) {
                            Ok(joined) => {
                                expr = Some(joined);
                                included.insert(&j.left_wrapper);
                                included.insert(&j.right_wrapper);
                                attach_order.push(name_of(&j.left_wrapper));
                                attach_order.push(name_of(&j.right_wrapper));
                                Ok(false)
                            }
                            Err(e) => Err(e),
                        }
                    }
                    (Some(_), true, true) => Ok(false), // already connected
                    (Some(e), true, false) => {
                        let r = take_leaf(&mut leaves, &j.right_wrapper);
                        match e.clone().hash_join(
                            r,
                            &prefixed_attr_name(&j.left_attribute),
                            &prefixed_attr_name(&j.right_attribute),
                        ) {
                            Ok(joined) => {
                                *e = joined;
                                included.insert(&j.right_wrapper);
                                attach_order.push(name_of(&j.right_wrapper));
                                Ok(false)
                            }
                            Err(err) => Err(err),
                        }
                    }
                    (Some(e), false, true) => {
                        let l = take_leaf(&mut leaves, &j.left_wrapper);
                        match e.clone().hash_join(
                            l,
                            &prefixed_attr_name(&j.right_attribute),
                            &prefixed_attr_name(&j.left_attribute),
                        ) {
                            Ok(joined) => {
                                *e = joined;
                                included.insert(&j.left_wrapper);
                                attach_order.push(name_of(&j.left_wrapper));
                                Ok(false)
                            }
                            Err(err) => Err(err),
                        }
                    }
                    (Some(_), false, false) => Ok(true), // later pass
                };
                match result {
                    Ok(keep) => keep,
                    Err(e) => {
                        error = Some(e.into());
                        false
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            if pending.len() == before {
                // Disconnected join graph; such walks fail coverage upstream.
                break;
            }
        }
        expr.expect("joins is non-empty")
    };

    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let plan = joined.project_columns(&column_refs, target.clone())?;
    Ok((
        plan,
        PlanNote {
            walk: walk_index,
            cost_based,
            join_order: attach_order,
            estimated_rows,
            actual_rows: None,
        },
    ))
}

// ---------------------------------------------------------------------------
// The streaming engine: compile once, execute many times
// ---------------------------------------------------------------------------

/// Upper bound on walk-executor threads.
const MAX_WORKERS: usize = 16;

/// A query compiled once and executable many times: the (scope-filtered)
/// rewriting, the target schema, the rendered walk algebra and — for the
/// streaming engine — one physical plan per walk. Plans depend only on the
/// ontology, the options and the sources' *capabilities* (never their
/// data), so a `CompiledQuery` stays valid until the next release; the
/// system's cross-query plan cache keys on exactly that.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The rewriting the plans were compiled from. Shared (`Arc`) so
    /// cache-hit answers hand it out without deep-cloning the walks.
    pub rewriting: std::sync::Arc<Rewriting>,
    options: ExecOptions,
    schema: Schema,
    walk_exprs: Vec<String>,
    /// One plan per walk (left empty under [`Engine::Eager`], which
    /// interprets the walks directly).
    plans: Vec<PhysicalPlan>,
    /// One [`PlanNote`] per plan, `actual_rows` unset.
    plan_notes: Vec<PlanNote>,
}

impl CompiledQuery {
    /// The options the query was compiled under.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Rendered physical plans (diagnostics).
    pub fn plan_strings(&self) -> Vec<String> {
        self.plans.iter().map(|p| p.to_string()).collect()
    }

    /// Planner notes, one per walk (empty under [`Engine::Eager`]).
    /// `actual_rows` is `None` here — execution clones the notes into
    /// [`QueryAnswer::plan_notes`] with the actuals filled in.
    pub fn plan_notes(&self) -> &[PlanNote] {
        &self.plan_notes
    }
}

/// Compiles a rewriting into an executable [`CompiledQuery`]: validates π
/// and the filters, renders the walk algebra, and (streaming engine) builds
/// each walk's physical plan with claimed filters pushed into the scans and
/// unclaimed residues kept as mediator-side filters.
pub fn compile_query<S>(
    ontology: &BdiOntology,
    source: &S,
    rewriting: Rewriting,
    options: &ExecOptions,
) -> Result<CompiledQuery, ExecError>
where
    S: SourceResolver + PlanSource,
{
    let features = &rewriting.well_formed.omq.pi;
    let schema = target_schema(ontology, features)?;
    resolve_filters(features, &options.filters)?;

    let mut walk_exprs = Vec::with_capacity(rewriting.walks.len());
    let mut plans = Vec::with_capacity(rewriting.walks.len());
    let mut plan_notes = Vec::with_capacity(rewriting.walks.len());
    // The eager engine renders its own walk_exprs while interpreting the
    // walks (`execute_eager`), so compiling them here would be wasted work.
    if matches!(options.engine, Engine::Streaming) {
        // Join reordering is invisible exactly where the row-order contract
        // already sorts the answer: multi-walk unions and filtered queries.
        // A single unfiltered walk keeps its natural (syntactic) order.
        let order_safe = rewriting.walks.len() > 1 || !options.filters.is_empty();
        for (walk_index, walk) in rewriting.walks.iter().enumerate() {
            walk_exprs.push(walk.to_rel_expr_full(ontology).to_string());
            let columns = walk_columns(ontology, walk, features)?;
            let (plan, note) = compile_walk(
                ontology, source, walk, walk_index, features, &columns, &schema, options,
                order_safe,
            )?;
            plans.push(plan);
            plan_notes.push(note);
        }
    }
    Ok(CompiledQuery {
        rewriting: std::sync::Arc::new(rewriting),
        options: options.clone(),
        schema,
        walk_exprs,
        plans,
        plan_notes,
    })
}

/// Executes a compiled query. `ctx` lets callers thread a persistent
/// [`ExecContext`] through (reusing interned scans and join build sides
/// across queries); `None` executes against a fresh context, re-scanning
/// every wrapper — the right default when source data may have changed.
/// The runtime policy (semi-join passing, scan-cache mode) is derived from
/// the options the query was compiled under; use
/// [`execute_compiled_with`] to execute the same compiled query under a
/// different policy.
pub fn execute_compiled<S>(
    ontology: &BdiOntology,
    source: &S,
    compiled: &CompiledQuery,
    ctx: Option<&ExecContext>,
) -> Result<QueryAnswer, ExecError>
where
    S: SourceResolver + PlanSource,
{
    execute_compiled_with(ontology, source, compiled, ctx, compiled.options.runtime())
}

/// [`execute_compiled`] under an explicit [`ExecRuntime`] (runtime policy,
/// source-failure policy, row limit) — the entry point
/// [`crate::system::BdiSystem::serve`] uses, since its plan cache
/// normalizes runtime knobs (semi-join keys, scan-cache mode, deadline,
/// degrade policy, row limit) out of the cache key and must execute each
/// hit under the *caller's* knobs, not the cached ones. Row-limit
/// truncation is applied here, after the answer relation is assembled, so
/// both engines honour it identically and the kept prefix respects the
/// answer's contractual row order.
pub fn execute_compiled_with<S>(
    ontology: &BdiOntology,
    source: &S,
    compiled: &CompiledQuery,
    ctx: Option<&ExecContext>,
    runtime: ExecRuntime,
) -> Result<QueryAnswer, ExecError>
where
    S: SourceResolver + PlanSource,
{
    let mut answer = match compiled.options.engine {
        Engine::Eager => execute_eager(
            ontology,
            source,
            &compiled.rewriting,
            &compiled.options.filters,
        ),
        Engine::Streaming => run_streaming(
            source,
            compiled,
            ctx,
            runtime.policy,
            runtime.on_source_failure,
        ),
    }?;
    if let Some(cap) = runtime.max_rows {
        if answer.relation.len() > cap {
            answer.relation.truncate_rows(cap);
            answer.truncated = true;
        }
    }
    Ok(answer)
}

/// The [`SourceFailure`] a plan error degrades into, when it is a
/// degradable source failure (a wrapper's scan failed) rather than a plan
/// bug, arity violation or deadline expiry.
fn source_failure_of(error: &PlanError) -> Option<SourceFailure> {
    match error {
        PlanError::Relation(RelationError::SourceFailure {
            source,
            transient,
            cause,
        }) => Some(SourceFailure {
            wrapper: source.clone(),
            transient: *transient,
            cause: cause.clone(),
            walks_dropped: 1,
        }),
        _ => None,
    }
}

/// Folds per-walk failure reports into one report per wrapper (name order):
/// `walks_dropped` accumulates, the first observed cause is kept, and the
/// wrapper counts as transient only if *every* failure was.
fn aggregate_failures(failures: Vec<SourceFailure>) -> Vec<SourceFailure> {
    let mut by_wrapper: BTreeMap<String, SourceFailure> = BTreeMap::new();
    for failure in failures {
        match by_wrapper.get_mut(&failure.wrapper) {
            Some(report) => {
                report.walks_dropped += failure.walks_dropped;
                report.transient &= failure.transient;
            }
            None => {
                by_wrapper.insert(failure.wrapper.clone(), failure);
            }
        }
    }
    by_wrapper.into_values().collect()
}

fn run_streaming<S>(
    source: &S,
    compiled: &CompiledQuery,
    external: Option<&ExecContext>,
    policy: ExecPolicy,
    on_source_failure: SourceFailurePolicy,
) -> Result<QueryAnswer, ExecError>
where
    S: PlanSource,
{
    let degrade = matches!(on_source_failure, SourceFailurePolicy::Degrade);
    let schema = compiled.schema.clone();
    let walk_exprs = compiled.walk_exprs.clone();
    let plans = &compiled.plans;
    let options = &compiled.options;
    let filtered = !options.filters.is_empty();
    let src: &dyn PlanSource = source;

    if plans.is_empty() {
        return Ok(QueryAnswer {
            relation: Relation::empty(schema),
            walk_exprs,
            source_failures: Vec::new(),
            plan_notes: compiled.plan_notes.clone(),
            truncated: false,
        });
    }

    let owned;
    let ctx: &ExecContext = match external {
        Some(shared) => shared,
        None => {
            owned = ExecContext::new();
            &owned
        }
    };

    // A single walk keeps its natural evaluation order (no union → no set
    // canonicalization), exactly like the eager engine — except under a
    // pushed-down filter, where both engines emit the canonical sorted
    // order (σ below a join changes build-side choices and thus the
    // natural order). Under `parallel`, the walk's scans are prefetched
    // concurrently on scoped threads ahead of the pulling join pipeline —
    // sized to the machine, so a single-core host (where prefetch threads
    // could only convoy on the pool's shard locks) degrades to the serial
    // pull without spawning.
    if plans.len() == 1 {
        let prefetch_workers = if options.parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_WORKERS)
        } else {
            1
        };
        let mut relation =
            match plan::execute_plan_prefetched_with(&plans[0], ctx, src, prefetch_workers, policy)
            {
                Ok(relation) => relation,
                // A one-walk query degrading around its only source is an
                // empty (but honest) answer: the report says what was lost.
                Err(e) if degrade && source_failure_of(&e).is_some() => {
                    return Ok(QueryAnswer {
                        relation: Relation::empty(schema),
                        walk_exprs,
                        source_failures: source_failure_of(&e).into_iter().collect(),
                        // The walk was dropped: its actual stays unset.
                        plan_notes: compiled.plan_notes.clone(),
                        truncated: false,
                    });
                }
                Err(e) => return Err(e.into()),
            };
        if filtered {
            relation.sort_rows();
        }
        let mut plan_notes = compiled.plan_notes.clone();
        if let Some(note) = plan_notes.first_mut() {
            note.actual_rows = Some(relation.len() as u64);
        }
        return Ok(QueryAnswer {
            relation,
            walk_exprs,
            source_failures: Vec::new(),
            plan_notes,
            truncated: false,
        });
    }

    // Multi-walk: each walk streams into its own id-space dedup set, claims
    // the rows no earlier-finishing walk already produced (one shared
    // id-space set — so every duplicate dies as a u32-row hash probe, never
    // as a decoded-value comparison), then decodes and sorts only its
    // *novel* rows into a sorted run. The value-disjoint runs are k-way
    // merged into the canonical sorted set form. Compared to one global set
    // plus one big final sort, the per-walk sorts are smaller
    // (cache-friendlier) and run on the worker threads, so sorting overlaps
    // with other walks' scans and joins instead of serializing after them —
    // the all-distinct worst case, where the final sort used to dominate,
    // is exactly what this buys back.
    let global_seen = std::sync::Mutex::new(RowSet::new(schema.len()));
    let mut runs: Vec<Vec<Tuple>> = Vec::with_capacity(plans.len());
    runs.resize_with(plans.len(), Vec::new);
    let mut first_error: Option<(usize, PlanError)> = None;
    let record_error = |slot: &mut Option<(usize, PlanError)>, index: usize, e: PlanError| {
        if slot.as_ref().is_none_or(|(i, _)| index < *i) {
            *slot = Some((index, e));
        }
    };
    // Under Degrade a failed walk becomes a dropped-walk report instead of
    // a query error; anything that is not a source failure still aborts.
    // The walk index rides along so its planner note keeps an unset actual.
    let mut dropped: Vec<(usize, SourceFailure)> = Vec::new();
    let settle = |runs: &mut Vec<Vec<Tuple>>,
                  first_error: &mut Option<(usize, PlanError)>,
                  dropped: &mut Vec<(usize, SourceFailure)>,
                  index: usize,
                  result: Result<Vec<Tuple>, PlanError>| match result {
        Ok(run) => runs[index] = run,
        Err(e) => match source_failure_of(&e) {
            Some(failure) if degrade => dropped.push((index, failure)),
            _ => record_error(first_error, index, e),
        },
    };

    let workers = if options.parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(plans.len())
            .min(MAX_WORKERS)
    } else {
        1
    };

    if workers <= 1 {
        for (index, walk_plan) in plans.iter().enumerate() {
            let result = walk_sorted_run(walk_plan, ctx, src, policy, &global_seen, degrade);
            settle(&mut runs, &mut first_error, &mut dropped, index, result);
        }
    } else {
        let next = AtomicUsize::new(0);
        // One message per walk; the channel is a completion queue, not a
        // row pipe — per-walk memory is bounded by that walk's distinct
        // output, which the merged answer holds anyway.
        let (tx, rx) = mpsc::sync_channel::<(usize, Result<Vec<Tuple>, PlanError>)>(workers);
        let ctx_ref = ctx;
        let src_ref = src;
        let plans_ref = &plans;
        let next_ref = &next;
        let seen_ref = &global_seen;
        crossbeam::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                s.spawn(move |_| loop {
                    let index = next_ref.fetch_add(1, Ordering::Relaxed);
                    if index >= plans_ref.len() {
                        break;
                    }
                    let run = walk_sorted_run(
                        &plans_ref[index],
                        ctx_ref,
                        src_ref,
                        policy,
                        seen_ref,
                        degrade,
                    );
                    if tx.send((index, run)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            for (index, message) in rx {
                settle(&mut runs, &mut first_error, &mut dropped, index, message);
            }
        })
        .expect("walk executor thread panicked");
    }

    if let Some((_, e)) = first_error {
        return Err(e.into());
    }

    // A multi-walk actual is the walk's *novel* (pre-merge) contribution:
    // rows an earlier-finishing walk already claimed count for that walk,
    // not this one. Dropped walks keep an unset actual.
    let mut plan_notes = compiled.plan_notes.clone();
    let dropped_walks: BTreeSet<usize> = dropped.iter().map(|(index, _)| *index).collect();
    for (index, note) in plan_notes.iter_mut().enumerate() {
        if !dropped_walks.contains(&index) {
            note.actual_rows = Some(runs.get(index).map_or(0, Vec::len) as u64);
        }
    }

    Ok(QueryAnswer {
        relation: Relation::new(schema, merge_sorted_runs(runs))?,
        walk_exprs,
        source_failures: aggregate_failures(dropped.into_iter().map(|(_, f)| f).collect()),
        plan_notes,
        truncated: false,
    })
}

/// Runs one walk's plan to exhaustion, claiming each batch's rows against
/// the cross-walk `global_seen` set — every duplicate, intra- or
/// cross-walk, dies as a single `u32`-row hash probe before any value is
/// decoded — and returns the walk's *novel* rows decoded and sorted: one
/// sorted run of the streamed union. Batches are bounded, so the set is
/// locked in short holds (and the claim work it serializes is exactly what
/// the previous design serialized on the coordinator thread). Interning
/// canonicalizes `Value`-equal rows to identical ids, so id-disjoint runs
/// are value-disjoint too.
///
/// `claim_late` (the Degrade mode): the walk dedups against a *local* set
/// while streaming and claims against the shared set only once its plan ran
/// to exhaustion. Claiming as rows stream would let a walk that later
/// *fails* (and is dropped from the answer) have already suppressed rows a
/// surviving walk also produces — those rows would silently vanish from the
/// partial answer. The price is one extra probe per row and losing the
/// streaming overlap of the claim work; it is paid only under Degrade.
fn walk_sorted_run(
    walk_plan: &PhysicalPlan,
    ctx: &ExecContext,
    src: &dyn PlanSource,
    policy: ExecPolicy,
    global_seen: &std::sync::Mutex<RowSet>,
    claim_late: bool,
) -> Result<Vec<Tuple>, PlanError> {
    let arity = walk_plan.schema().len();
    let mut op = Operator::new(walk_plan, ctx, src, policy);
    let mut novel: Vec<u32> = Vec::new();
    let mut count = 0usize;
    if claim_late {
        let mut local_seen = RowSet::new(arity);
        let mut staged: Vec<u32> = Vec::new();
        let mut staged_count = 0usize;
        while let Some(batch) = op.next_batch()? {
            for row in batch.rows() {
                if local_seen.insert(row) {
                    staged.extend_from_slice(row);
                    staged_count += 1;
                }
            }
        }
        // The walk is known good past this point; only now may its rows
        // suppress other walks' duplicates.
        let mut seen = global_seen.lock().expect("union dedup set poisoned");
        for i in 0..staged_count {
            let row = &staged[i * arity..(i + 1) * arity];
            if seen.insert(row) {
                novel.extend_from_slice(row);
                count += 1;
            }
        }
    } else {
        while let Some(batch) = op.next_batch()? {
            let mut seen = global_seen.lock().expect("union dedup set poisoned");
            for row in batch.rows() {
                if seen.insert(row) {
                    novel.extend_from_slice(row);
                    count += 1;
                }
            }
        }
    }
    // Decode in bounded chunks: `decode_rows` holds every pool shard for
    // the duration of a call, so one walk decoding a huge novel set must
    // not starve the other workers' interning for the whole decode.
    const DECODE_CHUNK_ROWS: usize = 16 * 1024;
    let mut rows: Vec<Tuple> = Vec::with_capacity(count);
    let mut start = 0usize;
    while start < count {
        let end = count.min(start + DECODE_CHUNK_ROWS);
        rows.extend(ctx.decode_rows((start..end).map(|i| &novel[i * arity..(i + 1) * arity])));
        start = end;
    }
    rows.sort_unstable();
    Ok(rows)
}

/// K-way merge of the per-walk sorted runs into the canonical sorted set
/// form. Runs are pairwise disjoint by construction (the shared id-space
/// set), so this is a pure merge; the equality check against the last
/// emitted row is a defensive no-op kept for clarity of the set contract.
fn merge_sorted_runs(runs: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Tuple>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(Tuple, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (index, iter) in iters.iter_mut().enumerate() {
        if let Some(row) = iter.next() {
            heap.push(Reverse((row, index)));
        }
    }
    let mut out: Vec<Tuple> = Vec::with_capacity(total);
    while let Some(Reverse((row, index))) = heap.pop() {
        if let Some(next) = iters[index].next() {
            heap.push(Reverse((next, index)));
        }
        if out.last() != Some(&row) {
            out.push(row);
        }
    }
    out
}
