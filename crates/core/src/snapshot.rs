//! Deployment persistence.
//!
//! The paper's MDM persists its metadata in Jena TDB (§6.1). The equivalent
//! here: a [`SystemSnapshot`] captures a whole deployment — the ontology `T`
//! as TriG (all named graphs), every wrapper's serializable definition, the
//! backing document collections and the release log — as one JSON document
//! that restores to an equivalent, queryable [`BdiSystem`].

use crate::ontology::BdiOntology;
use crate::system::{BdiSystem, ReleaseLogEntry};
use bdi_docstore::DocStore;
use bdi_rdf::trig;
use bdi_rdf::turtle::PrefixMap;
use bdi_wrappers::{WrapperRegistry, WrapperSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors raised while snapshotting or restoring.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum SnapshotError {
    #[error("wrapper {0} has no serializable definition; snapshot unsupported for its kind")]
    UnsupportedWrapper(String),
    #[error("TriG error: {0}")]
    Trig(String),
    #[error("JSON error: {0}")]
    Json(String),
    #[error("wrapper {0} failed to instantiate: {1}")]
    Instantiate(String, String),
    #[error("document store error: {0}")]
    Store(String),
}

/// Serializable release-log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    pub seq: usize,
    pub wrapper: String,
    pub source: String,
}

/// A complete, self-contained deployment image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// The ontology `T` — all graphs — as TriG.
    pub ontology_trig: String,
    /// Registered prefixes (`prefix → namespace`).
    pub prefixes: BTreeMap<String, String>,
    /// Every wrapper's definition, in registry order.
    pub wrappers: Vec<WrapperSpec>,
    /// Document collections backing the JSON wrappers.
    pub collections: BTreeMap<String, Vec<serde_json::Value>>,
    /// The release log (registration order).
    pub release_log: Vec<LogEntry>,
}

/// Captures a snapshot of a system. Fails when any wrapper kind is not
/// serializable (custom `Wrapper` impls without `to_spec`).
pub fn snapshot(system: &BdiSystem, store: &DocStore) -> Result<SystemSnapshot, SnapshotError> {
    let mut wrappers = Vec::new();
    for wrapper in system.registry().iter() {
        let spec = wrapper
            .to_spec()
            .ok_or_else(|| SnapshotError::UnsupportedWrapper(wrapper.name().to_owned()))?;
        wrappers.push(spec);
    }
    Ok(SystemSnapshot {
        ontology_trig: trig::write_trig(system.ontology().store(), system.ontology().prefixes()),
        prefixes: system
            .ontology()
            .prefixes()
            .iter()
            .map(|(p, n)| (p.to_owned(), n.to_owned()))
            .collect(),
        wrappers,
        collections: store.dump(),
        release_log: system
            .release_log()
            .iter()
            .map(|e| LogEntry {
                seq: e.seq,
                wrapper: e.wrapper.clone(),
                source: e.source.clone(),
            })
            .collect(),
    })
}

/// Restores a deployment: rebuilds the document store, the wrappers and the
/// ontology, returning `(system, store)`.
pub fn restore(image: &SystemSnapshot) -> Result<(BdiSystem, DocStore), SnapshotError> {
    let store = DocStore::new();
    store
        .restore(image.collections.clone())
        .map_err(|e| SnapshotError::Store(e.to_string()))?;

    let mut ontology = BdiOntology::new();
    let mut prefixes = PrefixMap::new();
    for (p, n) in &image.prefixes {
        prefixes.insert(p.clone(), n.clone());
        ontology.prefixes_mut().insert(p.clone(), n.clone());
    }
    trig::load_trig(ontology.store(), &image.ontology_trig)
        .map_err(|e| SnapshotError::Trig(e.to_string()))?;

    let mut registry = WrapperRegistry::new();
    for spec in &image.wrappers {
        let wrapper = spec
            .instantiate(&store)
            .map_err(|e| SnapshotError::Instantiate(spec.name().to_owned(), e.to_string()))?;
        registry.register(wrapper);
    }

    let mut system = BdiSystem::from_parts(ontology, registry);
    system.set_release_log(
        image
            .release_log
            .iter()
            .map(|e| ReleaseLogEntry {
                seq: e.seq,
                wrapper: e.wrapper.clone(),
                source: e.source.clone(),
            })
            .collect(),
    );
    Ok((system, store))
}

/// Serializes a snapshot as pretty JSON.
pub fn to_json(image: &SystemSnapshot) -> Result<String, SnapshotError> {
    serde_json::to_string_pretty(image).map_err(|e| SnapshotError::Json(e.to_string()))
}

/// Parses a snapshot from JSON.
pub fn from_json(json: &str) -> Result<SystemSnapshot, SnapshotError> {
    serde_json::from_str(json).map_err(|e| SnapshotError::Json(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supersede;

    #[test]
    fn snapshot_restore_preserves_query_answers() {
        let (mut system, store) = supersede::build_running_example_with_store();
        supersede::evolve_with_w4(&mut system, &store);
        let original = system.answer(&supersede::exemplary_query()).unwrap();

        let image = snapshot(&system, &store).unwrap();
        let json = to_json(&image).unwrap();
        let parsed = from_json(&json).unwrap();
        let (restored, _) = restore(&parsed).unwrap();

        let replayed = restored.answer(&supersede::exemplary_query()).unwrap();
        assert_eq!(replayed.relation, original.relation);
        assert_eq!(
            replayed.rewriting.walks.len(),
            original.rewriting.walks.len()
        );
    }

    #[test]
    fn snapshot_preserves_the_release_log_and_scopes() {
        use crate::system::VersionScope;
        let (mut system, store) = supersede::build_running_example_with_store();
        supersede::evolve_with_w4(&mut system, &store);
        let image = snapshot(&system, &store).unwrap();
        let (restored, _) = restore(&image).unwrap();

        assert_eq!(restored.release_log().len(), 4);
        let historical = restored
            .answer_scoped(supersede::exemplary_omq(), &VersionScope::UpToRelease(2))
            .unwrap();
        assert_eq!(historical.relation.len(), 3); // pre-evolution Table 2
    }

    #[test]
    fn snapshot_preserves_ontology_size_exactly() {
        let (system, store) = supersede::build_running_example_with_store();
        let image = snapshot(&system, &store).unwrap();
        let (restored, _) = restore(&image).unwrap();
        assert_eq!(
            restored.ontology().store().len(),
            system.ontology().store().len()
        );
        assert_eq!(
            restored.ontology().source_graph_len(),
            system.ontology().source_graph_len()
        );
    }
}
