//! The BDI ontology `T = ⟨G, S, M⟩` (§3).
//!
//! All three graphs live in one [`QuadStore`] as RDF named graphs:
//!
//! * **`G`** (Global graph) — concepts, features, object properties, feature
//!   taxonomy and datatypes. The vocabulary analysts query with.
//! * **`S`** (Source graph) — data sources, wrappers (= schema versions) and
//!   their attributes.
//! * **`M`** (Mapping graph) — LAV mappings: per-wrapper *named graphs*
//!   holding the subgraph of `G` the wrapper provides, plus `owl:sameAs`
//!   links serializing the attribute→feature function `F`.
//!
//! The struct enforces the paper's design constraints at authoring time —
//! most importantly that a feature belongs to exactly one concept (§3.1),
//! which is what makes query rewriting unambiguous.

use crate::vocab::{self, graphs};
use bdi_rdf::model::{GraphName, Iri, Quad, Term, Triple};
use bdi_rdf::reason;
use bdi_rdf::sparql::{self, EvalOptions, Solutions};
use bdi_rdf::store::{GraphPattern, QuadStore};
use bdi_rdf::turtle::PrefixMap;
use bdi_rdf::vocab::{owl, rdf, rdfs, sc};

/// Errors raised by ontology authoring and queries.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum OntologyError {
    #[error("feature {feature} already belongs to concept {owner}; features belong to exactly one concept (§3.1)")]
    FeatureAlreadyOwned { feature: String, owner: String },
    #[error("{0} is not a concept in G")]
    NotAConcept(String),
    #[error("{0} is not a feature in G")]
    NotAFeature(String),
    #[error("SPARQL error: {0}")]
    Sparql(String),
}

/// The BDI ontology: one quad store holding `G`, `S`, `M` and the
/// per-wrapper LAV named graphs.
#[derive(Debug)]
pub struct BdiOntology {
    store: QuadStore,
    prefixes: PrefixMap,
}

impl Default for BdiOntology {
    fn default() -> Self {
        Self::new()
    }
}

impl BdiOntology {
    /// Creates the ontology with the metamodel triples of Codes 6 and 7
    /// preloaded, and the standard prefix table (`G:`, `S:`, `M:`, `rdf:`,
    /// `rdfs:`, `owl:`, `xsd:`, `sc:`).
    pub fn new() -> Self {
        let store = QuadStore::new();
        let mut prefixes = PrefixMap::with_common_vocabularies();
        prefixes.insert("G", vocab::g::NS);
        prefixes.insert("S", vocab::s::NS);
        prefixes.insert("M", vocab::m::NS);

        let g = graphs::global();
        // Code 6 — metamodel for G.
        store.insert_in(&g, &*vocab::g::CONCEPT, &*rdf::TYPE, &*rdfs::CLASS);
        store.insert_in(&g, &*vocab::g::FEATURE, &*rdf::TYPE, &*rdfs::CLASS);
        store.insert_in(&g, &*vocab::g::HAS_FEATURE, &*rdf::TYPE, &*rdf::PROPERTY);
        store.insert_in(
            &g,
            &*vocab::g::HAS_FEATURE,
            &*rdfs::DOMAIN,
            &*vocab::g::CONCEPT,
        );
        store.insert_in(
            &g,
            &*vocab::g::HAS_FEATURE,
            &*rdfs::RANGE,
            &*vocab::g::FEATURE,
        );
        store.insert_in(&g, &*vocab::g::HAS_DATA_TYPE, &*rdf::TYPE, &*rdf::PROPERTY);
        store.insert_in(
            &g,
            &*vocab::g::HAS_DATA_TYPE,
            &*rdfs::DOMAIN,
            &*vocab::g::FEATURE,
        );
        store.insert_in(
            &g,
            &*vocab::g::HAS_DATA_TYPE,
            &*rdfs::RANGE,
            &*rdfs::DATATYPE,
        );

        let s = graphs::source();
        // Code 7 — metamodel for S.
        store.insert_in(&s, &*vocab::s::DATA_SOURCE, &*rdf::TYPE, &*rdfs::CLASS);
        store.insert_in(&s, &*vocab::s::WRAPPER, &*rdf::TYPE, &*rdfs::CLASS);
        store.insert_in(&s, &*vocab::s::ATTRIBUTE, &*rdf::TYPE, &*rdfs::CLASS);
        store.insert_in(&s, &*vocab::s::HAS_WRAPPER, &*rdf::TYPE, &*rdf::PROPERTY);
        store.insert_in(
            &s,
            &*vocab::s::HAS_WRAPPER,
            &*rdfs::DOMAIN,
            &*vocab::s::DATA_SOURCE,
        );
        store.insert_in(
            &s,
            &*vocab::s::HAS_WRAPPER,
            &*rdfs::RANGE,
            &*vocab::s::WRAPPER,
        );
        store.insert_in(&s, &*vocab::s::HAS_ATTRIBUTE, &*rdf::TYPE, &*rdf::PROPERTY);
        store.insert_in(
            &s,
            &*vocab::s::HAS_ATTRIBUTE,
            &*rdfs::DOMAIN,
            &*vocab::s::WRAPPER,
        );
        store.insert_in(
            &s,
            &*vocab::s::HAS_ATTRIBUTE,
            &*rdfs::RANGE,
            &*vocab::s::ATTRIBUTE,
        );

        Self { store, prefixes }
    }

    /// The underlying quad store.
    pub fn store(&self) -> &QuadStore {
        &self.store
    }

    /// The prefix table (extend it with domain namespaces).
    pub fn prefixes(&self) -> &PrefixMap {
        &self.prefixes
    }

    pub fn prefixes_mut(&mut self) -> &mut PrefixMap {
        &mut self.prefixes
    }

    // ------------------------------------------------------------------
    // Global graph authoring
    // ------------------------------------------------------------------

    /// Declares a concept in `G`.
    pub fn add_concept(&self, concept: &Iri) {
        self.store
            .insert_in(&graphs::global(), concept, &*rdf::TYPE, &*vocab::g::CONCEPT);
    }

    /// Declares a feature in `G`.
    pub fn add_feature(&self, feature: &Iri) {
        self.store
            .insert_in(&graphs::global(), feature, &*rdf::TYPE, &*vocab::g::FEATURE);
    }

    /// Declares a feature that carries ID semantics
    /// (`rdfs:subClassOf sc:identifier`). IDs are the default join keys of
    /// the rewriting algorithm.
    pub fn add_id_feature(&self, feature: &Iri) {
        self.add_feature(feature);
        self.store.insert_in(
            &graphs::global(),
            feature,
            &*rdfs::SUB_CLASS_OF,
            &*sc::IDENTIFIER,
        );
    }

    /// Attaches `feature` to `concept` via `G:hasFeature`, enforcing the
    /// one-concept-per-feature constraint.
    pub fn attach_feature(&self, concept: &Iri, feature: &Iri) -> Result<(), OntologyError> {
        if !self.is_concept(concept) {
            return Err(OntologyError::NotAConcept(concept.as_str().to_owned()));
        }
        if !self.is_feature(feature) {
            return Err(OntologyError::NotAFeature(feature.as_str().to_owned()));
        }
        if let Some(owner) = self.concept_of(feature) {
            if &owner != concept {
                return Err(OntologyError::FeatureAlreadyOwned {
                    feature: feature.as_str().to_owned(),
                    owner: owner.as_str().to_owned(),
                });
            }
        }
        self.store
            .insert_in(&graphs::global(), concept, &*vocab::g::HAS_FEATURE, feature);
        Ok(())
    }

    /// Declares a domain-specific object property `domain —property→ range`
    /// between two concepts (the navigation edges analysts traverse).
    pub fn add_object_property(
        &self,
        property: &Iri,
        domain: &Iri,
        range: &Iri,
    ) -> Result<(), OntologyError> {
        if !self.is_concept(domain) {
            return Err(OntologyError::NotAConcept(domain.as_str().to_owned()));
        }
        if !self.is_concept(range) {
            return Err(OntologyError::NotAConcept(range.as_str().to_owned()));
        }
        let g = graphs::global();
        self.store
            .insert_in(&g, property, &*rdf::TYPE, &*rdf::PROPERTY);
        self.store.insert_in(&g, property, &*rdfs::DOMAIN, domain);
        self.store.insert_in(&g, property, &*rdfs::RANGE, range);
        self.store.insert_in(&g, domain, property, range);
        Ok(())
    }

    /// Sets a feature's datatype (`G:hasDataType`, §3.1).
    pub fn set_feature_datatype(&self, feature: &Iri, datatype: &Iri) -> Result<(), OntologyError> {
        if !self.is_feature(feature) {
            return Err(OntologyError::NotAFeature(feature.as_str().to_owned()));
        }
        let g = graphs::global();
        self.store
            .insert_in(&g, datatype, &*rdf::TYPE, &*rdfs::DATATYPE);
        self.store
            .insert_in(&g, feature, &*vocab::g::HAS_DATA_TYPE, datatype);
        Ok(())
    }

    /// Adds a feature-taxonomy edge `sub rdfs:subClassOf sup` (§3.1:
    /// "a taxonomy of features ... denote related semantic domains").
    pub fn add_feature_subclass(&self, sub: &Iri, sup: &Iri) {
        self.store
            .insert_in(&graphs::global(), sub, &*rdfs::SUB_CLASS_OF, sup);
    }

    // ------------------------------------------------------------------
    // Global graph queries
    // ------------------------------------------------------------------

    /// True when `iri` is typed `G:Concept` in `G`.
    pub fn is_concept(&self, iri: &Iri) -> bool {
        self.store.contains(&Quad::new(
            iri.clone(),
            (*rdf::TYPE).clone(),
            (*vocab::g::CONCEPT).clone(),
            graphs::global(),
        ))
    }

    /// True when `iri` is typed `G:Feature` in `G`.
    pub fn is_feature(&self, iri: &Iri) -> bool {
        self.store.contains(&Quad::new(
            iri.clone(),
            (*rdf::TYPE).clone(),
            (*vocab::g::FEATURE).clone(),
            graphs::global(),
        ))
    }

    /// True when the feature reaches `sc:identifier` through
    /// `rdfs:subClassOf` (RDFS entailment, no materialization needed).
    pub fn is_id_feature(&self, feature: &Iri) -> bool {
        feature != &*sc::IDENTIFIER && reason::is_subclass_of(&self.store, feature, &sc::IDENTIFIER)
    }

    /// All concepts declared in `G`.
    pub fn concepts(&self) -> Vec<Iri> {
        self.store.iri_subjects(
            &rdf::TYPE,
            &vocab::g::CONCEPT,
            &GraphPattern::Named((*graphs::GLOBAL).clone()),
        )
    }

    /// Features attached to a concept.
    pub fn features_of(&self, concept: &Iri) -> Vec<Iri> {
        self.store.iri_objects(
            concept,
            &vocab::g::HAS_FEATURE,
            &GraphPattern::Named((*graphs::GLOBAL).clone()),
        )
    }

    /// The concept's ID features (those subsumed by `sc:identifier`).
    pub fn id_features_of(&self, concept: &Iri) -> Vec<Iri> {
        self.features_of(concept)
            .into_iter()
            .filter(|f| self.is_id_feature(f))
            .collect()
    }

    /// The unique concept owning a feature (enforced by
    /// [`BdiOntology::attach_feature`]).
    pub fn concept_of(&self, feature: &Iri) -> Option<Iri> {
        self.store
            .iri_subjects(
                &vocab::g::HAS_FEATURE,
                feature,
                &GraphPattern::Named((*graphs::GLOBAL).clone()),
            )
            .into_iter()
            .next()
    }

    /// Object properties linking `from` to `to` in `G` (excluding
    /// `G:hasFeature`).
    pub fn properties_between(&self, from: &Iri, to: &Iri) -> Vec<Iri> {
        self.store
            .match_quads(
                Some(&Term::Iri(from.clone())),
                None,
                Some(&Term::Iri(to.clone())),
                &GraphPattern::Named((*graphs::GLOBAL).clone()),
            )
            .into_iter()
            .map(|q| q.predicate)
            .filter(|p| p != &*vocab::g::HAS_FEATURE)
            .collect()
    }

    // ------------------------------------------------------------------
    // Source graph queries
    // ------------------------------------------------------------------

    /// True when `iri` is a registered wrapper instance in `S`.
    pub fn is_wrapper(&self, iri: &Iri) -> bool {
        self.store.contains(&Quad::new(
            iri.clone(),
            (*rdf::TYPE).clone(),
            (*vocab::s::WRAPPER).clone(),
            graphs::source(),
        ))
    }

    /// True when `iri` is a registered data source in `S`.
    pub fn is_data_source(&self, iri: &Iri) -> bool {
        self.store.contains(&Quad::new(
            iri.clone(),
            (*rdf::TYPE).clone(),
            (*vocab::s::DATA_SOURCE).clone(),
            graphs::source(),
        ))
    }

    /// All wrapper URIs of one data source.
    pub fn wrappers_of_source(&self, source_uri: &Iri) -> Vec<Iri> {
        self.store.iri_objects(
            source_uri,
            &vocab::s::HAS_WRAPPER,
            &GraphPattern::Named((*graphs::SOURCE).clone()),
        )
    }

    /// All attribute URIs a wrapper provides.
    pub fn attributes_of_wrapper(&self, wrapper_uri: &Iri) -> Vec<Iri> {
        self.store.iri_objects(
            wrapper_uri,
            &vocab::s::HAS_ATTRIBUTE,
            &GraphPattern::Named((*graphs::SOURCE).clone()),
        )
    }

    /// Number of triples currently in `S` (the growth metric of Figure 11).
    pub fn source_graph_len(&self) -> usize {
        self.store.graph_len(&graphs::source())
    }

    /// Number of triples currently in `G`.
    pub fn global_graph_len(&self) -> usize {
        self.store.graph_len(&graphs::global())
    }

    /// Number of triples currently in `M` (sameAs links + mapping triples).
    pub fn mapping_graph_len(&self) -> usize {
        self.store.graph_len(&graphs::mapping())
    }

    // ------------------------------------------------------------------
    // Mapping graph queries (LAV resolution primitives)
    // ------------------------------------------------------------------

    /// Algorithm 4, line 8: the wrappers whose LAV named graph contains
    /// `⟨concept, G:hasFeature, feature⟩`.
    pub fn wrappers_providing_feature(&self, concept: &Iri, feature: &Iri) -> Vec<Iri> {
        self.named_wrapper_graphs_with(
            Some(&Term::Iri(concept.clone())),
            Some(&vocab::g::HAS_FEATURE),
            Some(&Term::Iri(feature.clone())),
        )
    }

    /// Algorithm 5, lines 9–10: wrappers whose LAV graph contains an edge
    /// `⟨from, ?x, to⟩` between two concepts.
    pub fn wrappers_providing_edge(&self, from: &Iri, to: &Iri) -> Vec<Iri> {
        self.named_wrapper_graphs_with(
            Some(&Term::Iri(from.clone())),
            None,
            Some(&Term::Iri(to.clone())),
        )
        .into_iter()
        // hasFeature edges are not concept-to-concept navigation.
        .collect()
    }

    fn named_wrapper_graphs_with(
        &self,
        s: Option<&Term>,
        p: Option<&Iri>,
        o: Option<&Term>,
    ) -> Vec<Iri> {
        let mut out: Vec<Iri> = Vec::new();
        for quad in self.store.match_quads(s, p, o, &GraphPattern::AnyNamed) {
            if let GraphName::Named(g) = &quad.graph {
                if self.is_wrapper(g) && !out.contains(g) {
                    out.push(g.clone());
                }
            }
        }
        out
    }

    /// Algorithm 4, line 10: the physical attribute of `wrapper` that maps
    /// (via `owl:sameAs` in `M`) to `feature`.
    pub fn attribute_for_feature(&self, wrapper_uri: &Iri, feature: &Iri) -> Option<Iri> {
        let candidates = self.store.subjects(
            &owl::SAME_AS,
            &Term::Iri(feature.clone()),
            &GraphPattern::Named((*graphs::MAPPING).clone()),
        );
        for candidate in candidates {
            let Term::Iri(attr) = candidate else { continue };
            if self.store.contains(&Quad::new(
                wrapper_uri.clone(),
                (*vocab::s::HAS_ATTRIBUTE).clone(),
                attr.clone(),
                graphs::source(),
            )) {
                return Some(attr);
            }
        }
        None
    }

    /// Algorithm 4, line 18: the feature a physical attribute maps to.
    pub fn feature_of_attribute(&self, attribute: &Iri) -> Option<Iri> {
        self.store
            .objects(
                &Term::Iri(attribute.clone()),
                &owl::SAME_AS,
                &GraphPattern::Named((*graphs::MAPPING).clone()),
            )
            .into_iter()
            .find_map(|t| t.as_iri().cloned())
    }

    /// The LAV subgraph of `G` registered for a wrapper (its named graph).
    pub fn lav_graph_of(&self, wrapper_uri: &Iri) -> Vec<Triple> {
        self.store
            .graph_quads(&GraphName::Named(wrapper_uri.clone()))
            .into_iter()
            .map(Quad::into_triple)
            .collect()
    }

    // ------------------------------------------------------------------
    // SPARQL & serialization
    // ------------------------------------------------------------------

    /// Evaluates a SPARQL query against the ontology. Queries without a
    /// `FROM` clause range over the union of all graphs (the paper's
    /// `FROM T`); `FROM <g>` scopes to one named graph.
    pub fn sparql(&self, query: &str) -> Result<Solutions, OntologyError> {
        let parsed = sparql::parse_query(query, &self.prefixes)
            .map_err(|e| OntologyError::Sparql(e.to_string()))?;
        Ok(sparql::evaluate(
            &self.store,
            &parsed,
            &EvalOptions {
                default_graph_as_union: true,
            },
        ))
    }

    /// Serializes one graph of the ontology as Turtle.
    pub fn graph_turtle(&self, graph: &GraphName) -> String {
        let triples: Vec<Triple> = self
            .store
            .graph_quads(graph)
            .into_iter()
            .map(Quad::into_triple)
            .collect();
        bdi_rdf::turtle::write_turtle(triples.iter(), &self.prefixes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://e/{s}"))
    }

    fn ontology_with_monitor() -> BdiOntology {
        let o = BdiOntology::new();
        o.add_concept(&iri("Monitor"));
        o.add_id_feature(&iri("monitorId"));
        o.attach_feature(&iri("Monitor"), &iri("monitorId"))
            .unwrap();
        o.add_feature(&iri("lagRatio"));
        o
    }

    #[test]
    fn metamodel_is_preloaded() {
        let o = BdiOntology::new();
        assert!(o.global_graph_len() >= 8);
        assert!(o.source_graph_len() >= 9);
    }

    #[test]
    fn concept_and_feature_typing() {
        let o = ontology_with_monitor();
        assert!(o.is_concept(&iri("Monitor")));
        assert!(!o.is_concept(&iri("monitorId")));
        assert!(o.is_feature(&iri("monitorId")));
        assert!(o.is_id_feature(&iri("monitorId")));
        assert!(!o.is_id_feature(&iri("lagRatio")));
    }

    #[test]
    fn feature_belongs_to_one_concept() {
        let o = ontology_with_monitor();
        o.add_concept(&iri("Other"));
        let err = o
            .attach_feature(&iri("Other"), &iri("monitorId"))
            .unwrap_err();
        assert!(matches!(err, OntologyError::FeatureAlreadyOwned { .. }));
        // Re-attaching to the same concept is idempotent.
        o.attach_feature(&iri("Monitor"), &iri("monitorId"))
            .unwrap();
    }

    #[test]
    fn attach_validates_types() {
        let o = BdiOntology::new();
        o.add_concept(&iri("C"));
        assert!(matches!(
            o.attach_feature(&iri("C"), &iri("f")),
            Err(OntologyError::NotAFeature(_))
        ));
        o.add_feature(&iri("f"));
        assert!(matches!(
            o.attach_feature(&iri("Zz"), &iri("f")),
            Err(OntologyError::NotAConcept(_))
        ));
    }

    #[test]
    fn object_properties_create_navigation_edges() {
        let o = ontology_with_monitor();
        o.add_concept(&iri("App"));
        o.add_object_property(&iri("hasMonitor"), &iri("App"), &iri("Monitor"))
            .unwrap();
        assert_eq!(
            o.properties_between(&iri("App"), &iri("Monitor")),
            vec![iri("hasMonitor")]
        );
        assert!(o
            .properties_between(&iri("Monitor"), &iri("App"))
            .is_empty());
    }

    #[test]
    fn id_taxonomy_via_subclass_chain() {
        let o = BdiOntology::new();
        o.add_concept(&iri("Monitor"));
        o.add_feature(&iri("toolId"));
        o.add_feature_subclass(&iri("toolId"), &sc::IDENTIFIER);
        o.add_feature(&iri("monitorId"));
        o.add_feature_subclass(&iri("monitorId"), &iri("toolId"));
        assert!(o.is_id_feature(&iri("monitorId")));
    }

    #[test]
    fn feature_datatypes() {
        let o = ontology_with_monitor();
        o.set_feature_datatype(&iri("lagRatio"), &bdi_rdf::vocab::xsd::DOUBLE)
            .unwrap();
        let sols = o
            .sparql("SELECT ?dt WHERE { <http://e/lagRatio> G:hasDataType ?dt . }")
            .unwrap();
        assert_eq!(
            sols.iri_column("dt"),
            vec![(*bdi_rdf::vocab::xsd::DOUBLE).clone()]
        );
    }

    #[test]
    fn sparql_ranges_over_union_by_default() {
        let o = ontology_with_monitor();
        let sols = o.sparql("SELECT ?c WHERE { ?c a G:Concept . }").unwrap();
        assert_eq!(sols.iri_column("c"), vec![iri("Monitor")]);
    }

    #[test]
    fn turtle_dump_contains_declarations() {
        let o = ontology_with_monitor();
        let ttl = o.graph_turtle(&graphs::global());
        assert!(ttl.contains("G:Concept"));
        assert!(ttl.contains("monitorId"));
    }
}
