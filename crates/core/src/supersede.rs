//! The SUPERSEDE running example assembled end-to-end (§2.1, Figures 2–6).
//!
//! Builds the Global graph of Figure 3 (concepts, features, taxonomy,
//! datatypes), registers the releases of wrappers `w1`–`w3` (Figures 4–5)
//! over the Table 1 sample data, and provides the evolution step that
//! registers `w4` (Figure 6) after the VoD API renames `lagRatio` to
//! `bufferingRatio`.

use crate::omq::Omq;
use crate::ontology::BdiOntology;
use crate::release::Release;
use crate::system::BdiSystem;
use crate::vocab;
use bdi_rdf::model::{Iri, Triple};
use bdi_rdf::vocab::xsd;
use bdi_wrappers::supersede as data;
use bdi_wrappers::Wrapper;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The SUPERSEDE domain namespace (`sup:`).
pub const SUP_NS: &str = "http://www.essi.upc.edu/~snadal/SUPERSEDE/";
/// schema.org namespace, reused for `sc:SoftwareApplication` (§3.1 follows
/// the Linked Data philosophy of reusing existing vocabularies).
pub const SC_NS: &str = "http://schema.org/";

/// `sup:<name>`.
pub fn sup(name: &str) -> Iri {
    Iri::new(format!("{SUP_NS}{name}"))
}

/// `sc:<name>`.
pub fn sc(name: &str) -> Iri {
    Iri::new(format!("{SC_NS}{name}"))
}

/// The concept IRIs of the running example.
pub mod concepts {
    use super::*;
    pub fn software_application() -> Iri {
        sc("SoftwareApplication")
    }
    pub fn monitor() -> Iri {
        sup("Monitor")
    }
    pub fn feedback_gathering() -> Iri {
        sup("FeedbackGathering")
    }
    pub fn info_monitor() -> Iri {
        sup("InfoMonitor")
    }
    pub fn user_feedback() -> Iri {
        sup("UserFeedback")
    }
}

/// The feature IRIs of the running example.
pub mod features {
    use super::*;
    pub fn application_id() -> Iri {
        sup("applicationId")
    }
    pub fn monitor_id() -> Iri {
        sup("monitorId")
    }
    pub fn feedback_gathering_id() -> Iri {
        sup("feedbackGatheringId")
    }
    pub fn lag_ratio() -> Iri {
        sup("lagRatio")
    }
    pub fn description() -> Iri {
        sup("description")
    }
    /// The intermediate taxonomy node of Figure 3: `sup:toolId` — the UML
    /// `toolId` attribute, kept as a semantic domain above the per-concept
    /// IDs (`monitorId ⊑ toolId ⊑ sc:identifier`).
    pub fn tool_id() -> Iri {
        sup("toolId")
    }
}

/// Builds the Global graph of Figure 3.
pub fn build_ontology() -> BdiOntology {
    let mut ontology = BdiOntology::new();
    ontology.prefixes_mut().insert("sup", SUP_NS);

    let app = concepts::software_application();
    let monitor = concepts::monitor();
    let fg = concepts::feedback_gathering();
    let info = concepts::info_monitor();
    let uf = concepts::user_feedback();
    for c in [&app, &monitor, &fg, &info, &uf] {
        ontology.add_concept(c);
    }

    // Features. Note (Fig. 3): the UML `toolId` is made distinguishable as
    // sup:monitorId / sup:feedbackGatheringId because a feature may belong
    // to only one concept.
    let app_id = features::application_id();
    let mon_id = features::monitor_id();
    let fg_id = features::feedback_gathering_id();
    let lag = features::lag_ratio();
    let desc = features::description();
    ontology.add_id_feature(&app_id);
    ontology.add_feature(&lag);
    ontology.add_feature(&desc);
    // Figure 3's feature taxonomy: the UML toolId is explicited into
    // monitorId / feedbackGatheringId, both subsumed by sup:toolId which is
    // itself an sc:identifier — ID detection works through the chain (RDFS
    // entailment, §2).
    let tool_id = features::tool_id();
    ontology.add_feature_subclass(&tool_id, &bdi_rdf::vocab::sc::IDENTIFIER);
    for f in [&mon_id, &fg_id] {
        ontology.add_feature(f);
        ontology.add_feature_subclass(f, &tool_id);
    }

    ontology
        .attach_feature(&app, &app_id)
        .expect("static model");
    ontology
        .attach_feature(&monitor, &mon_id)
        .expect("static model");
    ontology.attach_feature(&fg, &fg_id).expect("static model");
    ontology.attach_feature(&info, &lag).expect("static model");
    ontology.attach_feature(&uf, &desc).expect("static model");

    // Object properties (the UML associations of Figure 2).
    ontology
        .add_object_property(&sup("hasMonitor"), &app, &monitor)
        .expect("static model");
    ontology
        .add_object_property(&sup("hasFGTool"), &app, &fg)
        .expect("static model");
    ontology
        .add_object_property(&sup("generatesQoS"), &monitor, &info)
        .expect("static model");
    ontology
        .add_object_property(&sup("generatesUF"), &fg, &uf)
        .expect("static model");

    // Datatypes (§3.1).
    ontology
        .set_feature_datatype(&app_id, &xsd::INTEGER)
        .expect("static model");
    ontology
        .set_feature_datatype(&mon_id, &xsd::INTEGER)
        .expect("static model");
    ontology
        .set_feature_datatype(&fg_id, &xsd::INTEGER)
        .expect("static model");
    ontology
        .set_feature_datatype(&lag, &xsd::DOUBLE)
        .expect("static model");
    ontology
        .set_feature_datatype(&desc, &xsd::STRING)
        .expect("static model");

    ontology
}

fn has_feature(c: &Iri, f: &Iri) -> Triple {
    Triple::new(c.clone(), (*vocab::g::HAS_FEATURE).clone(), f.clone())
}

/// The release for `w1` (the Code 2 wrapper over the VoD API).
pub fn release_w1(wrapper: Arc<dyn Wrapper>) -> Release {
    Release::new(
        wrapper,
        vec![
            has_feature(&concepts::monitor(), &features::monitor_id()),
            Triple::new(
                concepts::monitor(),
                sup("generatesQoS"),
                concepts::info_monitor(),
            ),
            has_feature(&concepts::info_monitor(), &features::lag_ratio()),
        ],
        BTreeMap::from([
            ("VoDmonitorId".to_owned(), features::monitor_id()),
            ("lagRatio".to_owned(), features::lag_ratio()),
        ]),
    )
}

/// The release for `w2` (feedback gathering / tweets).
pub fn release_w2(wrapper: Arc<dyn Wrapper>) -> Release {
    Release::new(
        wrapper,
        vec![
            has_feature(
                &concepts::feedback_gathering(),
                &features::feedback_gathering_id(),
            ),
            Triple::new(
                concepts::feedback_gathering(),
                sup("generatesUF"),
                concepts::user_feedback(),
            ),
            has_feature(&concepts::user_feedback(), &features::description()),
        ],
        BTreeMap::from([
            ("FGId".to_owned(), features::feedback_gathering_id()),
            ("tweet".to_owned(), features::description()),
        ]),
    )
}

/// The release for `w3` (the relationship API).
pub fn release_w3(wrapper: Arc<dyn Wrapper>) -> Release {
    Release::new(
        wrapper,
        vec![
            has_feature(
                &concepts::software_application(),
                &features::application_id(),
            ),
            Triple::new(
                concepts::software_application(),
                sup("hasMonitor"),
                concepts::monitor(),
            ),
            Triple::new(
                concepts::software_application(),
                sup("hasFGTool"),
                concepts::feedback_gathering(),
            ),
            has_feature(&concepts::monitor(), &features::monitor_id()),
            has_feature(
                &concepts::feedback_gathering(),
                &features::feedback_gathering_id(),
            ),
        ],
        BTreeMap::from([
            ("TargetApp".to_owned(), features::application_id()),
            ("MonitorId".to_owned(), features::monitor_id()),
            ("FeedbackId".to_owned(), features::feedback_gathering_id()),
        ]),
    )
}

/// The release for `w4` — §4.1's example: same LAV subgraph as `w1`, with
/// `F = {VoDmonitorId ↦ monitorId, bufferingRatio ↦ lagRatio}`.
pub fn release_w4(wrapper: Arc<dyn Wrapper>) -> Release {
    Release::new(
        wrapper,
        vec![
            has_feature(&concepts::monitor(), &features::monitor_id()),
            Triple::new(
                concepts::monitor(),
                sup("generatesQoS"),
                concepts::info_monitor(),
            ),
            has_feature(&concepts::info_monitor(), &features::lag_ratio()),
        ],
        BTreeMap::from([
            ("VoDmonitorId".to_owned(), features::monitor_id()),
            ("bufferingRatio".to_owned(), features::lag_ratio()),
        ]),
    )
}

/// Builds the complete running example: ontology + Table 1 data + releases
/// of `w1`, `w2`, `w3`.
pub fn build_running_example() -> BdiSystem {
    build_running_example_with_store().0
}

/// Like [`build_running_example`], also returning the backing document
/// store (needed to later ingest the evolved VoD API's documents).
pub fn build_running_example_with_store() -> (BdiSystem, bdi_docstore::DocStore) {
    let store = data::sample_docstore();
    let mut system = BdiSystem::from_parts(build_ontology(), Default::default());
    system
        .register_release(release_w1(Arc::new(data::wrapper_w1(store.clone()))))
        .expect("static release");
    system
        .register_release(release_w2(Arc::new(data::wrapper_w2(store.clone()))))
        .expect("static release");
    system
        .register_release(release_w3(Arc::new(data::wrapper_w3(store.clone()))))
        .expect("static release");
    (system, store)
}

/// Applies the §2.1 evolution: the VoD API releases version 2 (lagRatio →
/// bufferingRatio); the steward ingests its documents and registers `w4`.
pub fn evolve_with_w4(
    system: &mut BdiSystem,
    store: &bdi_docstore::DocStore,
) -> crate::release::ReleaseStats {
    data::ingest_vod_v2(store);
    system
        .register_release(release_w4(Arc::new(data::wrapper_w4(store.clone()))))
        .expect("static release")
}

/// The exemplary SPARQL OMQ of Code 8: for each applicationId, all lagRatio
/// instances.
pub fn exemplary_query() -> String {
    format!(
        "SELECT ?x ?y \
         FROM <{}> \
         WHERE {{ \
            VALUES (?x ?y) {{ (<{app_id}> <{lag}>) }} \
            <{app}> <{has_feature}> <{app_id}> . \
            <{app}> <{has_monitor}> <{monitor}> . \
            <{monitor}> <{gen_qos}> <{info}> . \
            <{info}> <{has_feature}> <{lag}> \
         }}",
        vocab::graphs::GLOBAL.as_str(),
        app = concepts::software_application().as_str(),
        monitor = concepts::monitor().as_str(),
        info = concepts::info_monitor().as_str(),
        app_id = features::application_id().as_str(),
        lag = features::lag_ratio().as_str(),
        has_feature = vocab::g::HAS_FEATURE.as_str(),
        has_monitor = sup("hasMonitor").as_str(),
        gen_qos = sup("generatesQoS").as_str(),
    )
}

/// The exemplary query as a programmatic OMQ (Figure 7's pattern).
pub fn exemplary_omq() -> Omq {
    Omq::new(
        vec![features::application_id(), features::lag_ratio()],
        vec![
            has_feature(
                &concepts::software_application(),
                &features::application_id(),
            ),
            Triple::new(
                concepts::software_application(),
                sup("hasMonitor"),
                concepts::monitor(),
            ),
            Triple::new(
                concepts::monitor(),
                sup("generatesQoS"),
                concepts::info_monitor(),
            ),
            has_feature(&concepts::info_monitor(), &features::lag_ratio()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_relational::Value;

    #[test]
    fn ontology_matches_figure3_shape() {
        let o = build_ontology();
        assert_eq!(o.concepts().len(), 5);
        assert!(o.is_id_feature(&features::monitor_id()));
        assert!(!o.is_id_feature(&features::lag_ratio()));
        assert_eq!(
            o.concept_of(&features::lag_ratio()),
            Some(concepts::info_monitor())
        );
    }

    #[test]
    fn running_example_registers_three_wrappers() {
        let system = build_running_example();
        assert_eq!(system.registry().len(), 3);
        assert!(system.ontology().is_wrapper(&vocab::wrapper_uri("w1")));
        assert!(system.ontology().is_wrapper(&vocab::wrapper_uri("w3")));
    }

    #[test]
    fn exemplary_query_reproduces_table2() {
        let system = build_running_example();
        let answer = system.answer(&exemplary_query()).unwrap();
        // Table 2: (1, 0.75), (1, 0.90), (2, 0.1).
        assert_eq!(
            answer.relation.schema().names(),
            vec!["applicationId", "lagRatio"]
        );
        let mut rows: Vec<(i64, f64)> = answer
            .relation
            .rows()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
            .collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(rows, vec![(1, 0.75), (1, 0.9), (2, 0.1)]);
        // One non-equivalent walk: {w1, w3}.
        assert_eq!(answer.rewriting.walks.len(), 1);
    }

    #[test]
    fn programmatic_and_sparql_queries_agree() {
        let system = build_running_example();
        let a = system.answer(&exemplary_query()).unwrap();
        let b = system.answer_omq(exemplary_omq()).unwrap();
        assert_eq!(a.relation, b.relation);
    }

    #[test]
    fn evolution_unions_both_schema_versions() {
        let (mut system, store) = build_running_example_with_store();
        let stats = evolve_with_w4(&mut system, &store);
        assert!(!stats.new_source);
        assert_eq!(stats.attributes_reused, 1);

        let answer = system.answer(&exemplary_query()).unwrap();
        // Two walks now: {w1, w3} and {w4, w3}.
        assert_eq!(answer.rewriting.walks.len(), 2);
        // Union of Table 2 with the v2 documents (0.42 and 0.05).
        let mut ratios: Vec<f64> = answer
            .relation
            .column("lagRatio")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ratios, vec![0.05, 0.1, 0.42, 0.75, 0.9]);
    }

    #[test]
    fn walk_expression_matches_paper_notation() {
        let system = build_running_example();
        let answer = system.answer(&exemplary_query()).unwrap();
        let expr = &answer.walk_exprs[0];
        assert!(expr.contains("⋈̃"), "expected a join in {expr}");
        assert!(expr.contains("D1/VoDmonitorId") && expr.contains("D3/MonitorId"));
    }

    #[test]
    fn feedback_query_goes_through_w2() {
        let system = build_running_example();
        let q = Omq::new(
            vec![features::feedback_gathering_id(), features::description()],
            vec![
                has_feature(
                    &concepts::feedback_gathering(),
                    &features::feedback_gathering_id(),
                ),
                Triple::new(
                    concepts::feedback_gathering(),
                    sup("generatesUF"),
                    concepts::user_feedback(),
                ),
                has_feature(&concepts::user_feedback(), &features::description()),
            ],
        );
        let answer = system.answer_omq(q).unwrap();
        assert_eq!(answer.relation.len(), 2);
        assert_eq!(
            answer.relation.value(0, "description"),
            Some(&Value::Str("I continuously see the loading symbol".into()))
        );
    }
}
