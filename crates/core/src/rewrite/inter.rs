//! Phase #3 — inter-concept generation (Algorithm 5).
//!
//! Joins the per-concept partial walks into complete walks. The phase slides
//! a two-element window over the concept list (steps ⑦–⑩): for every pair
//! in the cartesian product of the adjacent concepts' walk lists it merges
//! the two walks; if they share a wrapper the join is already materialized,
//! otherwise it discovers a join through the wrappers whose LAV graph
//! provides the edge between the two concepts, joining on the ID feature of
//! the edge's target (lines 9–17; the symmetric direction per line 20).
//!
//! One generalization over the paper's pseudocode: when the edge-providing
//! wrapper belongs to *neither* side (a pure connector), we also join it to
//! the left side on the source concept's ID, keeping the walk connected.
//! The paper's running example never exercises this case; without it such
//! pairs would produce disconnected expressions that its own
//! coverage/minimality filter then has to discard.

use super::intra::PartialWalks;
use super::walk::{JoinCondition, Walk};
use crate::ontology::BdiOntology;
use bdi_rdf::model::Iri;

/// Algorithm 5 — `InterConceptGeneration(partialWalks, S, M)`.
pub fn inter_concept_generation(ontology: &BdiOntology, partial_walks: &PartialWalks) -> Vec<Walk> {
    let Some((_, first_walks)) = partial_walks.first() else {
        return Vec::new();
    };
    let mut current_concept = &partial_walks[0].0;
    let mut current_walks: Vec<Walk> = first_walks.clone();

    for (next_concept, next_walks) in &partial_walks[1..] {
        let mut joined: Vec<Walk> = Vec::new();

        // Step ⑦: cartesian product of the two walk lists.
        for left in &current_walks {
            for right in next_walks {
                // Step ⑧: merge projections (and any accumulated joins).
                let mut merged = left.clone();
                merged.merge(right);

                if left.shares_wrapper_with(right) {
                    // Join materialized by the shared wrapper.
                    joined.push(merged);
                    continue;
                }

                // Steps ⑨–⑩: discover join wrappers and attributes.
                let ltr = ontology.wrappers_providing_edge(current_concept, next_concept);
                if !ltr.is_empty() {
                    join_through(
                        ontology,
                        &merged,
                        left,
                        right,
                        current_concept,
                        next_concept,
                        &ltr,
                        &mut joined,
                    );
                    continue;
                }
                let rtl = ontology.wrappers_providing_edge(next_concept, current_concept);
                if !rtl.is_empty() {
                    // Line 20: same process inverting left and right.
                    join_through(
                        ontology,
                        &merged,
                        right,
                        left,
                        next_concept,
                        current_concept,
                        &rtl,
                        &mut joined,
                    );
                }
                // No edge provider in either direction: the pair yields no
                // walk (the sources cannot be joined for this query).
            }
        }

        current_concept = next_concept;
        current_walks = joined;
    }
    current_walks
}

/// Lines 12–18 of Algorithm 5, for the edge `from → to`: joins each
/// edge-providing wrapper `w` with the wrapper holding the join-key ID.
///
/// Two strategies, tried in order:
/// 1. **target ID** (the paper's lines 12–14): join on `to`'s ID feature,
///    held by a wrapper of `to_walk`;
/// 2. **source ID** fallback: when `to` has no ID feature — the running
///    example's event-like `InfoMonitor` — join on `from`'s ID instead,
///    held by a wrapper of `from_walk`. This is exactly how the paper's own
///    example output joins `w1 ⋈ w3` on `monitorId` even though the queried
///    `InfoMonitor` concept carries no identifier.
#[allow(clippy::too_many_arguments)]
fn join_through(
    ontology: &BdiOntology,
    merged: &Walk,
    from_walk: &Walk,
    to_walk: &Walk,
    from_concept: &Iri,
    to_concept: &Iri,
    edge_wrappers: &[Iri],
    out: &mut Vec<Walk>,
) {
    let strategies: [(&Iri, &Walk, &Iri, &Walk); 2] = [
        (to_concept, to_walk, from_concept, from_walk),
        (from_concept, from_walk, to_concept, to_walk),
    ];
    for (key_concept, key_walk, anchor_concept, anchor_walk) in strategies {
        let produced = join_on_concept_id(
            ontology,
            merged,
            key_concept,
            key_walk,
            anchor_concept,
            anchor_walk,
            edge_wrappers,
            out,
        );
        if produced {
            return;
        }
    }
}

/// One join-discovery attempt keyed on `key_concept`'s ID (held by a wrapper
/// of `key_walk`). Returns whether any walk was produced.
#[allow(clippy::too_many_arguments)]
fn join_on_concept_id(
    ontology: &BdiOntology,
    merged: &Walk,
    key_concept: &Iri,
    key_walk: &Walk,
    anchor_concept: &Iri,
    anchor_walk: &Walk,
    edge_wrappers: &[Iri],
    out: &mut Vec<Walk>,
) -> bool {
    // Line 12: the ID feature used as the join key.
    let Some(f_id) = ontology.id_features_of(key_concept).into_iter().next() else {
        return false;
    };
    // Lines 13–14: the wrapper holding that ID, with its physical attribute.
    let Some((id_wrapper, id_attr)) = find_wrapper_with_id(ontology, key_walk, &f_id) else {
        return false;
    };

    // Prefer edge providers already inside the merged walk: when a direct
    // join exists, connector walks would only add a redundant wrapper that
    // the minimality filter culls anyway — skipping them here keeps phase 3
    // at the §5.3 bound of Π(#W)_Ci generated walks.
    let direct: Vec<&Iri> = edge_wrappers
        .iter()
        .filter(|w| *w != &id_wrapper && merged.wrappers().contains(*w))
        .collect();
    let chosen: Vec<&Iri> = if direct.is_empty() {
        edge_wrappers.iter().filter(|w| *w != &id_wrapper).collect()
    } else {
        direct
    };

    // Lines 15–17: one candidate walk per edge-providing wrapper.
    let before = out.len();
    for w in chosen {
        let Some(att_edge) = ontology.attribute_for_feature(w, &f_id) else {
            continue;
        };
        let mut walk = merged.clone();
        if merged.wrappers().contains(w) {
            walk.add_join(JoinCondition {
                left_wrapper: w.clone(),
                left_attribute: att_edge,
                right_wrapper: id_wrapper.clone(),
                right_attribute: id_attr.clone(),
            });
            out.push(walk);
            continue;
        }
        // Connector case (generalization, see module docs): also anchor `w`
        // on the other concept's ID so the walk stays connected.
        let Some(f_id_anchor) = ontology.id_features_of(anchor_concept).into_iter().next() else {
            continue;
        };
        let Some(att_w_anchor) = ontology.attribute_for_feature(w, &f_id_anchor) else {
            continue;
        };
        let Some((anchor_id_wrapper, anchor_id_attr)) =
            find_wrapper_with_id(ontology, anchor_walk, &f_id_anchor)
        else {
            continue;
        };
        walk.add_join(JoinCondition {
            left_wrapper: anchor_id_wrapper,
            left_attribute: anchor_id_attr,
            right_wrapper: w.clone(),
            right_attribute: att_w_anchor,
        });
        walk.add_join(JoinCondition {
            left_wrapper: w.clone(),
            left_attribute: att_edge,
            right_wrapper: id_wrapper.clone(),
            right_attribute: id_attr.clone(),
        });
        out.push(walk);
    }
    out.len() > before
}

/// `findWrapperWithID` (line 13): the wrapper of `walk` that provides the
/// given ID feature, together with its physical attribute.
fn find_wrapper_with_id(ontology: &BdiOntology, walk: &Walk, f_id: &Iri) -> Option<(Iri, Iri)> {
    for wrapper in walk.wrappers() {
        if let Some(attr) = ontology.attribute_for_feature(wrapper, f_id) {
            return Some((wrapper.clone(), attr));
        }
    }
    None
}
