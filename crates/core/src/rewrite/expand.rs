//! Phase #1 — query expansion (Algorithm 3).
//!
//! Identifies the query-related concepts (steps ①) in topological order and
//! expands `φ` with every concept's ID features (step ②), which later phases
//! need for joining even when the analyst did not request them.

use crate::omq::Omq;
use crate::ontology::BdiOntology;
use crate::vocab;
use bdi_rdf::model::{Iri, Term, Triple};

/// Errors raised during expansion.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ExpandError {
    /// Expansion requires the (already well-formed) query to be a DAG; this
    /// can only fire if callers skip Algorithm 2.
    #[error("query pattern has no topological order (cycle)")]
    Cyclic,
    /// A navigation concept with neither queried features nor an ID cannot
    /// be joined through (see the module docs of [`mod@crate::rewrite`]).
    #[error("concept {0} occurs in the query but has no queried features and no ID feature")]
    UnjoinableConcept(String),
}

/// The result of Algorithm 3: the concept list and the expanded query `Q'_G`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedQuery {
    /// Query-related concepts, in topological order (step ①).
    pub concepts: Vec<Iri>,
    /// `Q'_G` — the query with ID features added (step ②).
    pub query: Omq,
}

/// Algorithm 3 — `QueryExpansion(Q_G, G)`.
pub fn query_expansion(ontology: &BdiOntology, query: &Omq) -> Result<ExpandedQuery, ExpandError> {
    // Lines 3–7: concepts in topological order of φ.
    let order = query.topological_sort().ok_or(ExpandError::Cyclic)?;
    let mut concepts = Vec::new();
    for vertex in order {
        if let Term::Iri(iri) = &vertex {
            if ontology.is_concept(iri) && !concepts.contains(iri) {
                concepts.push(iri.clone());
            }
        }
    }

    // Lines 8–14: expand with IDs.
    let mut expanded = query.clone();
    for concept in &concepts {
        let ids = ontology.id_features_of(concept);
        for f_id in &ids {
            expanded.extend_phi(Triple::new(
                concept.clone(),
                (*vocab::g::HAS_FEATURE).clone(),
                f_id.clone(),
            ));
        }
        if ids.is_empty() {
            // The concept must still expose at least one queried feature,
            // otherwise later phases cannot anchor any wrapper on it.
            let has_queried_feature = expanded
                .triples_from(&Term::Iri(concept.clone()))
                .any(|t| t.predicate == *vocab::g::HAS_FEATURE);
            if !has_queried_feature {
                return Err(ExpandError::UnjoinableConcept(concept.as_str().to_owned()));
            }
        }
    }

    Ok(ExpandedQuery {
        concepts,
        query: expanded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://e/{s}"))
    }

    fn ontology() -> BdiOntology {
        let o = BdiOntology::new();
        for c in ["SoftwareApplication", "Monitor", "InfoMonitor"] {
            o.add_concept(&iri(c));
        }
        for (c, f, id) in [
            ("SoftwareApplication", "applicationId", true),
            ("Monitor", "monitorId", true),
            ("InfoMonitor", "lagRatio", false),
        ] {
            if id {
                o.add_id_feature(&iri(f));
            } else {
                o.add_feature(&iri(f));
            }
            o.attach_feature(&iri(c), &iri(f)).unwrap();
        }
        o.add_object_property(
            &iri("hasMonitor"),
            &iri("SoftwareApplication"),
            &iri("Monitor"),
        )
        .unwrap();
        o.add_object_property(&iri("generatesQoS"), &iri("Monitor"), &iri("InfoMonitor"))
            .unwrap();
        o
    }

    /// The running example query: applicationId + lagRatio.
    fn running_query() -> Omq {
        Omq::new(
            vec![iri("applicationId"), iri("lagRatio")],
            vec![
                Triple::new(
                    iri("SoftwareApplication"),
                    (*vocab::g::HAS_FEATURE).clone(),
                    iri("applicationId"),
                ),
                Triple::new(
                    iri("SoftwareApplication"),
                    iri("hasMonitor"),
                    iri("Monitor"),
                ),
                Triple::new(iri("Monitor"), iri("generatesQoS"), iri("InfoMonitor")),
                Triple::new(
                    iri("InfoMonitor"),
                    (*vocab::g::HAS_FEATURE).clone(),
                    iri("lagRatio"),
                ),
            ],
        )
    }

    #[test]
    fn concepts_in_topological_order() {
        let expanded = query_expansion(&ontology(), &running_query()).unwrap();
        let names: Vec<&str> = expanded.concepts.iter().map(|c| c.local_name()).collect();
        assert_eq!(names, vec!["SoftwareApplication", "Monitor", "InfoMonitor"]);
    }

    #[test]
    fn ids_are_added_to_phi() {
        let expanded = query_expansion(&ontology(), &running_query()).unwrap();
        // The paper's example: sup:monitorId is added although not queried.
        assert!(expanded.query.phi.contains(&Triple::new(
            iri("Monitor"),
            (*vocab::g::HAS_FEATURE).clone(),
            iri("monitorId")
        )));
        // applicationId's hasFeature triple was already there and InfoMonitor
        // has no ID, so φ grows by exactly one (monitorId).
        assert_eq!(expanded.query.phi.len(), 5);
    }

    #[test]
    fn expansion_preserves_pi() {
        let q = running_query();
        let expanded = query_expansion(&ontology(), &q).unwrap();
        assert_eq!(expanded.query.pi, q.pi);
    }

    #[test]
    fn idless_featureless_concept_is_rejected() {
        let o = ontology();
        o.add_concept(&iri("Passthrough")); // no features at all
        o.add_object_property(
            &iri("via"),
            &iri("SoftwareApplication"),
            &iri("Passthrough"),
        )
        .unwrap();
        let q = Omq::new(
            vec![iri("applicationId")],
            vec![
                Triple::new(
                    iri("SoftwareApplication"),
                    (*vocab::g::HAS_FEATURE).clone(),
                    iri("applicationId"),
                ),
                Triple::new(iri("SoftwareApplication"), iri("via"), iri("Passthrough")),
            ],
        );
        assert!(matches!(
            query_expansion(&o, &q),
            Err(ExpandError::UnjoinableConcept(_))
        ));
    }

    #[test]
    fn expansion_is_idempotent() {
        let o = ontology();
        let once = query_expansion(&o, &running_query()).unwrap();
        let twice = query_expansion(&o, &once.query).unwrap();
        assert_eq!(once.query, twice.query);
        assert_eq!(once.concepts, twice.concepts);
    }
}
